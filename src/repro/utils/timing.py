"""Wall-clock measurement and human-readable formatting helpers."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch with named laps.

    >>> sw = Stopwatch()
    >>> with sw.lap("compute"):
    ...     pass
    >>> sw.total("compute") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def lap(self, name: str) -> "_Lap":
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many laps have been accumulated under ``name``."""
        return self._counts.get(name, 0)

    def totals(self) -> dict[str, float]:
        return dict(self._totals)


class _Lap:
    def __init__(self, sw: Stopwatch, name: str) -> None:
        self._sw = sw
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._sw.add(self._name, time.perf_counter() - self._start)


def format_bytes(n: float) -> str:
    """Format a byte count with binary units: ``format_bytes(1536) == '1.5 KiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(s: float) -> str:
    """Format seconds compactly: ``format_seconds(90) == '1m30.0s'``."""
    if s < 60:
        return f"{s:.3g}s"
    m, rest = divmod(s, 60.0)
    if m < 60:
        return f"{int(m)}m{rest:04.1f}s"
    h, m = divmod(int(m), 60)
    return f"{h}h{m:02d}m{rest:04.1f}s"
