"""Small shared utilities (RNG handling, timers, formatting)."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, format_bytes, format_seconds

__all__ = ["as_rng", "spawn_rngs", "Stopwatch", "format_bytes", "format_seconds"]
