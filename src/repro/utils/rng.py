"""Deterministic random-number-generator plumbing.

All stochastic code in :mod:`repro` (replacement policies, simulators,
random tree generation, tree search tie-breaking) accepts a ``seed``
argument that is normalized through :func:`as_rng`, so experiments are
reproducible end-to-end from a single integer.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Accepts ``None`` (fresh entropy), an ``int``, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so streams can be shared).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Split one seed into ``n`` independent generators.

    Used when a driver needs decorrelated streams for sub-components (e.g.
    one stream for the workload and one for a Random replacement policy) so
    changing one component's consumption pattern does not perturb the other.
    """
    if isinstance(seed, np.random.Generator):
        seed = seed.bit_generator.seed_seq
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seed.spawn(n)]
