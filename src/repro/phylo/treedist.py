"""Tree comparison metrics beyond Robinson–Foulds.

* :func:`branch_score_distance` — Kuhner–Felsenstein 1994: RF extended with
  branch lengths (the L2 norm over split-length differences).
* :func:`path_distance_matrix` — all-pairs patristic distances (one BFS per
  tip, O(n²)).
* :func:`path_difference_distance` — Steel–Penny: L2 norm between the two
  trees' path-length vectors (topology-only variant uses hop counts).

All metrics match trees by taxon *name*, so differently-numbered trees
compare correctly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TreeError
from repro.phylo.tree import Tree


def _split_lengths(tree: Tree, names: list[str]) -> dict[frozenset, float]:
    """Map each non-trivial split (canonical, reference names) to its
    branch length."""
    remap = {i: names.index(name) for i, name in enumerate(tree.names)}
    out: dict[frozenset, float] = {}
    n = tree.num_tips
    for u, v in tree.internal_edges():
        side = frozenset(remap[t] for t in tree.subtree_tips(u, v))
        if 0 in side:
            side = frozenset(range(n)) - side
        out[side] = tree.branch_length(u, v)
    return out


def branch_score_distance(a: Tree, b: Tree) -> float:
    """Kuhner–Felsenstein branch-score distance.

    ``sqrt( Σ_splits (len_a − len_b)² )`` where a split absent from one tree
    contributes its full length. Zero iff topologies and internal branch
    lengths agree.
    """
    if sorted(a.names) != sorted(b.names):
        raise TreeError("trees must share one taxon set")
    la = _split_lengths(a, a.names)
    lb = _split_lengths(b, a.names)
    total = 0.0
    for split in la.keys() | lb.keys():
        total += (la.get(split, 0.0) - lb.get(split, 0.0)) ** 2
    return float(np.sqrt(total))


def path_distance_matrix(tree: Tree, weighted: bool = True) -> np.ndarray:
    """All-pairs tip distances: patristic (weighted) or hop counts.

    One Dijkstra-free BFS/DFS per tip over the tree (edges are unique
    paths), O(n²) total.
    """
    n = tree.num_tips
    D = np.zeros((n, n))
    for src in range(n):
        dist = {src: 0.0}
        stack = [(src, -1)]
        while stack:
            x, parent = stack.pop()
            for y in tree.neighbors(x):
                if y == parent:
                    continue
                step = tree.branch_length(x, y) if weighted else 1.0
                dist[y] = dist[x] + step
                stack.append((y, x))
        for dst in range(n):
            D[src, dst] = dist[dst]
    return D


def path_difference_distance(a: Tree, b: Tree, weighted: bool = False) -> float:
    """Steel–Penny path-difference: L2 norm of the two path-length vectors."""
    if sorted(a.names) != sorted(b.names):
        raise TreeError("trees must share one taxon set")
    Da = path_distance_matrix(a, weighted)
    order = [b.names.index(name) for name in a.names]
    Db = path_distance_matrix(b, weighted)[np.ix_(order, order)]
    iu = np.triu_indices(a.num_tips, 1)
    return float(np.linalg.norm(Da[iu] - Db[iu]))


def normalized_rf(a: Tree, b: Tree) -> float:
    """Robinson–Foulds scaled to [0, 1] by the maximum ``2(n-3)``."""
    n = a.num_tips
    if n < 4:
        return 0.0
    return a.robinson_foulds(b) / (2.0 * (n - 3))
