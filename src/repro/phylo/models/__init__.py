"""Substitution models for the PLF.

Time-reversible Markov models of character substitution: the GTR family for
DNA (JC69, K80, HKY85, GTR) and 20-state protein models (Poisson and
user-loadable empirical matrices), combined with discrete Γ rate
heterogeneity (Yang 1994) and an optional proportion of invariant sites.
"""

from repro.phylo.models.base import ReversibleModel
from repro.phylo.models.dna import GTR, HKY85, JC69, K80
from repro.phylo.models.protein import EmpiricalProteinModel, Poisson
from repro.phylo.models.rates import RateModel, discrete_gamma_rates

__all__ = [
    "ReversibleModel",
    "JC69",
    "K80",
    "HKY85",
    "GTR",
    "Poisson",
    "EmpiricalProteinModel",
    "RateModel",
    "discrete_gamma_rates",
]
