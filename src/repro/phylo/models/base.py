"""General time-reversible substitution-model machinery.

A reversible rate matrix is built from *exchangeabilities* ``R`` (symmetric,
zero diagonal) and stationary frequencies ``π``: ``Q[i,j] = R[i,j] π[j]``,
diagonal set so rows sum to zero, scaled so the expected substitutions per
unit time equal one. Because ``diag(π)^{1/2} Q diag(π)^{-1/2}`` is symmetric,
the eigendecomposition is computed stably with ``eigh``; transition matrices
``P(t) = V e^{Λt} V⁻¹`` and their first/second derivatives (needed by the
Newton–Raphson branch-length optimizer) then cost one small matrix product
per rate category.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class ReversibleModel:
    """A time-reversible substitution model over ``num_states`` states.

    Parameters
    ----------
    exchangeabilities:
        Symmetric ``(S, S)`` matrix of relative rates, diagonal ignored.
    frequencies:
        Stationary distribution ``π`` (positive, sums to 1; renormalized).
    name:
        Display name.
    """

    def __init__(self, exchangeabilities: np.ndarray, frequencies: np.ndarray,
                 name: str = "REV") -> None:
        R = np.array(exchangeabilities, dtype=np.float64)
        pi = np.array(frequencies, dtype=np.float64)
        if R.ndim != 2 or R.shape[0] != R.shape[1]:
            raise ModelError("exchangeability matrix must be square")
        S = R.shape[0]
        if pi.shape != (S,):
            raise ModelError(f"frequencies shape {pi.shape} does not match {S} states")
        if np.any(pi <= 0):
            raise ModelError("all stationary frequencies must be positive")
        if not np.allclose(R, R.T):
            raise ModelError("exchangeability matrix must be symmetric")
        offdiag = R[~np.eye(S, dtype=bool)]
        if np.any(offdiag < 0) or not np.any(offdiag > 0):
            raise ModelError("exchangeabilities must be non-negative with some positive")

        pi = pi / pi.sum()
        Q = R * pi[None, :]
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        # Normalize: expected rate  -Σ π_i Q_ii  == 1 substitution / unit time.
        scale = -float(pi @ np.diag(Q))
        if scale <= 0:
            raise ModelError("degenerate rate matrix (zero total rate)")
        Q /= scale

        # Stable eigendecomposition via the symmetrized matrix.
        sqrt_pi = np.sqrt(pi)
        B = (sqrt_pi[:, None] * Q) / sqrt_pi[None, :]
        B = (B + B.T) / 2.0  # clean numerical asymmetry
        eigvals, U = np.linalg.eigh(B)
        self.name = name
        self.num_states = S
        self.frequencies = pi
        self.rate_matrix = Q
        self.eigenvalues = eigvals
        self.eigenvectors = U / sqrt_pi[:, None]         # V : Q = V Λ V⁻¹
        self.inv_eigenvectors = U.T * sqrt_pi[None, :]   # V⁻¹

    # -- transition probabilities ------------------------------------------------

    def transition_matrices(self, t: float, rates: np.ndarray) -> np.ndarray:
        """``P(r_c · t)`` for each rate category; shape ``(C, S, S)``.

        ``t`` is the branch length in expected substitutions per site at
        rate 1; each category scales time by its relative rate ``r_c``
        (paper §3.1: the Γ model multiplies memory and work by the number
        of discrete rates).
        """
        if t < 0:
            raise ModelError(f"negative branch length {t}")
        rates = np.asarray(rates, dtype=np.float64)
        exp_l = np.exp(self.eigenvalues[None, :] * (rates[:, None] * t))  # (C, S)
        P = np.einsum("ik,ck,kj->cij", self.eigenvectors, exp_l, self.inv_eigenvectors,
                      optimize=True)
        np.clip(P, 0.0, None, out=P)
        return P

    def transition_derivatives(self, t: float, rates: np.ndarray):
        """``(P, dP/dt, d²P/dt²)`` for each rate category.

        Differentiating ``P(rt) = V e^{Λrt} V⁻¹`` w.r.t. the branch length
        ``t`` just multiplies each eigen-mode by ``(λ_k r)`` per order.
        """
        rates = np.asarray(rates, dtype=np.float64)
        lam = self.eigenvalues[None, :] * rates[:, None]       # (C, S)
        exp_l = np.exp(lam * t)
        V, Vi = self.eigenvectors, self.inv_eigenvectors
        P = np.einsum("ik,ck,kj->cij", V, exp_l, Vi, optimize=True)
        dP = np.einsum("ik,ck,kj->cij", V, lam * exp_l, Vi, optimize=True)
        d2P = np.einsum("ik,ck,kj->cij", V, lam * lam * exp_l, Vi, optimize=True)
        np.clip(P, 0.0, None, out=P)
        return P, dP, d2P

    # -- introspection ---------------------------------------------------------------

    def stationary_check(self) -> float:
        """Max |πQ| — zero (to round-off) iff π is the stationary distribution."""
        return float(np.abs(self.frequencies @ self.rate_matrix).max())

    def expected_rate(self) -> float:
        """Expected substitutions per unit time (1.0 after normalization)."""
        return -float(self.frequencies @ np.diag(self.rate_matrix))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}({self.num_states} states)"
