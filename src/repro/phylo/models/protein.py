"""20-state amino-acid substitution models.

The paper sizes protein ancestral vectors at ``(n-2) · 8 · 80 · s`` bytes
(20 states × 4 Γ rates, §3.1); these models exercise that wide-vector code
path. We provide the parameter-free *Poisson* model (all exchangeabilities
equal — the 20-state analogue of JC69) and a loader for empirical matrices
in the standard PAML ``.dat`` layout (WAG/LG/JTT files all use it), so any
published matrix can be dropped in without bundling third-party data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.phylo.models.base import ReversibleModel

NUM_AA = 20


class Poisson(ReversibleModel):
    """Equal-exchangeability amino-acid model (optionally empirical freqs)."""

    def __init__(self, frequencies=None) -> None:
        if frequencies is None:
            frequencies = np.full(NUM_AA, 1.0 / NUM_AA)
        R = np.ones((NUM_AA, NUM_AA))
        np.fill_diagonal(R, 0.0)
        super().__init__(R, frequencies, name="Poisson")


class EmpiricalProteinModel(ReversibleModel):
    """An empirical amino-acid model from PAML ``.dat``-format text.

    The PAML layout is a strictly-lower-triangular matrix of 190
    exchangeabilities (19 rows of 1..19 numbers) followed by 20 stationary
    frequencies; whitespace/newlines are free-form. ``frequencies`` may be
    overridden (e.g. ``+F`` empirical alignment frequencies).
    """

    def __init__(self, exchangeabilities: np.ndarray, frequencies: np.ndarray,
                 name: str = "Empirical") -> None:
        super().__init__(exchangeabilities, frequencies, name=name)

    @classmethod
    def from_paml(cls, text: str, name: str = "Empirical",
                  frequencies=None) -> "EmpiricalProteinModel":
        values = []
        for tok in text.split():
            try:
                values.append(float(tok))
            except ValueError:
                break  # PAML files may end with a free-text comment block
        need = 190 + NUM_AA
        if len(values) < need:
            raise ModelError(
                f"PAML matrix needs {need} numbers (190 rates + 20 freqs), got {len(values)}"
            )
        rates = values[:190]
        freqs = np.asarray(values[190:need]) if frequencies is None else np.asarray(frequencies)
        R = np.zeros((NUM_AA, NUM_AA))
        k = 0
        for i in range(1, NUM_AA):
            for j in range(i):
                R[i, j] = R[j, i] = rates[k]
                k += 1
        return cls(R, freqs, name=name)

    def to_paml(self) -> str:
        """Serialize back to PAML ``.dat`` layout (round-trips with ``from_paml``)."""
        lines = []
        # Recover unnormalized exchangeabilities: R[i,j] = Q[i,j] / π_j up to scale.
        R = self.rate_matrix / self.frequencies[None, :]
        for i in range(1, NUM_AA):
            lines.append(" ".join(f"{R[i, j]:.8g}" for j in range(i)))
        lines.append("")
        lines.append(" ".join(f"{f:.8g}" for f in self.frequencies))
        return "\n".join(lines) + "\n"
