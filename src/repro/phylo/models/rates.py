"""Among-site rate heterogeneity: the discrete Γ model (Yang 1994).

The paper's experiments all use "the standard (and biologically meaningful)
Γ model of rate heterogeneity with 4 discrete rates" (§3.1), which
multiplies both the ancestral-vector memory footprint and the kernel work by
the category count. :func:`discrete_gamma_rates` implements both the
mean-per-equal-probability-category discretization (RAxML's default) and the
median variant; :class:`RateModel` packages categories with probabilities
and an optional proportion of invariant sites (+I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammainc
from scipy.stats import gamma as gamma_dist

from repro.errors import ModelError


def discrete_gamma_rates(alpha: float, num_categories: int = 4,
                         method: str = "mean") -> np.ndarray:
    """Relative rates of ``num_categories`` equiprobable Γ(α, β=α) classes.

    The Γ distribution is parameterized with mean 1 (shape ``α``, rate
    ``α``). With ``method="mean"`` each category's rate is its conditional
    mean, computed via the regularized incomplete-gamma identity
    ``E[X | a < X ≤ b] ∝ I(bβ; α+1) − I(aβ; α+1)``; rates then average to
    exactly 1. With ``method="median"`` the category medians are used and
    rescaled to mean 1.
    """
    if alpha <= 0:
        raise ModelError(f"gamma shape alpha must be positive, got {alpha}")
    if num_categories < 1:
        raise ModelError(f"need at least 1 rate category, got {num_categories}")
    if num_categories == 1:
        return np.ones(1)
    k = num_categories
    if method == "mean":
        probs = np.arange(1, k) / k
        cuts = gamma_dist.ppf(probs, a=alpha, scale=1.0 / alpha)  # category boundaries
        upper = np.concatenate([cuts, [np.inf]])
        lower = np.concatenate([[0.0], cuts])
        # P(X in cat) == 1/k each;  E[X·1{cat}] = I(βb; α+1) − I(βa; α+1)
        mass = gammainc(alpha + 1.0, alpha * upper) - gammainc(alpha + 1.0, alpha * lower)
        rates = mass * k  # divide by 1/k category probability; Γ mean is 1
    elif method == "median":
        probs = (2.0 * np.arange(k) + 1.0) / (2.0 * k)
        rates = gamma_dist.ppf(probs, a=alpha, scale=1.0 / alpha)
        rates = rates * k / rates.sum()
    else:
        raise ModelError(f"unknown discretization method {method!r}")
    return np.ascontiguousarray(rates)


@dataclass(frozen=True)
class RateModel:
    """Discrete per-site rate categories with probabilities.

    Attributes
    ----------
    rates:
        ``(C,)`` relative rates (weighted mean 1 unless +I shifts it).
    weights:
        ``(C,)`` category probabilities, summing to 1.
    alpha:
        The Γ shape that generated the categories (``None`` for uniform).
    p_invariant:
        Proportion of invariant sites; if > 0, category 0 has rate 0.
    """

    rates: np.ndarray
    weights: np.ndarray
    alpha: float | None = None
    p_invariant: float = 0.0

    def __post_init__(self) -> None:
        rates = np.ascontiguousarray(np.asarray(self.rates, dtype=np.float64))
        weights = np.ascontiguousarray(np.asarray(self.weights, dtype=np.float64))
        if rates.ndim != 1 or rates.shape != weights.shape:
            raise ModelError("rates and weights must be 1-D arrays of equal length")
        if np.any(rates < 0):
            raise ModelError("negative rate category")
        if np.any(weights <= 0) or not np.isclose(weights.sum(), 1.0):
            raise ModelError("weights must be positive and sum to 1")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "weights", weights)

    @property
    def num_categories(self) -> int:
        return int(self.rates.shape[0])

    @classmethod
    def uniform(cls) -> "RateModel":
        """The single-rate (no heterogeneity) model."""
        return cls(np.ones(1), np.ones(1))

    @classmethod
    def gamma(cls, alpha: float, num_categories: int = 4,
              method: str = "mean") -> "RateModel":
        """Yang-1994 discrete Γ with equiprobable categories (paper default)."""
        rates = discrete_gamma_rates(alpha, num_categories, method)
        w = np.full(num_categories, 1.0 / num_categories)
        return cls(rates, w, alpha=alpha)

    @classmethod
    def gamma_invariant(cls, alpha: float, p_invariant: float,
                        num_categories: int = 4) -> "RateModel":
        """Γ + I: one zero-rate class of weight ``p_invariant`` plus Γ classes.

        The Γ rates are rescaled by ``1/(1-p_inv)`` so the overall expected
        rate stays 1.
        """
        if not 0.0 <= p_invariant < 1.0:
            raise ModelError(f"p_invariant must be in [0, 1), got {p_invariant}")
        if p_invariant == 0.0:
            return cls.gamma(alpha, num_categories)
        g = discrete_gamma_rates(alpha, num_categories) / (1.0 - p_invariant)
        rates = np.concatenate([[0.0], g])
        weights = np.concatenate(
            [[p_invariant], np.full(num_categories, (1.0 - p_invariant) / num_categories)]
        )
        return cls(rates, weights, alpha=alpha, p_invariant=p_invariant)

    def with_alpha(self, alpha: float) -> "RateModel":
        """Same category structure, new Γ shape (used by the α optimizer)."""
        if self.p_invariant > 0:
            k = self.num_categories - 1
            return RateModel.gamma_invariant(alpha, self.p_invariant, k)
        return RateModel.gamma(alpha, self.num_categories)

    def mean_rate(self) -> float:
        return float(self.rates @ self.weights)
