"""DNA substitution models: JC69, K80, HKY85 and the full GTR.

All are instances of :class:`~repro.phylo.models.base.ReversibleModel` over
the 4-state ``ACGT`` alphabet. The paper's experiments run DNA data under
GTR with Γ rate heterogeneity (§4.1); JC69 additionally has a closed-form
``P(t)`` used as a numerical cross-check in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.phylo.models.base import ReversibleModel

#: Index order of the 6 GTR exchangeabilities: AC, AG, AT, CG, CT, GT
GTR_RATE_ORDER = ("AC", "AG", "AT", "CG", "CT", "GT")


def _dna_exchangeabilities(six: np.ndarray) -> np.ndarray:
    six = np.asarray(six, dtype=np.float64)
    if six.shape != (6,):
        raise ModelError(f"need 6 exchangeabilities (AC,AG,AT,CG,CT,GT), got {six.shape}")
    if np.any(six < 0):
        raise ModelError("exchangeabilities must be non-negative")
    ac, ag, at, cg, ct, gt = six
    R = np.array(
        [
            [0.0, ac, ag, at],
            [ac, 0.0, cg, ct],
            [ag, cg, 0.0, gt],
            [at, ct, gt, 0.0],
        ]
    )
    return R


class GTR(ReversibleModel):
    """General Time-Reversible model (Tavaré 1986).

    Parameters
    ----------
    rates:
        Six exchangeabilities in :data:`GTR_RATE_ORDER`; conventionally
        GT is fixed to 1.
    frequencies:
        Base frequencies ``(πA, πC, πG, πT)``.
    """

    def __init__(self, rates=(1.0,) * 6, frequencies=(0.25,) * 4, name: str = "GTR") -> None:
        super().__init__(_dna_exchangeabilities(np.asarray(rates)), frequencies, name)
        self.rates6 = np.asarray(rates, dtype=np.float64)


class JC69(GTR):
    """Jukes & Cantor 1969: equal rates, equal frequencies."""

    def __init__(self) -> None:
        super().__init__((1.0,) * 6, (0.25,) * 4, name="JC69")

    @staticmethod
    def analytic_p(t: float) -> np.ndarray:
        """Closed-form JC69 transition matrix for the normalized Q.

        With the expected-rate-1 normalization, ``P_same = 1/4 + 3/4 e^{-4t/3}``
        and ``P_diff = 1/4 - 1/4 e^{-4t/3}``. Used to validate the generic
        eigendecomposition pathway.
        """
        e = np.exp(-4.0 * t / 3.0)
        same = 0.25 + 0.75 * e
        diff = 0.25 - 0.25 * e
        P = np.full((4, 4), diff)
        np.fill_diagonal(P, same)
        return P


class K80(GTR):
    """Kimura 1980 two-parameter model: transition/transversion ratio κ."""

    def __init__(self, kappa: float = 2.0) -> None:
        if kappa <= 0:
            raise ModelError(f"kappa must be positive, got {kappa}")
        # transitions: AG, CT; transversions: the other four.
        super().__init__((1.0, kappa, 1.0, 1.0, kappa, 1.0), (0.25,) * 4, name="K80")
        self.kappa = float(kappa)


class HKY85(GTR):
    """Hasegawa–Kishino–Yano 1985: κ plus unequal base frequencies."""

    def __init__(self, kappa: float = 2.0, frequencies=(0.25,) * 4) -> None:
        if kappa <= 0:
            raise ModelError(f"kappa must be positive, got {kappa}")
        super().__init__((1.0, kappa, 1.0, 1.0, kappa, 1.0), frequencies, name="HKY85")
        self.kappa = float(kappa)
