"""Metropolis–Hastings sampling over trees, branch lengths and Γ shape.

A compact but complete Bayesian phylogenetics chain: proper priors
(exponential on branch lengths, uniform on labelled topologies, exponential
on α), a weighted move mix, burn-in/thinning, acceptance-rate tracking, and
posterior summaries (split frequencies). Every likelihood evaluation runs
through the engine — and therefore through whatever (out-of-core) vector
store it was built with — demonstrating the paper's §5 claim that the
out-of-core concepts carry over to Bayesian programs unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SearchError
from repro.phylo.bayes.moves import (
    AlphaScaleMove,
    BranchScaleMove,
    Move,
    NniMove,
    SprMove,
)
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class Priors:
    """Prior hyper-parameters for the chain.

    Attributes
    ----------
    branch_length_mean:
        Mean of the i.i.d. exponential prior on branch lengths.
    alpha_mean:
        Mean of the exponential prior on the Γ shape (ignored for uniform
        rate models). Topologies carry the uniform prior (constant, so it
        cancels in the acceptance ratio).
    """

    branch_length_mean: float = 0.1
    alpha_mean: float = 1.0

    def log_prior(self, engine) -> float:
        rate = 1.0 / self.branch_length_mean
        total = 0.0
        for u, v in engine.tree.edges():
            total += math.log(rate) - rate * engine.tree.branch_length(u, v)
        if engine.rates.alpha is not None:
            arate = 1.0 / self.alpha_mean
            total += math.log(arate) - arate * engine.rates.alpha
        return total


@dataclass(frozen=True)
class McmcSample:
    """One recorded posterior sample."""

    generation: int
    log_likelihood: float
    log_posterior: float
    alpha: float | None
    tree_length: float
    splits: frozenset


@dataclass
class MoveStats:
    proposed: int = 0
    accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0


@dataclass
class McmcResult:
    """Chain output: samples plus diagnostics."""

    samples: list[McmcSample]
    move_stats: dict[str, MoveStats]
    final_log_likelihood: float

    def split_frequencies(self) -> dict[frozenset, float]:
        """Posterior probability of each non-trivial tip bipartition."""
        if not self.samples:
            return {}
        counts: dict[frozenset, int] = {}
        for sample in self.samples:
            for split in sample.splits:
                counts[split] = counts.get(split, 0) + 1
        n = len(self.samples)
        return {split: c / n for split, c in counts.items()}

    def posterior_mean_alpha(self) -> float | None:
        vals = [s.alpha for s in self.samples if s.alpha is not None]
        return float(np.mean(vals)) if vals else None


class McmcChain:
    """A single Metropolis–Hastings chain over phylogenies.

    Parameters
    ----------
    engine:
        A :class:`LikelihoodEngine` (any store configuration); the chain
        mutates its tree/rates in place.
    priors:
        Prior hyper-parameters.
    moves:
        ``(Move, weight)`` pairs; defaults to the standard mix of branch
        multipliers (heavy), NNI, SPR and α moves.
    seed:
        RNG seed for reproducible chains.
    """

    def __init__(self, engine, priors: Priors | None = None,
                 moves: list[tuple[Move, float]] | None = None,
                 seed=None) -> None:
        self.engine = engine
        self.priors = priors if priors is not None else Priors()
        if moves is None:
            moves = [
                (BranchScaleMove(), 6.0),
                (NniMove(), 2.0),
                (SprMove(radius=3), 1.0),
            ]
            if engine.rates.alpha is not None:
                moves.append((AlphaScaleMove(), 1.0))
        if not moves:
            raise SearchError("need at least one MCMC move")
        self._moves = [m for m, _ in moves]
        weights = np.array([w for _, w in moves], dtype=np.float64)
        if np.any(weights <= 0):
            raise SearchError("move weights must be positive")
        self._weights = weights / weights.sum()
        self._rng = as_rng(seed)
        self.stats = {m.name: MoveStats() for m in self._moves}

    def run(self, generations: int, *, burn_in: int = 0,
            sample_every: int = 10) -> McmcResult:
        """Run the chain; returns recorded samples and acceptance stats.

        ``burn_in`` generations are discarded; afterwards every
        ``sample_every``-th state is recorded.
        """
        if generations < 1:
            raise SearchError(f"generations must be >= 1, got {generations}")
        if sample_every < 1:
            raise SearchError(f"sample_every must be >= 1, got {sample_every}")
        engine = self.engine
        lnl = engine.loglikelihood()
        lp = self.priors.log_prior(engine)
        samples: list[McmcSample] = []

        for gen in range(1, generations + 1):
            move = self._moves[int(self._rng.choice(len(self._moves),
                                                    p=self._weights))]
            stat = self.stats[move.name]
            stat.proposed += 1
            move.last_edge = None
            log_hastings = move.propose(engine, self._rng)
            edge = move.last_edge
            # Evaluate at the perturbed edge when possible: CLV recomputation
            # stays local (the paper's §4.2 locality source).
            new_lnl = (engine.edge_loglikelihood(*edge)
                       if edge is not None and engine.tree.has_edge(*edge)
                       else engine.loglikelihood())
            new_lp = self.priors.log_prior(engine)
            log_ratio = (new_lnl + new_lp) - (lnl + lp) + log_hastings
            if math.log(self._rng.random() + 1e-300) < log_ratio:
                move.accept(engine)
                stat.accepted += 1
                lnl, lp = new_lnl, new_lp
            else:
                move.reject(engine)
            if gen > burn_in and (gen - burn_in) % sample_every == 0:
                samples.append(McmcSample(
                    generation=gen,
                    log_likelihood=lnl,
                    log_posterior=lnl + lp,
                    alpha=engine.rates.alpha,
                    tree_length=engine.tree.total_branch_length(),
                    splits=engine.tree.splits(),
                ))
        return McmcResult(samples=samples, move_stats=dict(self.stats),
                          final_log_likelihood=lnl)
