"""Bayesian phylogenetic inference by Markov-chain Monte Carlo.

The paper's conclusion: "The concepts developed here can be applied to all
PLF-based programs (ML **and Bayesian**)". This subpackage demonstrates
that claim: a Metropolis–Hastings sampler over topology, branch lengths and
the Γ shape whose likelihood evaluations run through the same
:class:`~repro.phylo.likelihood.engine.LikelihoodEngine` — and therefore
through any out-of-core vector store. MCMC moves are even more local than
lazy SPR (most proposals touch one branch or one NNI neighborhood), so the
out-of-core miss rates are correspondingly lower; the ablation benchmark
measures exactly that.
"""

from repro.phylo.bayes.mcmc import McmcChain, McmcSample, Priors
from repro.phylo.bayes.moves import (
    AlphaScaleMove,
    BranchScaleMove,
    Move,
    NniMove,
    SprMove,
)

__all__ = [
    "McmcChain",
    "McmcSample",
    "Priors",
    "Move",
    "BranchScaleMove",
    "NniMove",
    "SprMove",
    "AlphaScaleMove",
]
