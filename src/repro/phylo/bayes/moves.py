"""MCMC proposal moves over (topology, branch lengths, model parameters).

Each move proposes a reversible perturbation through the engine's mutation
API (so CLV invalidation happens exactly as in the ML search), reports its
log Hastings ratio, and can restore the previous state on rejection. The
moves are deliberately RAxML/MrBayes-standard:

* **BranchScaleMove** — multiply one branch length by ``exp(λ(u−½))``
  (the classic multiplier proposal; Hastings ratio = the multiplier).
* **NniMove** — nearest-neighbor interchange on a random internal edge
  (symmetric: Hastings ratio 1).
* **SprMove** — prune a random subtree and regraft within a radius
  (proposal counts are used for the Hastings correction).
* **AlphaScaleMove** — multiplier proposal on the Γ shape α.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SearchError, TreeError


class Move:
    """Base proposal: ``propose`` returns the log Hastings ratio.

    After ``propose``, :attr:`last_edge` may hold a tree edge near the
    perturbation; the chain then evaluates the likelihood *at that edge*,
    which keeps CLV recomputation local — the same trick as RAxML's lazy
    SPR and the source of the paper's low out-of-core miss rates.
    """

    name = "move"
    last_edge: "tuple[int, int] | None" = None

    def propose(self, engine, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def reject(self, engine) -> None:
        """Restore the exact pre-proposal state."""
        raise NotImplementedError

    def accept(self, engine) -> None:
        """Finalize (default: nothing to do)."""


class BranchScaleMove(Move):
    """Multiplier proposal on a uniformly chosen branch length."""

    name = "branch-scale"

    def __init__(self, tuning: float = 0.5,
                 min_length: float = 1e-8, max_length: float = 50.0) -> None:
        if tuning <= 0:
            raise SearchError(f"tuning must be positive, got {tuning}")
        self.tuning = tuning
        self.min_length = min_length
        self.max_length = max_length
        self._edge: tuple[int, int] | None = None
        self._old: float = 0.0

    def propose(self, engine, rng) -> float:
        edges = list(engine.tree.edges())
        self._edge = edges[int(rng.integers(len(edges)))]
        self._old = engine.tree.branch_length(*self._edge)
        factor = math.exp(self.tuning * (rng.random() - 0.5))
        new = float(np.clip(self._old * factor, self.min_length, self.max_length))
        engine.set_branch_length(*self._edge, new)
        self.last_edge = self._edge
        # Hastings ratio of a multiplier proposal is the factor itself
        # (clipping makes this approximate at the extreme boundaries).
        return math.log(new / self._old) if self._old > 0 else 0.0

    def reject(self, engine) -> None:
        engine.set_branch_length(*self._edge, self._old)


class NniMove(Move):
    """Symmetric NNI on a uniformly chosen internal edge."""

    name = "nni"

    def __init__(self) -> None:
        self._undo = None

    def propose(self, engine, rng) -> float:
        internal = engine.tree.internal_edges()
        if not internal:
            self._undo = None
            return 0.0
        edge = internal[int(rng.integers(len(internal)))]
        variant = int(rng.integers(2))
        self._undo = engine.apply_nni(edge, variant)
        self.last_edge = edge
        return 0.0

    def reject(self, engine) -> None:
        if self._undo is not None:
            engine.undo_nni(self._undo)


class SprMove(Move):
    """Random SPR within a radius, with a Hastings count correction.

    The forward proposal picks one of ``k_fwd`` (prune-point, target) pairs
    uniformly; the reverse move has ``k_rev`` choices on the proposed tree,
    giving ``log k_fwd − log k_rev`` as the log Hastings ratio.
    """

    name = "spr"

    def __init__(self, radius: int = 3) -> None:
        if radius < 1:
            raise SearchError(f"radius must be >= 1, got {radius}")
        self.radius = radius
        self._undo = None

    def _num_choices(self, tree) -> int:
        total = 0
        for p in tree.inner_nodes():
            for s in tree.neighbors(p):
                total += len(tree.spr_candidates(p, s, self.radius))
        return total

    def propose(self, engine, rng) -> float:
        tree = engine.tree
        k_fwd = self._num_choices(tree)
        if k_fwd == 0:
            self._undo = None
            return 0.0
        pairs = [(p, s) for p in tree.inner_nodes() for s in tree.neighbors(p)]
        for _ in range(64):  # rejection-sample a valid (pair, target)
            p, s = pairs[int(rng.integers(len(pairs)))]
            cands = tree.spr_candidates(p, s, self.radius)
            if cands:
                target = cands[int(rng.integers(len(cands)))]
                break
        else:  # pragma: no cover - astronomically unlikely
            self._undo = None
            return 0.0
        try:
            self._undo = engine.apply_spr(p, s, target)
        except TreeError:  # pragma: no cover - candidates are pre-validated
            self._undo = None
            return 0.0
        self.last_edge = (p, s)
        k_rev = self._num_choices(tree)
        return math.log(k_fwd) - math.log(max(k_rev, 1))

    def reject(self, engine) -> None:
        if self._undo is not None:
            engine.undo_spr(self._undo)


class AlphaScaleMove(Move):
    """Multiplier proposal on the Γ shape parameter α."""

    name = "alpha-scale"

    def __init__(self, tuning: float = 0.3,
                 bounds: tuple[float, float] = (0.02, 100.0)) -> None:
        if tuning <= 0:
            raise SearchError(f"tuning must be positive, got {tuning}")
        self.tuning = tuning
        self.bounds = bounds
        self._old_rates = None

    def propose(self, engine, rng) -> float:
        if engine.rates.alpha is None:
            self._old_rates = None
            return 0.0
        self._old_rates = engine.rates
        old = engine.rates.alpha
        factor = math.exp(self.tuning * (rng.random() - 0.5))
        new = float(np.clip(old * factor, *self.bounds))
        engine.set_rates(engine.rates.with_alpha(new))
        return math.log(new / old)

    def reject(self, engine) -> None:
        if self._old_rates is not None:
            engine.set_rates(self._old_rates)
