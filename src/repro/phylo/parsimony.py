"""Fitch parsimony — fast topology scoring and starting trees.

RAxML uses parsimony both for building starting trees (randomized stepwise
addition) and for cheap move pre-screening. Fitch's algorithm maps
perfectly onto the library's bitmask encoding: a node's candidate state set
is the intersection of its children's sets when non-empty (no mutation),
else their union (one mutation). All patterns are scored simultaneously
with vectorized bit operations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TreeError
from repro.phylo.msa import Alignment
from repro.phylo.tree import Tree
from repro.utils.rng import as_rng


def fitch_score(tree: Tree, tip_codes: np.ndarray, weights: np.ndarray) -> float:
    """Weighted parsimony score of ``tree`` for pattern code matrix ``tip_codes``.

    ``tip_codes`` is ``(num_tips, patterns)`` of bitmask codes (gap = all
    bits, which correctly never forces a mutation); ``weights`` are pattern
    multiplicities. The score is independent of rooting.
    """
    if tip_codes.shape[0] != tree.num_tips:
        raise TreeError(
            f"{tip_codes.shape[0]} code rows for {tree.num_tips} tips"
        )
    num_patterns = tip_codes.shape[1]
    states = np.zeros((tree.num_nodes, num_patterns), dtype=tip_codes.dtype)
    states[: tree.num_tips] = tip_codes
    # Root next to the first *attached* tip so partially built trees (during
    # stepwise addition) score correctly over their attached taxa.
    root_tip = next((t for t in range(tree.num_tips) if tree.degree(t)), None)
    if root_tip is None:
        raise TreeError("tree has no attached tips")
    (anchor,) = tree.neighbors(root_tip)
    score = 0.0
    for node, left, right in tree.postorder_edge(root_tip, anchor):
        inter = states[left] & states[right]
        empty = inter == 0
        score += float(weights[empty].sum())
        states[node] = np.where(empty, states[left] | states[right], inter)
    # Combine across the root edge.
    root_inter = states[root_tip] & states[anchor]
    score += float(weights[root_inter == 0].sum())
    return score


def alignment_fitch_score(tree: Tree, alignment: Alignment) -> float:
    """Parsimony score of ``tree`` on ``alignment`` (taxa matched by name)."""
    codes = alignment.pattern_codes()
    weights = alignment.compress().weights
    ordered = np.stack([codes[alignment.index_of(tree.names[t])]
                        for t in range(tree.num_tips)])
    return fitch_score(tree, ordered, weights)


def stepwise_addition_tree(alignment: Alignment, seed=None,
                           sample_edges: int | None = None) -> Tree:
    """Randomized stepwise-addition parsimony starting tree (RAxML style).

    Taxa are inserted in random order; each is placed on the edge that
    minimizes the full-tree Fitch score. ``sample_edges`` caps how many
    candidate edges are scored per insertion (uniformly sampled), trading
    quality for speed on large taxon counts. Exhaustive placement is
    O(n³ · patterns) and fine for a few hundred taxa.
    """
    rng = as_rng(seed)
    n = alignment.num_taxa
    if n < 3:
        raise TreeError("stepwise addition needs at least 3 taxa")
    codes = alignment.pattern_codes()
    weights = alignment.compress().weights
    order = list(rng.permutation(n))
    names = alignment.names
    tree = Tree(n, names)
    inner0 = n
    for tip in order[:3]:
        tree._connect(tip, inner0, Tree.DEFAULT_BRANCH_LENGTH)
    tip_codes = np.zeros((n, codes.shape[1]), dtype=codes.dtype)
    for t in range(n):
        tip_codes[t] = codes[alignment.index_of(names[t])]

    for tip in order[3:]:
        edges = list(tree.edges())
        if sample_edges is not None and len(edges) > sample_edges:
            idx = rng.choice(len(edges), size=sample_edges, replace=False)
            edges = [edges[i] for i in idx]
        best_edge = None
        best_score = np.inf
        for edge in edges:
            inner = tree.insert_tip(tip, edge)
            # Score only over the taxa attached so far: detached tips have
            # zero-degree and postorder never reaches them.
            score = fitch_score(tree, tip_codes, weights)
            if score < best_score:
                best_score = score
                best_edge = edge
            tree.remove_tip(tip)
        tree.insert_tip(tip, best_edge)
    tree.validate()
    return tree
