"""Biological alphabets and ambiguity-aware state encoding.

The paper stores tip sequences compactly in RAM ("one 32-bit integer is
sufficient to store 8 nucleotides when ambiguous DNA character encoding is
used", §3.1): a nucleotide with ambiguity support needs 4 bits, one bit per
compatible base. We mirror that design: each alphabet maps characters to
*bitmask codes* over its states, so a tip likelihood for code ``c`` is the
0/1 indicator vector of the bits set in ``c``. Packing helpers reproduce the
8-nucleotides-per-``uint32`` layout the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlphabetError


@dataclass(frozen=True)
class Alphabet:
    """A state alphabet with ambiguity codes.

    Parameters
    ----------
    name:
        Human-readable name (``"DNA"``, ``"AA"``).
    states:
        The unambiguous state characters, in canonical order. The *state
        index* of ``states[i]`` is ``i`` and its bitmask code is ``1 << i``.
    ambiguities:
        Extra characters mapping to a set of compatible states, e.g. DNA
        ``"R" -> "AG"``. The gap/unknown character maps to *all* states.
    gap_chars:
        Characters treated as "completely unknown" (all bits set).
    """

    name: str
    states: str
    ambiguities: dict[str, str] = field(default_factory=dict)
    gap_chars: str = "-?"

    def __post_init__(self) -> None:
        if len(set(self.states)) != len(self.states):
            raise AlphabetError(f"duplicate states in alphabet {self.name!r}")
        object.__setattr__(self, "_char_to_code", self._build_table())

    # -- construction helpers -------------------------------------------------

    def _build_table(self) -> dict[str, int]:
        table: dict[str, int] = {}
        for i, ch in enumerate(self.states):
            table[ch.upper()] = 1 << i
            table[ch.lower()] = 1 << i
        for ch, members in self.ambiguities.items():
            code = 0
            for m in members:
                idx = self.states.find(m.upper())
                if idx < 0:
                    raise AlphabetError(
                        f"ambiguity {ch!r} refers to unknown state {m!r} in {self.name!r}"
                    )
                code |= 1 << idx
            table[ch.upper()] = code
            table[ch.lower()] = code
        all_states = (1 << len(self.states)) - 1
        for ch in self.gap_chars:
            table[ch] = all_states
        return table

    # -- core properties -------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of unambiguous states (4 for DNA, 20 for amino acids)."""
        return len(self.states)

    @property
    def num_codes(self) -> int:
        """Number of possible bitmask codes, i.e. ``2 ** num_states``.

        For DNA this is 16 (4-bit codes); tip-likelihood lookup tables are
        indexed by code, exactly as in RAxML's ``tipVector``.
        """
        return 1 << len(self.states)

    @property
    def gap_code(self) -> int:
        """The all-ones code representing a gap / fully unknown character."""
        return (1 << len(self.states)) - 1

    # -- encoding ---------------------------------------------------------------

    def encode_char(self, ch: str) -> int:
        """Return the bitmask code of a single character.

        Raises :class:`~repro.errors.AlphabetError` on unknown characters.
        """
        try:
            return self._char_to_code[ch]
        except KeyError:
            raise AlphabetError(f"character {ch!r} not in alphabet {self.name!r}") from None

    def encode(self, sequence: str) -> np.ndarray:
        """Encode a string into a ``uint8``/``uint32`` array of bitmask codes."""
        dtype = np.uint8 if self.num_states <= 8 else np.uint32
        out = np.empty(len(sequence), dtype=dtype)
        for i, ch in enumerate(sequence):
            out[i] = self.encode_char(ch)
        return out

    def decode(self, codes: np.ndarray) -> str:
        """Decode bitmask codes back to characters (canonical spelling).

        Codes with several bits set decode to the first matching ambiguity
        character, or ``'-'`` for the all-ones gap code.
        """
        rev: dict[int, str] = {}
        for ch in self.gap_chars[:1]:
            rev[self.gap_code] = ch
        for ch, members in self.ambiguities.items():
            code = 0
            for m in members:
                code |= 1 << self.states.index(m.upper())
            rev.setdefault(code, ch.upper())
        for i, ch in enumerate(self.states):
            rev[1 << i] = ch.upper()
        try:
            return "".join(rev[int(c)] for c in codes)
        except KeyError as exc:
            raise AlphabetError(f"cannot decode code {exc.args[0]}") from None

    def code_matrix(self) -> np.ndarray:
        """Return the ``(num_codes, num_states)`` 0/1 tip-indicator matrix.

        Row ``c`` is the tip conditional-likelihood vector for bitmask code
        ``c``: 1 for every state compatible with the observed character.
        Row 0 (the impossible empty code) is all zeros and never used.
        """
        codes = np.arange(self.num_codes, dtype=np.uint32)[:, None]
        bits = np.arange(self.num_states, dtype=np.uint32)[None, :]
        return ((codes >> bits) & 1).astype(np.float64)

    # -- compact packing (paper §3.1) -------------------------------------------

    def bits_per_symbol(self) -> int:
        """Bits needed per bitmask code (4 for DNA → 8 symbols per uint32)."""
        return self.num_states

    def pack(self, codes: np.ndarray) -> np.ndarray:
        """Pack bitmask codes into a dense ``uint32`` array.

        For DNA, 8 codes fit in one ``uint32`` — the layout the paper uses to
        argue that tip vectors are cheap to keep in RAM.
        """
        bits = self.bits_per_symbol()
        per_word = 32 // bits
        if per_word == 0:
            raise AlphabetError(f"{self.name}: symbols wider than 32 bits cannot be packed")
        n = len(codes)
        nwords = (n + per_word - 1) // per_word
        padded = np.zeros(nwords * per_word, dtype=np.uint64)
        padded[:n] = np.asarray(codes, dtype=np.uint64)
        shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
        words = (padded.reshape(nwords, per_word) << shifts[None, :]).sum(axis=1)
        return words.astype(np.uint32)

    def unpack(self, words: np.ndarray, n: int) -> np.ndarray:
        """Inverse of :meth:`pack`; ``n`` is the original symbol count."""
        bits = self.bits_per_symbol()
        per_word = 32 // bits
        mask = np.uint64((1 << bits) - 1)
        w = np.asarray(words, dtype=np.uint64)[:, None]
        shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))[None, :]
        codes = ((w >> shifts) & mask).reshape(-1)[:n]
        dtype = np.uint8 if self.num_states <= 8 else np.uint32
        return codes.astype(dtype)


#: The DNA alphabet with full IUPAC ambiguity support.
DNA = Alphabet(
    name="DNA",
    states="ACGT",
    ambiguities={
        "U": "T",
        "R": "AG",
        "Y": "CT",
        "S": "CG",
        "W": "AT",
        "K": "GT",
        "M": "AC",
        "B": "CGT",
        "D": "AGT",
        "H": "ACT",
        "V": "ACG",
        "N": "ACGT",
        "X": "ACGT",
        ".": "ACGT",
    },
)

#: The 20-state amino-acid alphabet (order follows PAML/RAxML convention).
AMINO_ACID = Alphabet(
    name="AA",
    states="ARNDCQEGHILKMFPSTWYV",
    ambiguities={
        "B": "ND",
        "Z": "QE",
        "J": "IL",
        "X": "ARNDCQEGHILKMFPSTWYV",
        ".": "ARNDCQEGHILKMFPSTWYV",
    },
)
