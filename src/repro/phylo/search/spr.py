"""Lazy Subtree-Pruning-and-Regrafting rounds (RAxML's core move).

For every candidate regraft the engine evaluates the tree *lazily*: only
the three branch lengths around the insertion point are re-optimized and
the likelihood is read off the insertion edge (paper §4.2, the "Lazy SPR
technique; see [6]"). Rejected candidates are rolled back exactly —
topology, branch lengths and CLV validity — so the search explores many
topologies while touching few ancestral vectors per step: precisely the
locality the out-of-core layer exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError


@dataclass
class SprRoundResult:
    """Outcome of one :func:`lazy_spr_round`."""

    lnl: float
    moves_applied: int
    moves_evaluated: int


def _optimize_insertion_branches(engine, p: int, s: int, tu: int, tv: int) -> None:
    """The "lazy" part: re-optimize only the 3 branches at the regraft point."""
    engine.optimize_branch(tu, p)
    engine.optimize_branch(p, tv)
    engine.optimize_branch(p, s)


def lazy_spr_round(
    engine,
    radius: int = 5,
    min_improvement: float = 1e-3,
    prune_points=None,
) -> SprRoundResult:
    """One pass of lazy SPR over all (or given) prunable subtrees.

    For each inner node ``p`` and neighbor direction ``s``, every regraft
    target within ``radius`` is tried; the best strictly-improving target
    is applied (best-improvement per prune point, RAxML-style "greedy with
    rollback"). Returns the final likelihood and move counts.
    """
    if radius < 1:
        raise SearchError(f"rearrangement radius must be >= 1, got {radius}")
    tree = engine.tree
    best_lnl = engine.loglikelihood()
    applied = 0
    evaluated = 0

    if prune_points is None:
        prune_points = [(p, s) for p in tree.inner_nodes() for s in tree.neighbors(p)]

    for p, s in prune_points:
        if tree.degree(p) != 3:
            continue
        rest = [x for x in tree.neighbors(p) if x != s]
        if len(rest) != 2:
            continue
        candidates = tree.spr_candidates(p, s, radius)
        if not candidates:
            continue
        saved_ps = tree.branch_length(p, s)
        best_target = None
        best_target_lnl = best_lnl + min_improvement
        for target in candidates:
            undo = engine.apply_spr(p, s, target)
            _optimize_insertion_branches(engine, p, s, undo.target_u, undo.target_v)
            lnl = engine.edge_loglikelihood(p, s)
            evaluated += 1
            if lnl >= best_target_lnl:
                best_target_lnl = lnl
                best_target = target
            engine.undo_spr(undo)
            if tree.branch_length(p, s) != saved_ps:
                engine.set_branch_length(p, s, saved_ps)
        if best_target is not None:
            undo = engine.apply_spr(p, s, best_target)
            _optimize_insertion_branches(engine, p, s, undo.target_u, undo.target_v)
            best_lnl = engine.edge_loglikelihood(p, s)
            applied += 1
    return SprRoundResult(lnl=best_lnl, moves_applied=applied, moves_evaluated=evaluated)
