"""The top-level maximum-likelihood search driver.

Alternates lazy-SPR rounds with branch-length smoothing and (optionally)
Γ-shape optimization until the likelihood stops improving — a compact
version of the RAxML hill-climbing schedule whose vector access stream the
paper's experiments measure (§4.1: "tree searches were executed under the
Γ model of rate heterogeneity").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SearchError
from repro.phylo.likelihood.model_opt import optimize_alpha
from repro.phylo.search.nni import nni_round
from repro.phylo.search.spr import lazy_spr_round


@dataclass
class SearchResult:
    """Summary of an :func:`ml_search` run."""

    lnl: float
    rounds: int
    moves_applied: int
    moves_evaluated: int
    lnl_history: list[float] = field(default_factory=list)


def ml_search(
    engine,
    *,
    radius: int = 5,
    max_rounds: int = 10,
    min_improvement: float = 1e-2,
    branch_passes: int = 1,
    do_nni: bool = True,
    do_alpha: bool = False,
    checkpoint_path=None,
    checkpoint_every: int = 1,
    resume_state: dict | None = None,
) -> SearchResult:
    """Hill-climb the tree in place; returns a :class:`SearchResult`.

    Each round: branch smoothing → lazy SPR sweep → optional NNI polish →
    optional α re-optimization. Stops when a full round improves the
    log-likelihood by less than ``min_improvement`` or after
    ``max_rounds``.

    With ``checkpoint_path`` set, a crash-safe checkpoint (tree, model,
    rates, plus the driver's own counters under ``extra["search"]``) is
    written via :func:`repro.checkpoint.save_checkpoint` after every
    ``checkpoint_every``-th round and on completion. A killed search is
    resumed by loading the checkpoint
    (:func:`repro.checkpoint.load_checkpoint`) and passing the recovered
    ``extra["search"]`` dict back as ``resume_state``: rounds already
    completed are not re-run, and — because each round is a deterministic
    function of the (exactly serialized) tree and parameters — the resumed
    search reaches a bit-identical final likelihood.
    """
    if max_rounds < 1:
        raise SearchError(f"max_rounds must be >= 1, got {max_rounds}")
    if checkpoint_every < 1:
        raise SearchError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}")

    def save(state_rounds, applied, evaluated, history, converged):
        if checkpoint_path is None:
            return
        from repro.checkpoint import save_checkpoint
        save_checkpoint(engine, checkpoint_path, extra={"search": {
            "rounds": state_rounds,
            "moves_applied": applied,
            "moves_evaluated": evaluated,
            "lnl_history": history,
            "converged": converged,
        }})

    if resume_state is not None:
        rounds = int(resume_state["rounds"])
        applied = int(resume_state["moves_applied"])
        evaluated = int(resume_state["moves_evaluated"])
        history = [float(x) for x in resume_state["lnl_history"]]
        if not history:
            raise SearchError("resume state carries no lnl history")
        lnl = history[-1]
        if resume_state.get("converged"):
            return SearchResult(lnl=lnl, rounds=rounds, moves_applied=applied,
                                moves_evaluated=evaluated, lnl_history=history)
    else:
        lnl = engine.optimize_all_branches(passes=branch_passes)
        history = [lnl]
        applied = evaluated = 0
        rounds = 0
    while rounds < max_rounds:
        before = lnl
        spr = lazy_spr_round(engine, radius=radius, min_improvement=min_improvement)
        applied += spr.moves_applied
        evaluated += spr.moves_evaluated
        lnl = spr.lnl
        if do_nni:
            nni = nni_round(engine, min_improvement=min_improvement)
            applied += nni.moves_applied
            evaluated += nni.moves_evaluated
            lnl = nni.lnl
        if do_alpha and getattr(engine, "rates", None) is not None \
                and engine.rates.alpha is not None:
            optimize_alpha(engine)
        lnl = engine.optimize_all_branches(passes=branch_passes)
        rounds += 1
        history.append(lnl)
        converged = lnl - before < min_improvement
        if converged or rounds >= max_rounds or rounds % checkpoint_every == 0:
            save(rounds, applied, evaluated, history, converged)
        if converged:
            break
    return SearchResult(
        lnl=lnl,
        rounds=rounds,
        moves_applied=applied,
        moves_evaluated=evaluated,
        lnl_history=history,
    )
