"""Nearest-Neighbor-Interchange rounds — the cheap local refinement move.

NNI swaps the two subtrees across an internal edge; it is the radius-1
special case of SPR and is used as a polishing pass after SPR rounds.
Like lazy SPR, each evaluation re-optimizes only the central branch before
reading the likelihood, so the ancestral-vector access pattern stays local.
"""

from __future__ import annotations

from dataclasses import dataclass



@dataclass
class NniRoundResult:
    """Outcome of one :func:`nni_round`."""

    lnl: float
    moves_applied: int
    moves_evaluated: int


def nni_round(engine, min_improvement: float = 1e-3) -> NniRoundResult:
    """Try both NNI variants across every internal edge; keep improvements.

    Improving variants are applied immediately (first-improvement): the
    next edges are then evaluated on the improved topology, like RAxML's
    NNI post-processing.
    """
    best_lnl = engine.loglikelihood()
    applied = 0
    evaluated = 0
    for edge in list(engine.tree.internal_edges()):
        if not engine.tree.has_edge(*edge):
            continue  # a previous applied move may have re-wired this edge
        for variant in (0, 1):
            saved = engine.tree.branch_length(*edge)
            undo = engine.apply_nni(edge, variant)
            engine.optimize_branch(*edge)
            lnl = engine.edge_loglikelihood(*edge)
            evaluated += 1
            if lnl > best_lnl + min_improvement:
                best_lnl = lnl
                applied += 1
                break  # keep the move; do not try the sibling variant
            engine.undo_nni(undo)
            if engine.tree.branch_length(*edge) != saved:
                engine.set_branch_length(*edge, saved)
    return NniRoundResult(lnl=best_lnl, moves_applied=applied, moves_evaluated=evaluated)
