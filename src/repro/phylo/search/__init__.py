"""Maximum-likelihood tree search: lazy SPR, NNI, and the full driver.

The search layer reproduces the access pattern that the paper's evaluation
measures: RAxML's *lazy SPR* technique (§4.2 — "in most cases only
re-optimizing three branch lengths after a change of the tree topology"),
which is the main source of the ancestral-vector locality that keeps
out-of-core miss rates below 10% at ``f = 0.25``.
"""

from repro.phylo.search.driver import SearchResult, ml_search
from repro.phylo.search.nni import nni_round
from repro.phylo.search.spr import lazy_spr_round

__all__ = ["ml_search", "SearchResult", "lazy_spr_round", "nni_round"]
