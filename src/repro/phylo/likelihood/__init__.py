"""The Phylogenetic Likelihood Function: kernels, engine, optimizers.

Implements Felsenstein's pruning algorithm over ancestral probability
vectors of shape ``(patterns, rate_categories, states)`` — the data
structure whose memory footprint motivates the paper — together with the
traversal planner that drives the out-of-core access pattern, the
Newton–Raphson branch-length optimizer, and model-parameter optimization.
"""

from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.likelihood.traversal import TraversalPlan, TraversalStep

__all__ = ["LikelihoodEngine", "TraversalPlan", "TraversalStep"]
