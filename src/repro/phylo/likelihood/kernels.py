"""Numpy-vectorized PLF kernels.

All kernels operate on *conditional likelihood vectors* (CLVs, the paper's
"ancestral probability vectors") laid out as contiguous arrays of shape
``(patterns, categories, states)`` — for DNA under Γ4 that is the
``s × 4 × 4`` doubles block whose size the paper computes in §3.1. Kernels
are vectorized over all patterns at once (the hpc guide's
"vectorize the loops, mind the cache" rule): each is one or two ``einsum``
contractions over contiguous operands plus an in-place rescale.

Numerical scaling follows RAxML: whenever every state's likelihood at a
site drops below ``2^-256``, the site is multiplied by ``2^256`` and a
per-site counter is incremented; the log-likelihood subtracts
``count · 256 · ln 2`` at the root. Scaling decisions depend only on CLV
values, so out-of-core execution reproduces in-core results bit-for-bit
(the paper's §4.1 correctness criterion).
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError


class ScalingScheme:
    """Dtype-dependent rescaling constants.

    float64 uses RAxML's ``2^±256``; float32 (the single-precision mode of
    Berger & Stamatakis 2010, paper ref. [1]) must stay inside its narrow
    exponent range and uses ``2^±30``.
    """

    def __init__(self, dtype=np.float64) -> None:
        dtype = np.dtype(dtype)
        if dtype == np.float64:
            self.exponent = 256
        elif dtype == np.float32:
            self.exponent = 30
        else:
            raise LikelihoodError(f"unsupported CLV dtype {dtype}")
        self.dtype = dtype
        self.threshold = dtype.type(2.0) ** (-self.exponent)
        self.multiplier = dtype.type(2.0) ** self.exponent
        self.log_multiplier = self.exponent * np.log(2.0)  # ln(2^exponent)


def tip_lookup(P: np.ndarray, code_matrix: np.ndarray) -> np.ndarray:
    """Per-branch tip lookup table — RAxML's ``tipVector`` precomputation.

    ``P`` is ``(C, S, S)``; ``code_matrix`` is the alphabet's
    ``(num_codes, S)`` 0/1 indicator. Returns ``(C, num_codes, S)`` where
    entry ``[c, k, a] = Σ_b P[c,a,b]·ind[k,b]`` — the probability of state
    ``a`` at the inner end of the branch given observed code ``k`` at the
    tip. Indexing this table by a tip's pattern codes replaces a full
    matrix-vector product per site with a gather.
    """
    return np.einsum("cab,kb->cka", P, code_matrix, optimize=True)


def propagate_tip(P: np.ndarray, codes: np.ndarray, code_matrix: np.ndarray) -> np.ndarray:
    """Child contribution of a *tip* across branch ``P``: ``(patterns, C, S)``."""
    lut = tip_lookup(P, code_matrix)                # (C, K, S)
    return np.ascontiguousarray(lut[:, codes, :].transpose(1, 0, 2))


def propagate_inner(P: np.ndarray, clv: np.ndarray) -> np.ndarray:
    """Child contribution of an *inner* CLV across branch ``P``.

    ``clv`` is ``(patterns, C, S)``; returns the same shape:
    ``out[i,c,a] = Σ_b P[c,a,b] · clv[i,c,b]``.
    """
    return np.einsum("cab,icb->ica", P, clv, optimize=True)


def combine_children(left: np.ndarray, right: np.ndarray, out: np.ndarray) -> None:
    """Elementwise product of the two propagated child contributions, in place.

    This is the Felsenstein recurrence: the parent's conditional likelihood
    is the product of the per-child branch-propagated conditionals.
    ``out`` may alias neither input (it is the freshly allocated slot the
    store returned in write-only mode).
    """
    np.multiply(left, right, out=out)


def rescale_clv(clv: np.ndarray, scale_counts: np.ndarray, scheme: ScalingScheme) -> int:
    """Apply per-site underflow rescaling in place; returns sites rescaled.

    ``scale_counts`` is the ``(patterns,)`` int32 row for this node; it must
    already hold the *sum of the children's counts* (the caller's job) and
    is incremented where this update triggered a rescale.
    """
    site_max = clv.max(axis=(1, 2))
    mask = site_max < scheme.threshold
    n = int(mask.sum())
    if n:
        clv[mask] *= scheme.multiplier
        scale_counts[mask] += 1
    return n


# -- batched variants (one contraction per group of independent updates) --------
#
# The batched kernels run a whole *group* of (node, block) updates —
# assembled by repro.phylo.likelihood.schedule — as single contractions
# over a stacked leading "member" axis. Bit-identity with the per-member
# kernels above is part of their contract (the §4.1 criterion): the
# batched matmul form evaluates, per (member, category), exactly the same
# (span, S) × (S, S) product the per-member einsum lowers to, the batched
# tip path is the same lookup-table einsum followed by a pure gather, and
# max/multiply are rounding-free. tests/test_batch.py enforces equality
# down to the last bit against a loop of ``update_clv`` calls.


def propagate_inner_batch(P: np.ndarray, clv: np.ndarray) -> np.ndarray:
    """Batched :func:`propagate_inner` over a leading member axis.

    ``P`` is ``(M, C, S, S)``, ``clv`` is ``(M, I, C, S)``; returns
    ``(M, I, C, S)`` with ``out[m,i,c,a] = Σ_b P[m,c,a,b]·clv[m,i,c,b]``.
    Implemented as one batched GEMM — per ``(m, c)`` the same
    ``(I, S) @ (S, S)ᵀ`` product as the per-member einsum — which is both
    bit-identical to and substantially faster than ``M`` separate einsum
    calls (the contraction setup and dispatch are paid once).
    """
    prod = np.matmul(clv.transpose(0, 2, 1, 3), P.transpose(0, 1, 3, 2))
    return prod.transpose(0, 2, 1, 3)


def tip_lookup_batch(P: np.ndarray, code_matrix: np.ndarray) -> np.ndarray:
    """Batched :func:`tip_lookup`: ``(M, C, S, S)`` → ``(M, C, K, S)``."""
    return np.einsum("mcab,kb->mcka", P, code_matrix, optimize=True)


def propagate_tip_batch(P: np.ndarray, codes: np.ndarray,
                        code_matrix: np.ndarray) -> np.ndarray:
    """Batched :func:`propagate_tip`.

    ``P`` is ``(M, C, S, S)``, ``codes`` is ``(M, I)`` int; returns
    ``(M, I, C, S)``. The lookup tables are built in one einsum; the
    per-site indexing is a pure gather (no arithmetic), so the values are
    bit-identical to the per-member path by construction.
    """
    lut = tip_lookup_batch(P, code_matrix)          # (M, C, K, S)
    m_idx = np.arange(lut.shape[0])[:, None]
    # Advanced indices at axes 0 and 2 around the ``:`` slice put the
    # broadcast (M, I) axes first: result[m,i,c,s] = lut[m,c,codes[m,i],s].
    return lut[m_idx, :, codes, :]


def combine_and_rescale_batch(
    left: np.ndarray,
    right: np.ndarray,
    out: np.ndarray,
    scale_rows: list[np.ndarray],
    scheme: ScalingScheme,
) -> int:
    """Fused :func:`combine_children` + :func:`rescale_clv` over a stack.

    ``left``/``right``/``out`` are ``(M, I, C, S)``; ``scale_rows[m]`` is
    member ``m``'s ``(I,)`` int32 scale-count slice (pre-loaded with the
    children's counts, exactly as :func:`rescale_clv` requires). Returns
    the total number of (member, site) rescales applied. The site maxima
    and threshold comparisons are computed over the whole stack at once;
    ``max`` and the power-of-two multiply are exact, so scaling decisions
    — and hence the counters and the CLV bits — match the per-member path.
    """
    np.multiply(left, right, out=out)
    site_max = out.max(axis=(2, 3))                 # (M, I)
    mask = site_max < scheme.threshold
    n = int(mask.sum())
    if n:
        out[mask] *= scheme.multiplier
        for m in np.nonzero(mask.any(axis=1))[0]:
            scale_rows[m][mask[m]] += 1
    return n


def update_clv_batch(
    out: np.ndarray,
    P_left: np.ndarray,
    P_right: np.ndarray,
    left_clv: np.ndarray | None,
    right_clv: np.ndarray | None,
    left_codes: np.ndarray | None,
    right_codes: np.ndarray | None,
    code_matrix: np.ndarray,
    scale_rows: list[np.ndarray],
    scheme: ScalingScheme,
) -> None:
    """A stack of independent Felsenstein steps as one fused update.

    The batched analogue of :func:`update_clv`: every operand carries a
    leading member axis ``M`` and each *side* is homogeneous — all inner
    (``*_clv`` of shape ``(M, I, C, S)``) or all tips (``*_codes`` of
    shape ``(M, I)``). Heterogeneous groups are handled by the engine,
    which splits each side's members between the two propagate kernels;
    this entry point covers the homogeneous case in one call and is the
    reference fused path for the bit-identity tests.
    """
    if (left_clv is None) == (left_codes is None):
        raise LikelihoodError("left side must be exactly one of CLV or tip codes")
    if (right_clv is None) == (right_codes is None):
        raise LikelihoodError("right side must be exactly one of CLV or tip codes")
    lc = (propagate_tip_batch(P_left, left_codes, code_matrix)
          if left_clv is None else propagate_inner_batch(P_left, left_clv))
    rc = (propagate_tip_batch(P_right, right_codes, code_matrix)
          if right_clv is None else propagate_inner_batch(P_right, right_clv))
    combine_and_rescale_batch(lc, rc, out, scale_rows, scheme)


def update_clv(
    out: np.ndarray,
    P_left: np.ndarray,
    P_right: np.ndarray,
    left_clv: np.ndarray | None,
    right_clv: np.ndarray | None,
    left_codes: np.ndarray | None,
    right_codes: np.ndarray | None,
    code_matrix: np.ndarray,
    scale_counts: np.ndarray,
    scheme: ScalingScheme,
) -> None:
    """One Felsenstein-pruning step: fill ``out`` from its two children.

    Each child is either an inner CLV (``*_clv`` given) or a tip
    (``*_codes`` given); exactly one of the two must be non-None per side.
    ``scale_counts`` must be pre-loaded with the children's counts.
    """
    if (left_clv is None) == (left_codes is None):
        raise LikelihoodError("left child must be exactly one of CLV or tip codes")
    if (right_clv is None) == (right_codes is None):
        raise LikelihoodError("right child must be exactly one of CLV or tip codes")
    lc = (propagate_tip(P_left, left_codes, code_matrix)
          if left_clv is None else propagate_inner(P_left, left_clv))
    rc = (propagate_tip(P_right, right_codes, code_matrix)
          if right_clv is None else propagate_inner(P_right, right_clv))
    combine_children(lc, rc, out)
    rescale_clv(out, scale_counts, scheme)


def edge_site_likelihoods(
    P: np.ndarray,
    freqs: np.ndarray,
    cat_weights: np.ndarray,
    u_clv: np.ndarray | None,
    v_clv: np.ndarray | None,
    u_codes: np.ndarray | None,
    v_codes: np.ndarray | None,
    code_matrix: np.ndarray,
) -> np.ndarray:
    """Per-pattern likelihoods evaluated across the virtual-root edge.

    ``L_i = Σ_c w_c Σ_a π_a · U[i,c,a] · (P_c · V)[i,c,a]`` where ``U`` is
    the CLV (or tip indicator) at one end and ``V`` at the other; the branch
    matrix ``P`` is folded into the ``V`` side. Scaling counters are *not*
    applied here — the caller adds ``(counts_u + counts_v) · log_multiplier``
    in log space.
    """
    if (u_clv is None) == (u_codes is None):
        raise LikelihoodError("u side must be exactly one of CLV or tip codes")
    if (v_clv is None) == (v_codes is None):
        raise LikelihoodError("v side must be exactly one of CLV or tip codes")
    U = code_matrix[u_codes][:, None, :] if u_clv is None else u_clv
    folded = (propagate_tip(P, v_codes, code_matrix)
              if v_clv is None else propagate_inner(P, v_clv))
    # Σ_a π_a U·folded, then weight categories.
    per_cat = np.einsum("ica,ica,a->ic", U, folded, freqs, optimize=True)
    return per_cat @ cat_weights


def log_likelihood_from_sites(
    site_l: np.ndarray,
    pattern_weights: np.ndarray,
    scale_counts_sum: np.ndarray,
    scheme: ScalingScheme,
) -> float:
    """Weighted log-likelihood with scaling-counter correction.

    ``lnL = Σ_i w_i · (ln L_i − counts_i · ln(multiplier))``. Raises if any
    site likelihood is non-positive (a kernel bug or a zero-probability
    pattern under the model).
    """
    if np.any(site_l <= 0.0) or not np.all(np.isfinite(site_l)):
        bad = int(np.argmin(site_l))
        raise LikelihoodError(
            f"non-positive site likelihood at pattern {bad}: {site_l[bad]!r}"
        )
    return float(
        pattern_weights @ (np.log(site_l) - scale_counts_sum * scheme.log_multiplier)
    )


def branch_sumtable(
    eigenvectors: np.ndarray,
    inv_eigenvectors: np.ndarray,
    freqs: np.ndarray,
    u_clv: np.ndarray | None,
    v_clv: np.ndarray | None,
    u_codes: np.ndarray | None,
    v_codes: np.ndarray | None,
    code_matrix: np.ndarray,
) -> np.ndarray:
    """RAxML's ``makenewz`` sumtable: eigen-basis cross terms of the two CLVs.

    Returns ``A`` of shape ``(patterns, C, S)`` with
    ``A[i,c,k] = (Σ_a π_a U[i,c,a] V[a,k]) · (Σ_b V⁻¹[k,b] W[i,c,b])``
    so the per-site likelihood across the branch is the single exponential
    sum ``L_i(t) = Σ_c w_c Σ_k A[i,c,k] e^{λ_k r_c t}`` — the whole
    Newton–Raphson iteration then runs on this table without touching any
    other ancestral vector, which is the access-locality property §4.2
    credits for the low miss rates at tiny slot counts.
    """
    if (u_clv is None) == (u_codes is None):
        raise LikelihoodError("u side must be exactly one of CLV or tip codes")
    if (v_clv is None) == (v_codes is None):
        raise LikelihoodError("v side must be exactly one of CLV or tip codes")
    U = code_matrix[u_codes][:, None, :] if u_clv is None else u_clv
    W = code_matrix[v_codes][:, None, :] if v_clv is None else v_clv
    left = np.einsum("ica,a,ak->ick", U, freqs, eigenvectors, optimize=True)
    right = np.einsum("kb,icb->ick", inv_eigenvectors, W, optimize=True)
    return left * right


def branch_lnl_and_derivatives(
    sumtable: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    t: float,
):
    """``(lnL', lnL'')`` plus raw site likelihoods at branch length ``t``.

    From the sumtable representation: with ``g_i(t) = Σ_{c,k} w_c A[i,c,k]
    e^{λ_k r_c t}``, the slope of the total log-likelihood is
    ``Σ_i w_i g'_i/g_i`` and its curvature ``Σ_i w_i (g''_i/g_i −
    (g'_i/g_i)²)``; scaling constants multiply ``g_i`` and cancel in the
    ratios, so no counters are needed here.

    Returns ``(site_l, d1, d2)``.
    """
    lam = eigenvalues[None, :] * rates[:, None]          # (C, S)
    e = np.exp(lam * t)                                  # (C, S)
    wexp = cat_weights[:, None] * e                      # fold category weights
    g = np.einsum("ick,ck->i", sumtable, wexp, optimize=True)
    g1 = np.einsum("ick,ck->i", sumtable, wexp * lam, optimize=True)
    g2 = np.einsum("ick,ck->i", sumtable, wexp * lam * lam, optimize=True)
    if np.any(g <= 0.0):
        # A candidate branch length drove some site to numerical zero —
        # report infinitely-bad derivatives so the optimizer backtracks.
        return g, np.nan, np.nan
    r1 = g1 / g
    d1 = float(pattern_weights @ r1)
    d2 = float(pattern_weights @ (g2 / g - r1 * r1))
    return g, d1, d2
