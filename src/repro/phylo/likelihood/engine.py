"""The likelihood engine: RAxML's evaluate/newview machinery over any store.

:class:`LikelihoodEngine` owns a tree, an alignment, a substitution model
and a rate model, and computes log-likelihoods by Felsenstein pruning. All
ancestral-vector traffic flows through a single indirection — the paper's
``getxvector()`` — so the same engine runs:

* **in-core** (``fraction=1.0``, the "standard RAxML" configuration),
* **out-of-core** with any slot fraction / replacement policy / backing
  store (the paper's contribution),
* against the **paging simulator** (the Figure-5 "standard with paging"
  baseline) by passing a :class:`~repro.vm.standardstore.PagedStandardStore`.

Correctness contract: for a fixed tree, data and model, the returned
log-likelihood is bit-identical across all of these configurations
(paper §4.1).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.vecstore import AncestralVectorStore
from repro.errors import LikelihoodError
from repro.phylo.likelihood import kernels
from repro.phylo.likelihood.traversal import (
    OrientationState,
    TraversalPlan,
    plan_edge_traversal,
)
from repro.phylo.models.base import ReversibleModel
from repro.phylo.models.rates import RateModel
from repro.phylo.msa import Alignment
from repro.phylo.tree import Tree


class LikelihoodEngine:
    """Compute the PLF on ``tree`` × ``alignment`` under ``model`` + ``rates``.

    Parameters
    ----------
    tree:
        An unrooted binary :class:`Tree`; tip ``i`` corresponds to taxon
        ``tree.names[i]``, which must exist in the alignment.
    alignment:
        The :class:`Alignment` (site patterns are compressed internally).
    model:
        A :class:`ReversibleModel` over the alignment's alphabet size.
    rates:
        A :class:`RateModel`; defaults to Γ4 with α = 1 (the paper's setup).
    store:
        Anything with the vector-store ``get(item, pins, write_only)``
        protocol. If omitted, an :class:`AncestralVectorStore` is built from
        ``fraction`` / ``num_slots`` / ``policy`` / ``backing`` /
        ``read_skipping`` — ``fraction=1.0`` keeps every vector resident.
    writeback_depth / io_threads:
        Forwarded to the built store: ``writeback_depth > 0`` makes
        evictions asynchronous (write-behind queue drained by
        ``io_threads`` writer threads). Only valid when the engine builds
        its own store.
    prefetch_depth:
        ``> 0`` attaches a :class:`~repro.core.prefetch.ThreadedPrefetcher`
        that is fed each traversal's access sequence (the paper's §5
        prefetch thread); reads overlap the likelihood kernels. Works with
        an explicit ``store`` too, provided it is an
        :class:`AncestralVectorStore`.
    dtype:
        ``float64`` (default) or ``float32`` for the single-precision mode.
    """

    def __init__(
        self,
        tree: Tree,
        alignment: Alignment,
        model: ReversibleModel,
        rates: RateModel | None = None,
        *,
        store=None,
        fraction: float | None = None,
        num_slots: int | None = None,
        policy="lru",
        backing=None,
        read_skipping: bool = True,
        track_dirty: bool = False,
        poison_skipped_reads: bool = False,
        policy_kwargs: dict | None = None,
        writeback_depth: int = 0,
        io_threads: int = 1,
        prefetch_depth: int = 0,
        dtype=np.float64,
    ) -> None:
        if tree.num_tips < 3:
            raise LikelihoodError("the PLF engine needs at least 3 taxa")
        if alignment.alphabet.num_states != model.num_states:
            raise LikelihoodError(
                f"model has {model.num_states} states but alphabet "
                f"{alignment.alphabet.name} has {alignment.alphabet.num_states}"
            )
        self.tree = tree
        self.alignment = alignment
        self.model = model
        self.rates = rates if rates is not None else RateModel.gamma(1.0, 4)
        self.dtype = np.dtype(dtype)
        self.scaling = kernels.ScalingScheme(self.dtype)

        comp = alignment.compress()
        self.num_patterns = comp.num_patterns
        self.pattern_weights = comp.weights.astype(np.float64)
        pattern_codes = alignment.pattern_codes()
        # Tip i of the tree maps to the alignment row with the same name.
        self._tip_codes = np.empty((tree.num_tips, self.num_patterns), dtype=np.int64)
        for tip in range(tree.num_tips):
            row = alignment.index_of(tree.names[tip])
            self._tip_codes[tip] = pattern_codes[row]
        self._code_matrix = alignment.alphabet.code_matrix().astype(self.dtype)

        C = self.rates.num_categories
        S = model.num_states
        self.clv_shape = (self.num_patterns, C, S)
        self.num_inner = tree.num_inner

        if store is None:
            store = AncestralVectorStore(
                self.num_inner,
                self.clv_shape,
                dtype=self.dtype,
                fraction=fraction,
                num_slots=num_slots,
                policy=policy,
                backing=backing,
                read_skipping=read_skipping,
                track_dirty=track_dirty,
                poison_skipped_reads=poison_skipped_reads,
                policy_kwargs=policy_kwargs,
                writeback_depth=writeback_depth,
                io_threads=io_threads,
            )
        elif fraction is not None or num_slots is not None:
            raise LikelihoodError("pass either an explicit store or a geometry, not both")
        elif writeback_depth:
            raise LikelihoodError(
                "writeback_depth configures the built store; with an explicit "
                "store, construct it with writeback_depth yourself"
            )
        self.store = store
        self._bind_topological_policy()
        self.prefetcher = None
        if prefetch_depth:
            if not isinstance(store, AncestralVectorStore):
                raise LikelihoodError(
                    "prefetch_depth needs an AncestralVectorStore "
                    f"(got {type(store).__name__})"
                )
            from repro.core.prefetch import ThreadedPrefetcher

            self.prefetcher = ThreadedPrefetcher(store, depth=prefetch_depth)

        # Per-site underflow-scaling counters stay in RAM (like tips, they
        # are small compared to the CLVs themselves — paper §3.1).
        self.scale_counts = np.zeros((self.num_inner, self.num_patterns), dtype=np.int32)
        self.orientation = OrientationState(tree)
        self._root_edge: tuple[int, int] | None = None
        # Transition matrices are tiny relative to CLVs; caching them per
        # exact branch length is free memory-wise and saves eigen work on
        # repeated traversals. Exact float keys keep results bit-identical.
        self._p_cache: dict[float, np.ndarray] = {}
        # Per-phase timers (observability, default off): when a
        # repro.utils.timing.Stopwatch is attached — normally through
        # repro.obs.Observer — the engine accumulates "plan" / "kernel" /
        # "store_wait" laps. Purely passive; numerics are unaffected.
        self.timers = None

    # -- wiring ---------------------------------------------------------------------

    def _bind_topological_policy(self) -> None:
        """Give a Topological policy its tree-distance provider (§3.3)."""
        policy = getattr(self.store, "policy", None)
        if (policy is not None and getattr(policy, "name", "") == "topological"
                and getattr(policy, "distance_provider", None) is None):
            n = self.tree.num_tips

            def distances(requested_item: int) -> np.ndarray:
                return self.tree.hop_distances_from(n + requested_item)[n:]

            policy.distance_provider = distances

    def item(self, node: int) -> int:
        """Store item id of an inner node (tips have no ancestral vector)."""
        if self.tree.is_tip(node):
            raise LikelihoodError(f"tip {node} has no ancestral vector")
        return node - self.tree.num_tips

    def _inner_pins(self, nodes) -> tuple[int, ...]:
        return tuple(self.item(x) for x in nodes if not self.tree.is_tip(x))

    @property
    def stats(self):
        """The store's :class:`~repro.core.stats.IoStats`."""
        return self.store.stats

    def default_edge(self) -> tuple[int, int]:
        """The canonical evaluation edge: tip 0 and its attachment node."""
        (nbr,) = self.tree.neighbors(0)
        return (0, nbr)

    # -- transition matrices -----------------------------------------------------------

    _P_CACHE_LIMIT = 8192

    def _P(self, u: int, v: int) -> np.ndarray:
        t = self.tree.branch_length(u, v)
        P = self._p_cache.get(t)
        if P is None:
            P = self.model.transition_matrices(t, self.rates.rates)
            P = np.ascontiguousarray(P.astype(self.dtype, copy=False))
            P.setflags(write=False)
            if len(self._p_cache) < self._P_CACHE_LIMIT:
                self._p_cache[t] = P
        return P

    # -- traversal execution ---------------------------------------------------------

    def plan(self, u: int, v: int, full: bool = False) -> TraversalPlan:
        """Plan the CLV recomputations needed to evaluate edge ``(u, v)``."""
        tm = self.timers
        if tm is None:
            return plan_edge_traversal(self.tree, self.orientation, u, v, full)
        with tm.lap("plan"):
            return plan_edge_traversal(self.tree, self.orientation, u, v, full)

    def _timed_get(self, item: int, pins: tuple = (),
                   write_only: bool = False) -> np.ndarray:
        """``store.get`` with the wait charged to the ``store_wait`` phase."""
        tm = self.timers
        if tm is None:
            return self.store.get(item, pins=pins, write_only=write_only)
        t0 = time.perf_counter()
        out = self.store.get(item, pins=pins, write_only=write_only)
        tm.add("store_wait", time.perf_counter() - t0)
        return out

    def plan_accesses(self, plan: TraversalPlan) -> list[tuple[int, tuple, bool]]:
        """The store access sequence a plan will generate (for prefetching).

        Returns ``(item, pins, write_only)`` triples in execution order —
        computable ahead of time because the plan fixes the order (§3.4).
        """
        out: list[tuple[int, tuple, bool]] = []
        for step in plan.steps:
            children = [c for c in (step.left, step.right) if not self.tree.is_tip(c)]
            for c in children:
                pins = self._inner_pins([x for x in (step.left, step.right, step.node)
                                         if x != c])
                out.append((self.item(c), pins, False))
            out.append((self.item(step.node),
                        self._inner_pins([step.left, step.right]), True))
        return out

    def execute_plan(self, plan: TraversalPlan) -> None:
        """Run every pruning step of a plan through the vector store.

        Operand fetch order and mutual pinning follow §3.2: the two child
        vectors are fetched (pinning each other and the target), then the
        target is fetched **write-only** — the read-skipping hook — and the
        kernel fills it. Orientation is committed after each step so a
        failure leaves a consistent state. With a prefetcher attached, the
        plan's access sequence is handed to it first, so swap-ins overlap
        the kernel arithmetic (§5).
        """
        if self.prefetcher is not None and plan.steps:
            self.prefetcher.feed(self.plan_accesses(plan))
        tree = self.tree
        for step in plan.steps:
            node, left, right = step.node, step.left, step.right
            P_left = self._P(node, left)
            P_right = self._P(node, right)

            l_clv = r_clv = None
            l_codes = r_codes = None
            counts = self.scale_counts[self.item(node)]
            counts.fill(0)
            if tree.is_tip(left):
                l_codes = self._tip_codes[left]
            else:
                l_clv = self._timed_get(self.item(left),
                                        pins=self._inner_pins([right, node]),
                                        write_only=False)
                counts += self.scale_counts[self.item(left)]
            if tree.is_tip(right):
                r_codes = self._tip_codes[right]
            else:
                r_clv = self._timed_get(self.item(right),
                                        pins=self._inner_pins([left, node]),
                                        write_only=False)
                counts += self.scale_counts[self.item(right)]
            out = self._timed_get(self.item(node),
                                  pins=self._inner_pins([left, right]),
                                  write_only=True)
            tm = self.timers
            if tm is None:
                kernels.update_clv(out, P_left, P_right, l_clv, r_clv,
                                   l_codes, r_codes, self._code_matrix,
                                   counts, self.scaling)
            else:
                with tm.lap("kernel"):
                    kernels.update_clv(out, P_left, P_right, l_clv, r_clv,
                                       l_codes, r_codes, self._code_matrix,
                                       counts, self.scaling)
            self.orientation.set(node, step.toward)

    # -- likelihood evaluation ----------------------------------------------------------

    def edge_loglikelihood(self, u: int, v: int, full: bool = False) -> float:
        """Log-likelihood with the virtual root on edge ``(u, v)``.

        Recomputes exactly the stale CLVs on both sides (all of them with
        ``full=True`` — the paper's ``-f z`` worst case), then combines the
        two end vectors across the branch.
        """
        plan = self.plan(u, v, full=full)
        self.execute_plan(plan)
        self._root_edge = (u, v)

        tree = self.tree
        u_clv = v_clv = None
        u_codes = v_codes = None
        counts = np.zeros(self.num_patterns, dtype=np.int64)
        if tree.is_tip(u):
            u_codes = self._tip_codes[u]
        else:
            u_clv = self._timed_get(self.item(u), pins=self._inner_pins([v]),
                                    write_only=False)
            counts += self.scale_counts[self.item(u)]
        if tree.is_tip(v):
            v_codes = self._tip_codes[v]
        else:
            v_clv = self._timed_get(self.item(v), pins=self._inner_pins([u]),
                                    write_only=False)
            counts += self.scale_counts[self.item(v)]

        site_l = kernels.edge_site_likelihoods(
            self._P(u, v), self.model.frequencies.astype(self.dtype),
            self.rates.weights.astype(self.dtype),
            u_clv, v_clv, u_codes, v_codes, self._code_matrix,
        )
        return kernels.log_likelihood_from_sites(
            site_l, self.pattern_weights, counts, self.scaling
        )

    def loglikelihood(self) -> float:
        """Log-likelihood at the last evaluation edge (or the default edge)."""
        u, v = self._root_edge if self._root_edge is not None else self.default_edge()
        if not self.tree.has_edge(u, v):
            u, v = self.default_edge()
        return self.edge_loglikelihood(u, v)

    def site_loglikelihoods(self) -> np.ndarray:
        """Per-original-site log-likelihoods (expanded from patterns)."""
        u, v = self._root_edge if self._root_edge is not None else self.default_edge()
        plan = self.plan(u, v)
        self.execute_plan(plan)
        self._root_edge = (u, v)
        tree = self.tree
        u_clv = v_clv = None
        u_codes = v_codes = None
        counts = np.zeros(self.num_patterns, dtype=np.int64)
        if tree.is_tip(u):
            u_codes = self._tip_codes[u]
        else:
            u_clv = self._timed_get(self.item(u), pins=self._inner_pins([v]))
            counts += self.scale_counts[self.item(u)]
        if tree.is_tip(v):
            v_codes = self._tip_codes[v]
        else:
            v_clv = self._timed_get(self.item(v), pins=self._inner_pins([u]))
            counts += self.scale_counts[self.item(v)]
        site_l = kernels.edge_site_likelihoods(
            self._P(u, v), self.model.frequencies.astype(self.dtype),
            self.rates.weights.astype(self.dtype),
            u_clv, v_clv, u_codes, v_codes, self._code_matrix,
        )
        per_pattern = np.log(site_l) - counts * self.scaling.log_multiplier
        return per_pattern[self.alignment.compress().pattern_of_site]

    def full_traversals(self, count: int = 1) -> float:
        """Recompute *every* ancestral vector ``count`` times; return lnL.

        Reproduces the paper's §4.3 benchmark mode (``-f z``): "reading in
        a given, fixed, tree topology and computing five full tree
        traversals ... the worst-case analysis, since full tree traversals
        exhibit the smallest degree of vector locality."
        """
        if count < 1:
            raise LikelihoodError(f"count must be >= 1, got {count}")
        u, v = self.default_edge()
        lnl = 0.0
        for _ in range(count):
            lnl = self.edge_loglikelihood(u, v, full=True)
        return lnl

    # -- mutations (invalidation-aware wrappers around Tree edits) ---------------------

    def set_branch_length(self, u: int, v: int, length: float) -> None:
        """Change a branch length and invalidate dependent CLVs."""
        self.tree.set_branch_length(u, v, length)
        self.orientation.after_branch_change(u, v)

    def apply_spr(self, prune_node: int, subtree_neighbor: int,
                  target_edge: tuple[int, int]):
        """Apply an SPR move; returns the undo record for :meth:`undo_spr`."""
        undo = self.tree.spr_move(prune_node, subtree_neighbor, target_edge)
        self.orientation.after_spr(prune_node, undo.old_a, undo.old_b,
                                   undo.target_u, undo.target_v)
        return undo

    def undo_spr(self, undo) -> None:
        """Reverse an SPR (topology, lengths and CLV validity)."""
        self.tree.undo_spr(undo)
        # The reverse move regrafts from between (target_u, target_v) back
        # into the reconstituted (old_a, old_b) edge: same invalidation with
        # the two locations swapped.
        self.orientation.after_spr(undo.prune_node, undo.target_u, undo.target_v,
                                   undo.old_a, undo.old_b)

    def apply_nni(self, edge: tuple[int, int], variant: int = 0):
        """Apply an NNI move; returns the undo record for :meth:`undo_nni`."""
        undo = self.tree.nni(edge, variant)
        self.orientation.after_nni(undo.u, undo.v, undo.swapped_u, undo.swapped_v)
        return undo

    def undo_nni(self, undo) -> None:
        self.tree.undo_nni(undo)
        # After the reverse swap the exchanged subtrees are back; the
        # invalidation geometry is identical with the roles flipped.
        self.orientation.after_nni(undo.u, undo.v, undo.swapped_v, undo.swapped_u)

    def invalidate_all(self) -> None:
        """Drop every cached CLV orientation (e.g. after a model change)."""
        self.orientation.invalidate_all()

    def set_rates(self, rates: RateModel) -> None:
        """Swap the rate model (same category count); invalidates all CLVs."""
        if rates.num_categories != self.rates.num_categories:
            raise LikelihoodError(
                "category count is fixed by the CLV geometry; rebuild the engine "
                f"to go from {self.rates.num_categories} to {rates.num_categories}"
            )
        self.rates = rates
        self._p_cache.clear()
        self.invalidate_all()

    def set_model(self, model: ReversibleModel) -> None:
        """Swap the substitution model; invalidates all CLVs."""
        if model.num_states != self.model.num_states:
            raise LikelihoodError("state count is fixed by the CLV geometry")
        self.model = model
        self._p_cache.clear()
        self.invalidate_all()

    def set_pattern_weights(self, weights) -> None:
        """Override the per-pattern multiplicities (bootstrap resampling).

        A nonparametric bootstrap replicate is exactly the original pattern
        set with multinomially resampled weights
        (:func:`repro.phylo.bootstrap.bootstrap_weights`), so swapping the
        weight vector re-targets the engine to a replicate without touching
        any CLV: conditional likelihoods are weight-independent — only the
        final weighted sum changes. Zero weights are allowed (patterns
        absent from the replicate).
        """
        weights = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
        if weights.shape != (self.num_patterns,):
            raise LikelihoodError(
                f"need {self.num_patterns} pattern weights, got {weights.shape}"
            )
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise LikelihoodError("pattern weights must be finite and >= 0")
        self.pattern_weights = weights

    def reset_pattern_weights(self) -> None:
        """Restore the alignment's original pattern multiplicities."""
        self.pattern_weights = self.alignment.compress().weights.astype(np.float64)

    # -- optimization façade (shared protocol with PartitionedEngine) ----------

    def optimize_branch(self, u: int, v: int, **kwargs) -> float:
        """Newton–Raphson optimize one branch; see
        :func:`repro.phylo.likelihood.branch_opt.optimize_branch`."""
        from repro.phylo.likelihood.branch_opt import optimize_branch

        return optimize_branch(self, u, v, **kwargs)

    def optimize_all_branches(self, passes: int = 1, **kwargs) -> float:
        """Smooth every branch; see
        :func:`repro.phylo.likelihood.branch_opt.smooth_all_branches`."""
        from repro.phylo.likelihood.branch_opt import smooth_all_branches

        return smooth_all_branches(self, passes=passes, **kwargs)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Stop the prefetch thread (if any) and close the store.

        Drains pending write-behind traffic first, so the backing store is
        durable when this returns.
        """
        if self.prefetcher is not None:
            self.prefetcher.stop()
            self.prefetcher = None
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    # -- memory accounting --------------------------------------------------------------

    def ancestral_vector_bytes(self) -> int:
        """Width ``w`` of one ancestral vector in bytes (paper §3.1)."""
        return int(np.prod(self.clv_shape)) * self.dtype.itemsize

    def total_ancestral_bytes(self) -> int:
        """``(n-2) · w`` — the footprint the out-of-core store bounds."""
        return self.num_inner * self.ancestral_vector_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LikelihoodEngine({self.tree.num_tips} taxa, {self.num_patterns} patterns, "
            f"{self.model.name}+{self.rates.num_categories}cat, store={self.store!r})"
        )
