"""The likelihood engine: RAxML's evaluate/newview machinery over any store.

:class:`LikelihoodEngine` owns a tree, an alignment, a substitution model
and a rate model, and computes log-likelihoods by Felsenstein pruning. All
ancestral-vector traffic flows through a single indirection — the paper's
``getxvector()`` — so the same engine runs:

* **in-core** (``fraction=1.0``, the "standard RAxML" configuration),
* **out-of-core** with any slot fraction / replacement policy / backing
  store (the paper's contribution),
* against the **paging simulator** (the Figure-5 "standard with paging"
  baseline) by passing a :class:`~repro.vm.standardstore.PagedStandardStore`.

Correctness contract: for a fixed tree, data and model, the returned
log-likelihood is bit-identical across all of these configurations
(paper §4.1).
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from repro.analysis.race import race_detector
from repro.core.layout import StorageLayout, WholeVectorLayout, make_layout
from repro.core.vecstore import AncestralVectorStore
from repro.errors import LikelihoodError
from repro.phylo.likelihood import kernels
from repro.phylo.likelihood.schedule import (
    BatchGroup,
    ScheduleCache,
    default_group_cap,
)
from repro.phylo.likelihood.traversal import (
    OrientationState,
    TraversalPlan,
    plan_edge_traversal,
)
from repro.phylo.models.base import ReversibleModel
from repro.phylo.models.rates import RateModel
from repro.phylo.msa import Alignment
from repro.phylo.tree import Tree


def _valid(view: np.ndarray, span: int) -> np.ndarray:
    """The meaningful rows of a fetched block.

    A ragged last block stores padding past ``span``; kernels must only
    see the live rows. When the block is full-width the view is returned
    untouched — under the whole-vector layout this keeps the exact
    object the store handed out (so the slot-borrow sanitizer still
    guards kernel accesses, and the path is bit-for-bit the pre-layout
    one).
    """
    return view if span == view.shape[0] else view[:span]


class LikelihoodEngine:
    """Compute the PLF on ``tree`` × ``alignment`` under ``model`` + ``rates``.

    Parameters
    ----------
    tree:
        An unrooted binary :class:`Tree`; tip ``i`` corresponds to taxon
        ``tree.names[i]``, which must exist in the alignment.
    alignment:
        The :class:`Alignment` (site patterns are compressed internally).
    model:
        A :class:`ReversibleModel` over the alignment's alphabet size.
    rates:
        A :class:`RateModel`; defaults to Γ4 with α = 1 (the paper's setup).
    store:
        Anything with the vector-store ``get(item, pins, write_only)``
        protocol. If omitted, an :class:`AncestralVectorStore` is built from
        ``fraction`` / ``num_slots`` / ``policy`` / ``backing`` /
        ``read_skipping`` — ``fraction=1.0`` keeps every vector resident.
    layout / block_sites:
        Storage layout for the built store (ignored with an explicit
        ``store``, whose own layout governs): ``"whole"`` (default — one
        paged item per CLV, the paper's design), ``"block"`` (each CLV's
        pattern axis split into site blocks of ``block_sites`` patterns,
        paged independently), or a :class:`~repro.core.layout.StorageLayout`
        instance. Kernels then run blocked over per-block slices; results
        are bit-identical across layouts (§4.1 contract).
    writeback_depth / io_threads:
        Forwarded to the built store: ``writeback_depth > 0`` makes
        evictions asynchronous (write-behind queue drained by
        ``io_threads`` writer threads). Only valid when the engine builds
        its own store.
    prefetch_depth:
        ``> 0`` attaches a :class:`~repro.core.prefetch.ThreadedPrefetcher`
        that is fed each traversal's access sequence (the paper's §5
        prefetch thread); reads overlap the likelihood kernels. Works with
        an explicit ``store`` too, provided it is an
        :class:`AncestralVectorStore`.
    batch:
        Batched kernel scheduling (:mod:`repro.phylo.likelihood.schedule`):
        ``0``/``None`` (default) runs the classic per-block loop; ``-1``
        ("auto") groups up to ``num_slots // 3`` independent (step, block)
        updates per fused kernel call — the residency-safe cap; a positive
        value sets the group cap explicitly. The store access sequence,
        all demand/eviction counters and the CLV bits are identical to
        the unbatched path (§4.1). Requires a store with the out-of-band
        ``fill`` protocol (:class:`AncestralVectorStore`).
    kernel_threads:
        With ``batch`` enabled and ``kernel_threads > 1``, the fused
        kernel of one group overlaps the operand gathering of the next
        *independent* group on a worker thread (numpy releases the GIL
        inside the contractions). Results and counters are unchanged;
        store calls stay on the compute thread in schedule order.
    dtype:
        ``float64`` (default) or ``float32`` for the single-precision mode.
    """

    def __init__(
        self,
        tree: Tree,
        alignment: Alignment,
        model: ReversibleModel,
        rates: RateModel | None = None,
        *,
        store=None,
        fraction: float | None = None,
        num_slots: int | None = None,
        layout: str | StorageLayout = "whole",
        block_sites: int | None = None,
        policy="lru",
        backing=None,
        read_skipping: bool = True,
        track_dirty: bool = False,
        poison_skipped_reads: bool = False,
        policy_kwargs: dict | None = None,
        writeback_depth: int = 0,
        io_threads: int = 1,
        prefetch_depth: int = 0,
        batch: int | str | None = None,
        kernel_threads: int = 1,
        dtype=np.float64,
    ) -> None:
        if tree.num_tips < 3:
            raise LikelihoodError("the PLF engine needs at least 3 taxa")
        if alignment.alphabet.num_states != model.num_states:
            raise LikelihoodError(
                f"model has {model.num_states} states but alphabet "
                f"{alignment.alphabet.name} has {alignment.alphabet.num_states}"
            )
        self.tree = tree
        self.alignment = alignment
        self.model = model
        self.rates = rates if rates is not None else RateModel.gamma(1.0, 4)
        self.dtype = np.dtype(dtype)
        self.scaling = kernels.ScalingScheme(self.dtype)

        comp = alignment.compress()
        self.num_patterns = comp.num_patterns
        self.pattern_weights = comp.weights.astype(np.float64)
        pattern_codes = alignment.pattern_codes()
        # Tip i of the tree maps to the alignment row with the same name.
        self._tip_codes = np.empty((tree.num_tips, self.num_patterns), dtype=np.int64)
        for tip in range(tree.num_tips):
            row = alignment.index_of(tree.names[tip])
            self._tip_codes[tip] = pattern_codes[row]
        self._code_matrix = alignment.alphabet.code_matrix().astype(self.dtype)

        C = self.rates.num_categories
        S = model.num_states
        self.clv_shape = (self.num_patterns, C, S)
        self.num_inner = tree.num_inner

        if store is None:
            self.layout = make_layout(layout, self.num_inner, self.clv_shape,
                                      block_sites=block_sites)
            store = AncestralVectorStore(
                layout=self.layout,
                dtype=self.dtype,
                fraction=fraction,
                num_slots=num_slots,
                policy=policy,
                backing=backing,
                read_skipping=read_skipping,
                track_dirty=track_dirty,
                poison_skipped_reads=poison_skipped_reads,
                policy_kwargs=policy_kwargs,
                writeback_depth=writeback_depth,
                io_threads=io_threads,
            )
        elif fraction is not None or num_slots is not None:
            raise LikelihoodError("pass either an explicit store or a geometry, not both")
        elif writeback_depth:
            raise LikelihoodError(
                "writeback_depth configures the built store; with an explicit "
                "store, construct it with writeback_depth yourself"
            )
        elif layout != "whole" or block_sites is not None:
            raise LikelihoodError(
                "layout/block_sites configure the built store; with an "
                "explicit store, construct it over a layout yourself"
            )
        else:
            # The explicit store's own layout governs; stores predating the
            # layout abstraction (e.g. PagedStandardStore) page whole CLVs.
            found = getattr(store, "layout", None)
            if found is None:
                found = WholeVectorLayout(self.num_inner, self.clv_shape)
            elif (found.num_nodes != self.num_inner
                    or found.node_shape != self.clv_shape):
                raise LikelihoodError(
                    f"store layout covers {found.num_nodes} nodes of shape "
                    f"{found.node_shape}; this engine needs {self.num_inner} "
                    f"of {self.clv_shape}"
                )
            self.layout = found
        self.store = store
        self._bind_topological_policy()
        self.prefetcher = None
        if prefetch_depth:
            if not isinstance(store, AncestralVectorStore):
                raise LikelihoodError(
                    "prefetch_depth needs an AncestralVectorStore "
                    f"(got {type(store).__name__})"
                )
            from repro.core.prefetch import ThreadedPrefetcher

            self.prefetcher = ThreadedPrefetcher(store, depth=prefetch_depth)

        if batch in (None, 0):
            self.batch_members = 0
        else:
            if not hasattr(self.store, "fill"):
                raise LikelihoodError(
                    "batch needs a store with the out-of-band fill protocol "
                    f"(got {type(self.store).__name__})"
                )
            if batch == -1 or batch == "auto":
                self.batch_members = default_group_cap(self.store.num_slots)
            elif isinstance(batch, int) and batch > 0:
                self.batch_members = int(batch)
            else:
                raise LikelihoodError(
                    f"batch must be None/0 (off), -1/'auto' or a positive "
                    f"group cap, got {batch!r}"
                )
        self.kernel_threads = int(kernel_threads)
        if self.kernel_threads < 1:
            raise LikelihoodError(
                f"kernel_threads must be >= 1, got {kernel_threads}")
        self._schedule_cache = ScheduleCache() if self.batch_members else None
        self._kernel_pool = None
        # Under REPRO_SANITIZE=race, scale-count/orientation traffic and
        # the kernel-pool handoff carry happens-before edges (zero cost
        # otherwise — see repro.analysis.race).
        self._race = race_detector()
        self._race_scope = ("" if self._race is None
                            else self._race.new_scope("LikelihoodEngine"))

        # Per-site underflow-scaling counters stay in RAM (like tips, they
        # are small compared to the CLVs themselves — paper §3.1).
        self.scale_counts = np.zeros((self.num_inner, self.num_patterns), dtype=np.int32)
        self.orientation = OrientationState(tree)
        self._root_edge: tuple[int, int] | None = None
        # Transition matrices are tiny relative to CLVs; caching them per
        # exact branch length is free memory-wise and saves eigen work on
        # repeated traversals. Exact float keys keep results bit-identical,
        # and LRU eviction past _P_CACHE_LIMIT keeps long searches with
        # churning branch lengths from degrading to a cold cache.
        self._p_cache: OrderedDict[float, np.ndarray] = OrderedDict()
        # Per-phase timers (observability, default off): when a
        # repro.utils.timing.Stopwatch is attached — normally through
        # repro.obs.Observer — the engine accumulates "plan" / "kernel" /
        # "store_wait" laps. A repro.obs.spans.SpanRecorder additionally
        # captures each lap as a timeline interval, and a
        # repro.obs.metrics.MetricsRegistry receives store-wait latency
        # observations. All purely passive; numerics are unaffected.
        self.timers = None
        self.spans = None
        self.metrics = None

    # -- wiring ---------------------------------------------------------------------

    def _bind_topological_policy(self) -> None:
        """Give a Topological policy its tree-distance provider (§3.3).

        The policy sees *item* ids, so node-level hop distances are mapped
        through the layout: every block of a node inherits that node's
        distance. ``store_item_nodes()`` spans the store's full item space
        (global ids under a shared partitioned store), so the provider is
        total over whatever ids the policy encounters.
        """
        policy = getattr(self.store, "policy", None)
        if (policy is not None and getattr(policy, "name", "") == "topological"
                and getattr(policy, "distance_provider", None) is None):
            n = self.tree.num_tips
            item_nodes = self.layout.store_item_nodes()

            def distances(requested_item: int) -> np.ndarray:
                node = int(item_nodes[requested_item])
                d_nodes = self.tree.hop_distances_from(n + node)[n:]
                return d_nodes[item_nodes]

            policy.distance_provider = distances

    def item(self, node: int) -> int:
        """Dense index of an inner node (tips have no ancestral vector).

        This is the node-space index (the ``scale_counts`` row and, under
        the whole-vector layout, also the store item id); block-granular
        store ids come from ``layout.item_of(self.item(node), block)``.
        """
        if self.tree.is_tip(node):
            raise LikelihoodError(f"tip {node} has no ancestral vector")
        return node - self.tree.num_tips

    def _block_pins(self, nodes, block: int) -> tuple[int, ...]:
        """Item ids pinning block ``block`` of each inner node in ``nodes``.

        Only the *same-numbered* block of the other operands needs to stay
        resident while a kernel runs — per-site independence means block
        ``b`` of a parent touches exactly block ``b`` of its children, so
        the store's ``m >= 3`` floor bounds blocks, not whole vectors.
        """
        layout = self.layout
        return tuple(layout.item_of(self.item(x), block)
                     for x in nodes if not self.tree.is_tip(x))

    @property
    def stats(self):
        """The store's :class:`~repro.core.stats.IoStats`."""
        return self.store.stats

    def default_edge(self) -> tuple[int, int]:
        """The canonical evaluation edge: tip 0 and its attachment node."""
        (nbr,) = self.tree.neighbors(0)
        return (0, nbr)

    # -- transition matrices -----------------------------------------------------------

    _P_CACHE_LIMIT = 8192

    def _P(self, u: int, v: int) -> np.ndarray:
        t = self.tree.branch_length(u, v)
        P = self._p_cache.get(t)
        if P is None:
            P = self.model.transition_matrices(t, self.rates.rates)
            # Always copy before freezing: astype(copy=False) /
            # ascontiguousarray may return the model's own array, and
            # setflags(write=False) would freeze the caller's buffer.
            P = np.array(P, dtype=self.dtype, order="C")
            P.setflags(write=False)
            self._p_cache[t] = P
            if len(self._p_cache) > self._P_CACHE_LIMIT:
                self._p_cache.popitem(last=False)
        else:
            self._p_cache.move_to_end(t)
        return P

    # -- traversal execution ---------------------------------------------------------

    def plan(self, u: int, v: int, full: bool = False) -> TraversalPlan:
        """Plan the CLV recomputations needed to evaluate edge ``(u, v)``."""
        rc = self._race
        if rc is not None:
            rc.read(self._race_scope, "orientation")
        tm, sp = self.timers, self.spans
        if tm is None and sp is None:
            return plan_edge_traversal(self.tree, self.orientation, u, v, full)
        t0 = time.perf_counter()
        out = plan_edge_traversal(self.tree, self.orientation, u, v, full)
        dt = time.perf_counter() - t0
        if tm is not None:
            tm.add("plan", dt)
        if sp is not None:
            sp.complete("plan", t0, dt, {"steps": len(out.steps)})
        return out

    def _timed_get(self, item: int, pins: tuple = (),
                   write_only: bool = False) -> np.ndarray:
        """``store.get`` with the wait charged to the ``store_wait`` phase."""
        tm, sp, mx = self.timers, self.spans, self.metrics
        if tm is None and sp is None and mx is None:
            return self.store.get(item, pins=pins, write_only=write_only)
        t0 = time.perf_counter()
        out = self.store.get(item, pins=pins, write_only=write_only)
        dt = time.perf_counter() - t0
        if tm is not None:
            tm.add("store_wait", dt)
        if mx is not None:
            mx.observe("store_wait_seconds", dt)
        if sp is not None:
            sp.complete("store_wait", t0, dt, {"item": int(item)})
        return out

    def plan_accesses(self, plan: TraversalPlan) -> list[tuple[int, tuple, bool]]:
        """The store access sequence a plan will generate (for prefetching).

        Returns ``(item, pins, write_only)`` triples in execution order —
        computable ahead of time because the plan fixes the order (§3.4).
        """
        out: list[tuple[int, tuple, bool]] = []
        layout = self.layout
        for step in plan.steps:
            children = [c for c in (step.left, step.right) if not self.tree.is_tip(c)]
            for b in range(layout.blocks_per_node):
                for c in children:
                    pins = self._block_pins(
                        [x for x in (step.left, step.right, step.node)
                         if x != c], b)
                    out.append((layout.item_of(self.item(c), b), pins, False))
                out.append((layout.item_of(self.item(step.node), b),
                            self._block_pins([step.left, step.right], b), True))
        return out

    def execute_plan(self, plan: TraversalPlan) -> None:
        """Run every pruning step of a plan through the vector store.

        Operand fetch order and mutual pinning follow §3.2: the two child
        vectors are fetched (pinning each other and the target), then the
        target is fetched **write-only** — the read-skipping hook — and the
        kernel fills it. Orientation is committed after each step so a
        failure leaves a consistent state. With a prefetcher attached, the
        plan's access sequence is handed to it first, so swap-ins overlap
        the kernel arithmetic (§5).

        Under a block layout the step runs once per site block: block ``b``
        of the target needs only block ``b`` of each child (per-site
        independence), so the (left, right, out) fetch-and-pin triple —
        and the kernel — iterate over blocks with the scale-count rows
        sliced to each block's pattern range. With the whole-vector layout
        there is exactly one block spanning all patterns and the sequence
        of store calls, pins and kernel operands is bit-for-bit the
        pre-layout one.

        With ``batch`` enabled, execution is delegated to the batched
        scheduler path (:meth:`_execute_plan_batched`): same store-call
        sequence, same counters, same bits — fewer, larger kernels.
        """
        if self.batch_members:
            return self._execute_plan_batched(plan)
        if self.prefetcher is not None and plan.steps:
            self.prefetcher.feed(self.plan_accesses(plan))
        sp_plan = self.spans
        exec_t0 = time.perf_counter() if sp_plan is not None else 0.0
        tree = self.tree
        layout = self.layout
        for step in plan.steps:
            node, left, right = step.node, step.left, step.right
            P_left = self._P(node, left)
            P_right = self._P(node, right)

            left_inner = not tree.is_tip(left)
            right_inner = not tree.is_tip(right)
            rc = self._race
            if rc is not None:
                rc.write(self._race_scope, "scale_counts", "orientation")
            counts = self.scale_counts[self.item(node)]
            counts.fill(0)
            if left_inner:
                counts += self.scale_counts[self.item(left)]
            if right_inner:
                counts += self.scale_counts[self.item(right)]
            for b in range(layout.blocks_per_node):
                lo, hi = layout.block_bounds(b)
                span = hi - lo
                l_clv = r_clv = None
                l_codes = r_codes = None
                if left_inner:
                    l_clv = _valid(
                        self._timed_get(layout.item_of(self.item(left), b),
                                        pins=self._block_pins([right, node], b),
                                        write_only=False), span)
                else:
                    l_codes = self._tip_codes[left][lo:hi]
                if right_inner:
                    r_clv = _valid(
                        self._timed_get(layout.item_of(self.item(right), b),
                                        pins=self._block_pins([left, node], b),
                                        write_only=False), span)
                else:
                    r_codes = self._tip_codes[right][lo:hi]
                out = _valid(
                    self._timed_get(layout.item_of(self.item(node), b),
                                    pins=self._block_pins([left, right], b),
                                    write_only=True), span)
                block_counts = counts if span == counts.shape[0] else counts[lo:hi]
                tm, sp = self.timers, self.spans
                if tm is None and sp is None:
                    kernels.update_clv(out, P_left, P_right, l_clv, r_clv,
                                       l_codes, r_codes, self._code_matrix,
                                       block_counts, self.scaling)
                else:
                    k0 = time.perf_counter()
                    kernels.update_clv(out, P_left, P_right, l_clv, r_clv,
                                       l_codes, r_codes, self._code_matrix,
                                       block_counts, self.scaling)
                    k_dt = time.perf_counter() - k0
                    if tm is not None:
                        tm.add("kernel", k_dt)
                    if sp is not None:
                        sp.complete("kernel", k0, k_dt,
                                    {"node": int(node), "block": b})
            self.orientation.set(node, step.toward)
        if sp_plan is not None:
            # The enclosing interval: kernel/store_wait spans nest inside
            # it on the compute-thread track of the exported timeline.
            sp_plan.complete("execute_plan", exec_t0,
                             time.perf_counter() - exec_t0,
                             {"steps": len(plan.steps)})

    # -- batched traversal execution ---------------------------------------------------

    def _execute_plan_batched(self, plan: TraversalPlan) -> None:
        """Run a plan through the batched schedule (same sequence, fused kernels).

        Store accesses are issued on this thread in exactly the order
        :meth:`plan_accesses` reports — child views are copied into the
        group's operand stacks at fetch time, output targets are fetched
        write-only at their sequence position and completed out-of-band
        via :meth:`~repro.core.vecstore.AncestralVectorStore.fill` after
        the fused group kernel. Demand/eviction counters therefore match
        the unbatched path bit for bit under every replacement policy,
        and the kernels themselves are bit-identical by the
        :mod:`~repro.phylo.likelihood.kernels` batched-kernel contract.

        With ``kernel_threads > 1`` the group kernel runs on a worker
        thread while this thread gathers the next group — but only when
        the next group neither reads a node the in-flight group writes
        nor sums its scale counts, so every operand copy still sees
        finished data.
        """
        schedule = self._schedule_cache.get(
            plan, self.layout, self.tree.num_tips, self.batch_members)
        if self.prefetcher is not None and plan.steps:
            self.prefetcher.feed(schedule.accesses())
        sp_plan = self.spans
        exec_t0 = time.perf_counter() if sp_plan is not None else 0.0
        pool = self._ensure_kernel_pool()
        pending: tuple | None = None  # (future, group) of an in-flight kernel
        for gi, group in enumerate(schedule.groups):
            if pending is not None and self._group_depends(group, pending[1]):
                self._await_group(pending[0])
                pending = None
            stacks = self._gather_group(group)
            if pool is None:
                self._compute_group(gi, group, stacks)
            else:
                if pending is not None:
                    self._await_group(pending[0])  # depth-1 pipeline
                pending = (self._submit_group(pool, gi, group, stacks), group)
        if pending is not None:
            self._await_group(pending[0])
        if sp_plan is not None:
            sp_plan.complete("execute_plan", exec_t0,
                             time.perf_counter() - exec_t0,
                             {"steps": len(plan.steps),
                              "groups": len(schedule.groups)})

    def _ensure_kernel_pool(self):
        if self.kernel_threads <= 1:
            return None
        if self._kernel_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._kernel_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-kernel")
        return self._kernel_pool

    def _submit_group(self, pool, gi: int, group: BatchGroup,
                      stacks: list[dict]):
        """Submit one group kernel, carrying a happens-before fork token.

        Under the race sanitizer the worker must observe everything this
        thread did before the submit (the gathered stacks, the children's
        scale counts); the fork token joined at task start models exactly
        that executor handoff. ``_await_group`` closes the reverse edge.
        """
        rc = self._race
        token = None if rc is None else rc.fork()
        return pool.submit(self._run_group, token, gi, group, stacks)

    def _run_group(self, token, gi: int, group: BatchGroup,
                   stacks: list[dict]):
        rc = self._race
        if rc is not None and token is not None:
            rc.join(token)
        self._compute_group(gi, group, stacks)
        return None if rc is None else rc.fork()

    def _await_group(self, fut) -> None:
        """Block on an in-flight group kernel and join its clock edge."""
        end = fut.result()
        rc = self._race
        if rc is not None and end is not None:
            rc.join(end)

    @staticmethod
    def _group_depends(group: BatchGroup, running: BatchGroup) -> bool:
        """Does ``group`` consume anything the ``running`` kernel produces?

        True when any member of ``group`` has a child node (CLV operand
        and scale-count summand alike) among ``running``'s output nodes.
        Output items are unique within a plan, so write-write conflicts
        cannot occur.
        """
        writes = {m.node for m in running.members}
        return any(m.left in writes or m.right in writes
                   for m in group.members)

    def _gather_group(self, group: BatchGroup) -> list[dict]:
        """Issue the group's store accesses in order; stack the operands.

        Members are partitioned into *span classes* (full blocks vs the
        ragged last block) so every fused contraction runs on exact
        shapes — the per-``(member, category)`` GEMM is then the same
        product as the per-member einsum, which is what keeps the batched
        path bit-identical. Each child view is copied into its stack row
        immediately after its ``get``, before any later access can evict
        the slot.
        """
        C = self.rates.num_categories
        S = self.model.num_states
        classes: dict[int, dict] = {}
        for m in group.members:
            cls = classes.get(m.span)
            if cls is None:
                cls = classes[m.span] = {
                    "span": m.span, "members": [],
                    "n_inner": 0, "n_tip": 0,
                }
            cls["members"].append(m)
            for child_item in (m.left_item, m.right_item):
                if child_item >= 0:
                    cls["n_inner"] += 1
                else:
                    cls["n_tip"] += 1
        for cls in classes.values():
            span = cls["span"]
            cls["inner_clv"] = np.empty((cls["n_inner"], span, C, S),
                                        dtype=self.dtype)
            cls["P_inner"] = np.empty((cls["n_inner"], C, S, S),
                                      dtype=self.dtype)
            cls["inner_dest"] = []  # (side, member position in class)
            cls["tip_codes"] = np.empty((cls["n_tip"], span), dtype=np.int64)
            cls["P_tip"] = np.empty((cls["n_tip"], C, S, S), dtype=self.dtype)
            cls["tip_dest"] = []
            cls["np"] = cls["ji"] = cls["jt"] = 0

        for m in group.members:
            cls = classes[m.span]
            pos = cls["np"]
            cls["np"] = pos + 1
            P_left = self._P(m.node, m.left)
            P_right = self._P(m.node, m.right)
            fi = 0
            for side, child, child_item, P in (
                    (0, m.left, m.left_item, P_left),
                    (1, m.right, m.right_item, P_right)):
                if child_item >= 0:
                    item, pins, wo = m.fetches[fi]
                    fi += 1
                    view = self._timed_get(item, pins=pins, write_only=wo)
                    j = cls["ji"]
                    cls["ji"] = j + 1
                    cls["inner_clv"][j] = view[:m.span]
                    cls["P_inner"][j] = P
                    cls["inner_dest"].append((side, pos))
                else:
                    j = cls["jt"]
                    cls["jt"] = j + 1
                    cls["tip_codes"][j] = self._tip_codes[child][m.lo:m.hi]
                    cls["P_tip"][j] = P
                    cls["tip_dest"].append((side, pos))
            item, pins, wo = m.fetches[fi]
            self._timed_get(item, pins=pins, write_only=wo)  # view deferred
        return list(classes.values())

    def _compute_group(self, gi: int, group: BatchGroup,  # thread: kernel
                       stacks: list[dict]) -> None:
        """Fused kernels for one gathered group, then out-of-band fills.

        May run on the kernel worker thread; touches only this group's
        stacks, its nodes' scale-count rows and the store's thread-safe
        ``fill`` — never the demand ``get`` path.
        """
        tm, sp = self.timers, self.spans
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "scale_counts", "orientation")
        k0 = time.perf_counter() if (tm is not None or sp is not None) else 0.0
        # Scale-count prep once per node, before this group's rescales
        # touch any of its rows (children finished in earlier groups).
        for m in group.members:
            if m.first_block:
                counts = self.scale_counts[self.item(m.node)]
                counts.fill(0)
                if m.left >= self.tree.num_tips:
                    counts += self.scale_counts[self.item(m.left)]
                if m.right >= self.tree.num_tips:
                    counts += self.scale_counts[self.item(m.right)]
        C = self.rates.num_categories
        S = self.model.num_states
        for cls in stacks:
            n = len(cls["members"])
            span = cls["span"]
            prop = np.empty((2, n, span, C, S), dtype=self.dtype)
            if cls["n_inner"]:
                contrib = kernels.propagate_inner_batch(
                    cls["P_inner"], cls["inner_clv"])
                for j, (side, pos) in enumerate(cls["inner_dest"]):
                    prop[side, pos] = contrib[j]
            if cls["n_tip"]:
                tipc = kernels.propagate_tip_batch(
                    cls["P_tip"], cls["tip_codes"], self._code_matrix)
                for j, (side, pos) in enumerate(cls["tip_dest"]):
                    prop[side, pos] = tipc[j]
            res = np.empty((n, span, C, S), dtype=self.dtype)
            scale_rows = [
                self.scale_counts[self.item(m.node)][m.lo:m.hi]
                for m in cls["members"]
            ]
            kernels.combine_and_rescale_batch(
                prop[0], prop[1], res, scale_rows, self.scaling)
            for pos, m in enumerate(cls["members"]):
                self.store.fill(m.out_item, res[pos])
        if tm is not None or sp is not None:
            k_dt = time.perf_counter() - k0
            if tm is not None:
                tm.add("kernel", k_dt)
            if sp is not None:
                sp.complete("kernel", k0, k_dt,
                            {"group": gi, "members": len(group.members)})
        for m in group.members:
            if m.last_block:
                self.orientation.set(m.node, m.toward)

    # -- likelihood evaluation ----------------------------------------------------------

    def _root_site_likelihoods(self, u: int, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-pattern likelihoods and scale counts across edge ``(u, v)``.

        Both end CLVs must be current (run :meth:`execute_plan` first).
        Fetches proceed block by block with mutual pins; the per-pattern
        results are assembled into one RAM array, so the final weighted
        reduction is performed unblocked — the summation order (and hence
        the bits) of the log-likelihood is layout-independent.
        """
        tree = self.tree
        layout = self.layout
        counts = np.zeros(self.num_patterns, dtype=np.int64)
        u_inner = not tree.is_tip(u)
        v_inner = not tree.is_tip(v)
        rc = self._race
        if rc is not None:
            rc.read(self._race_scope, "scale_counts")
        if u_inner:
            counts += self.scale_counts[self.item(u)]
        if v_inner:
            counts += self.scale_counts[self.item(v)]
        P = self._P(u, v)
        freqs = self.model.frequencies.astype(self.dtype)
        weights = self.rates.weights.astype(self.dtype)
        single = layout.blocks_per_node == 1
        site_l = None if single else np.empty(self.num_patterns,
                                              dtype=self.dtype)
        for b in range(layout.blocks_per_node):
            lo, hi = layout.block_bounds(b)
            span = hi - lo
            u_clv = v_clv = None
            u_codes = v_codes = None
            if u_inner:
                u_clv = _valid(
                    self._timed_get(layout.item_of(self.item(u), b),
                                    pins=self._block_pins([v], b),
                                    write_only=False), span)
            else:
                u_codes = self._tip_codes[u][lo:hi]
            if v_inner:
                v_clv = _valid(
                    self._timed_get(layout.item_of(self.item(v), b),
                                    pins=self._block_pins([u], b),
                                    write_only=False), span)
            else:
                v_codes = self._tip_codes[v][lo:hi]
            part = kernels.edge_site_likelihoods(
                P, freqs, weights,
                u_clv, v_clv, u_codes, v_codes, self._code_matrix,
            )
            if single:
                # hand back the kernel's own array — the pre-layout object
                return part, counts
            site_l[lo:hi] = part
        assert site_l is not None
        return site_l, counts

    def _edge_sumtable(self, u: int, v: int) -> np.ndarray:
        """Eigen-basis sumtable across edge ``(u, v)`` (makenewz phase 1).

        Both end CLVs must be current. Assembled block by block into one
        ``(patterns, categories, states)`` RAM array. With a single block
        the kernel's own output array is returned as-is: the downstream
        Newton einsums are sensitive to operand memory layout at the ulp
        level, and the kernel's (non-contiguous) product is what the
        pre-layout code handed them — copying it into a fresh buffer
        would shift the optimized branch length by an ulp or two.
        """
        tree = self.tree
        layout = self.layout
        ev = self.model.eigenvectors.astype(self.dtype)
        iev = self.model.inv_eigenvectors.astype(self.dtype)
        freqs = self.model.frequencies.astype(self.dtype)
        u_inner = not tree.is_tip(u)
        v_inner = not tree.is_tip(v)
        single = layout.blocks_per_node == 1
        table = None if single else np.empty(
            (self.num_patterns, self.rates.num_categories,
             self.model.num_states), dtype=self.dtype)
        for b in range(layout.blocks_per_node):
            lo, hi = layout.block_bounds(b)
            span = hi - lo
            u_clv = v_clv = None
            u_codes = v_codes = None
            if u_inner:
                u_clv = _valid(
                    self.store.get(layout.item_of(self.item(u), b),
                                   pins=self._block_pins([v], b)), span)
            else:
                u_codes = self._tip_codes[u][lo:hi]
            if v_inner:
                v_clv = _valid(
                    self.store.get(layout.item_of(self.item(v), b),
                                   pins=self._block_pins([u], b)), span)
            else:
                v_codes = self._tip_codes[v][lo:hi]
            part = kernels.branch_sumtable(
                ev, iev, freqs, u_clv, v_clv, u_codes, v_codes,
                self._code_matrix,
            )
            if single:
                return part
            table[lo:hi] = part
        assert table is not None
        return table

    def edge_loglikelihood(self, u: int, v: int, full: bool = False) -> float:
        """Log-likelihood with the virtual root on edge ``(u, v)``.

        Recomputes exactly the stale CLVs on both sides (all of them with
        ``full=True`` — the paper's ``-f z`` worst case), then combines the
        two end vectors across the branch.
        """
        plan = self.plan(u, v, full=full)
        self.execute_plan(plan)
        self._root_edge = (u, v)
        site_l, counts = self._root_site_likelihoods(u, v)
        return kernels.log_likelihood_from_sites(
            site_l, self.pattern_weights, counts, self.scaling
        )

    def loglikelihood(self) -> float:
        """Log-likelihood at the last evaluation edge (or the default edge)."""
        u, v = self._root_edge if self._root_edge is not None else self.default_edge()
        if not self.tree.has_edge(u, v):
            u, v = self.default_edge()
        return self.edge_loglikelihood(u, v)

    def site_loglikelihoods(self) -> np.ndarray:
        """Per-original-site log-likelihoods (expanded from patterns)."""
        u, v = self._root_edge if self._root_edge is not None else self.default_edge()
        plan = self.plan(u, v)
        self.execute_plan(plan)
        self._root_edge = (u, v)
        site_l, counts = self._root_site_likelihoods(u, v)
        per_pattern = np.log(site_l) - counts * self.scaling.log_multiplier
        return per_pattern[self.alignment.compress().pattern_of_site]

    def full_traversals(self, count: int = 1) -> float:
        """Recompute *every* ancestral vector ``count`` times; return lnL.

        Reproduces the paper's §4.3 benchmark mode (``-f z``): "reading in
        a given, fixed, tree topology and computing five full tree
        traversals ... the worst-case analysis, since full tree traversals
        exhibit the smallest degree of vector locality."
        """
        if count < 1:
            raise LikelihoodError(f"count must be >= 1, got {count}")
        u, v = self.default_edge()
        lnl = 0.0
        for _ in range(count):
            lnl = self.edge_loglikelihood(u, v, full=True)
        return lnl

    # -- mutations (invalidation-aware wrappers around Tree edits) ---------------------

    def set_branch_length(self, u: int, v: int, length: float) -> None:
        """Change a branch length and invalidate dependent CLVs."""
        self.tree.set_branch_length(u, v, length)
        self.orientation.after_branch_change(u, v)

    def apply_spr(self, prune_node: int, subtree_neighbor: int,
                  target_edge: tuple[int, int]):
        """Apply an SPR move; returns the undo record for :meth:`undo_spr`."""
        undo = self.tree.spr_move(prune_node, subtree_neighbor, target_edge)
        self.orientation.after_spr(prune_node, undo.old_a, undo.old_b,
                                   undo.target_u, undo.target_v)
        return undo

    def undo_spr(self, undo) -> None:
        """Reverse an SPR (topology, lengths and CLV validity)."""
        self.tree.undo_spr(undo)
        # The reverse move regrafts from between (target_u, target_v) back
        # into the reconstituted (old_a, old_b) edge: same invalidation with
        # the two locations swapped.
        self.orientation.after_spr(undo.prune_node, undo.target_u, undo.target_v,
                                   undo.old_a, undo.old_b)

    def apply_nni(self, edge: tuple[int, int], variant: int = 0):
        """Apply an NNI move; returns the undo record for :meth:`undo_nni`."""
        undo = self.tree.nni(edge, variant)
        self.orientation.after_nni(undo.u, undo.v, undo.swapped_u, undo.swapped_v)
        return undo

    def undo_nni(self, undo) -> None:
        self.tree.undo_nni(undo)
        # After the reverse swap the exchanged subtrees are back; the
        # invalidation geometry is identical with the roles flipped.
        self.orientation.after_nni(undo.u, undo.v, undo.swapped_v, undo.swapped_u)

    def invalidate_all(self) -> None:
        """Drop every cached CLV orientation (e.g. after a model change)."""
        self.orientation.invalidate_all()

    def set_rates(self, rates: RateModel) -> None:
        """Swap the rate model (same category count); invalidates all CLVs."""
        if rates.num_categories != self.rates.num_categories:
            raise LikelihoodError(
                "category count is fixed by the CLV geometry; rebuild the engine "
                f"to go from {self.rates.num_categories} to {rates.num_categories}"
            )
        self.rates = rates
        self._p_cache.clear()
        self.invalidate_all()

    def set_model(self, model: ReversibleModel) -> None:
        """Swap the substitution model; invalidates all CLVs."""
        if model.num_states != self.model.num_states:
            raise LikelihoodError("state count is fixed by the CLV geometry")
        self.model = model
        self._p_cache.clear()
        self.invalidate_all()

    def set_pattern_weights(self, weights) -> None:
        """Override the per-pattern multiplicities (bootstrap resampling).

        A nonparametric bootstrap replicate is exactly the original pattern
        set with multinomially resampled weights
        (:func:`repro.phylo.bootstrap.bootstrap_weights`), so swapping the
        weight vector re-targets the engine to a replicate without touching
        any CLV: conditional likelihoods are weight-independent — only the
        final weighted sum changes. Zero weights are allowed (patterns
        absent from the replicate).
        """
        weights = np.ascontiguousarray(np.asarray(weights, dtype=np.float64))
        if weights.shape != (self.num_patterns,):
            raise LikelihoodError(
                f"need {self.num_patterns} pattern weights, got {weights.shape}"
            )
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise LikelihoodError("pattern weights must be finite and >= 0")
        self.pattern_weights = weights

    def reset_pattern_weights(self) -> None:
        """Restore the alignment's original pattern multiplicities."""
        self.pattern_weights = self.alignment.compress().weights.astype(np.float64)

    # -- optimization façade (shared protocol with PartitionedEngine) ----------

    def optimize_branch(self, u: int, v: int, **kwargs) -> float:
        """Newton–Raphson optimize one branch; see
        :func:`repro.phylo.likelihood.branch_opt.optimize_branch`."""
        from repro.phylo.likelihood.branch_opt import optimize_branch

        return optimize_branch(self, u, v, **kwargs)

    def optimize_all_branches(self, passes: int = 1, **kwargs) -> float:
        """Smooth every branch; see
        :func:`repro.phylo.likelihood.branch_opt.smooth_all_branches`."""
        from repro.phylo.likelihood.branch_opt import smooth_all_branches

        return smooth_all_branches(self, passes=passes, **kwargs)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Stop the prefetch thread (if any) and close the store.

        Drains pending write-behind traffic first, so the backing store is
        durable when this returns.
        """
        if self.prefetcher is not None:
            self.prefetcher.stop()
            self.prefetcher = None
        if self._kernel_pool is not None:
            self._kernel_pool.shutdown(wait=True)
            self._kernel_pool = None
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    # -- memory accounting --------------------------------------------------------------

    def ancestral_vector_bytes(self) -> int:
        """Width ``w`` of one ancestral vector in bytes (paper §3.1)."""
        return int(np.prod(self.clv_shape)) * self.dtype.itemsize

    def total_ancestral_bytes(self) -> int:
        """``(n-2) · w`` — the footprint the out-of-core store bounds."""
        return self.num_inner * self.ancestral_vector_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LikelihoodEngine({self.tree.num_tips} taxa, {self.num_patterns} patterns, "
            f"{self.model.name}+{self.rates.num_categories}cat, store={self.store!r})"
        )
