"""Model-parameter optimization: Γ shape α, GTR exchangeabilities, frequencies.

Optimizing the α shape parameter requires re-discretizing the Γ categories
and recomputing **all** ancestral vectors per candidate value — this is why
the paper's §4.3 benchmark uses full tree traversals: "full tree traversals
are required to optimize likelihood model parameters such as the α shape
parameter of the Γ model of rate heterogeneity".
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize_scalar

from repro.errors import ModelError
from repro.phylo.models.dna import GTR

#: Search bounds for the Γ shape parameter (RAxML uses a similar range).
ALPHA_BOUNDS = (0.02, 100.0)


def optimize_alpha(engine, bounds: tuple[float, float] = ALPHA_BOUNDS,
                   tol: float = 1e-4) -> float:
    """Brent-optimize the Γ shape α in place; returns the optimum.

    Each trial α rebuilds the rate categories and invalidates every CLV —
    the subsequent evaluation is a full traversal (maximum out-of-core
    pressure, as in the paper's Fig. 5 workload).
    """
    if engine.rates.alpha is None:
        raise ModelError("the engine's rate model has no Γ shape to optimize")

    def negative_lnl(alpha: float) -> float:
        engine.set_rates(engine.rates.with_alpha(float(alpha)))
        return -engine.loglikelihood()

    res = minimize_scalar(negative_lnl, bounds=bounds, method="bounded",
                          options={"xatol": tol})
    best = float(res.x)
    engine.set_rates(engine.rates.with_alpha(best))
    return best


def optimize_gtr_rates(engine, rounds: int = 2, tol: float = 1e-3,
                       bounds: tuple[float, float] = (1e-4, 100.0)) -> np.ndarray:
    """Coordinate-wise Brent over the five free GTR exchangeabilities.

    The sixth rate (GT) stays fixed at 1 (the standard identifiability
    convention). Each trial rebuilds the model's eigensystem and triggers a
    full traversal. Returns the optimized six-rate vector.
    """
    model = engine.model
    if not isinstance(model, GTR):
        raise ModelError(f"GTR rate optimization needs a GTR-family model, got {model.name}")
    rates6 = model.rates6.copy()
    freqs = model.frequencies.copy()

    def rebuild(r6) -> None:
        engine.set_model(GTR(tuple(r6), tuple(freqs), name=model.name))

    for _ in range(rounds):
        for idx in range(5):  # AC, AG, AT, CG, CT free; GT fixed
            def negative_lnl(x: float, idx=idx) -> float:
                trial = rates6.copy()
                trial[idx] = x
                rebuild(trial)
                return -engine.loglikelihood()

            res = minimize_scalar(negative_lnl, bounds=bounds, method="bounded",
                                  options={"xatol": tol})
            rates6[idx] = float(res.x)
        rebuild(rates6)
    return rates6


def use_empirical_frequencies(engine) -> np.ndarray:
    """Replace model frequencies with the alignment's empirical ones.

    The standard ``+F`` treatment; rebuilds the model and invalidates all
    CLVs. Returns the frequency vector used.
    """
    freqs = engine.alignment.empirical_frequencies()
    model = engine.model
    if isinstance(model, GTR):
        engine.set_model(GTR(tuple(model.rates6), tuple(freqs), name=model.name))
    else:
        from repro.phylo.models.base import ReversibleModel

        R = model.rate_matrix / model.frequencies[None, :]
        np.fill_diagonal(R, 0.0)
        R = (R + R.T) / 2.0
        engine.set_model(ReversibleModel(R, freqs, name=model.name))
    return freqs


def optimize_model(engine, alpha: bool = True, gtr: bool = False,
                   branch_passes: int = 1) -> dict:
    """One round of joint model + branch-length optimization.

    The usual alternation: branch lengths → α → (optionally) GTR rates →
    branch lengths. Returns a summary dict with the final log-likelihood.
    """
    from repro.phylo.likelihood.branch_opt import smooth_all_branches

    out: dict = {}
    out["lnl_start"] = engine.loglikelihood()
    smooth_all_branches(engine, passes=branch_passes)
    if alpha and engine.rates.alpha is not None:
        out["alpha"] = optimize_alpha(engine)
    if gtr:
        out["gtr_rates"] = optimize_gtr_rates(engine)
    out["lnl_end"] = smooth_all_branches(engine, passes=branch_passes)
    return out
