"""Partitioned likelihood: one tree, several genes, per-partition models.

Genome-scale analyses — exactly the workloads whose memory footprint
motivates the paper — are usually *partitioned*: different genes (alignment
slices) evolve under different substitution models and Γ shapes, while
sharing one topology and one set of branch lengths. The total
log-likelihood is the sum over partitions.

:class:`PartitionedEngine` composes per-partition
:class:`~repro.phylo.likelihood.engine.LikelihoodEngine` instances on one
shared :class:`~repro.phylo.tree.Tree`. Each partition keeps its own
out-of-core vector store (its own slot budget, policy and backing), so the
memory limit applies partition-wise — the natural generalization of the
paper's single-matrix design.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.msa import Alignment


def split_alignment(alignment: Alignment, boundaries: list[int]) -> list[Alignment]:
    """Slice an alignment into partitions at site ``boundaries``.

    ``boundaries`` are the start sites of each partition after the first,
    e.g. ``[300, 800]`` splits 1000 sites into ``[0:300)``, ``[300:800)``,
    ``[800:1000)``.
    """
    cuts = [0, *boundaries, alignment.num_sites]
    if sorted(cuts) != cuts or len(set(cuts)) != len(cuts):
        raise LikelihoodError(f"boundaries must be increasing within "
                              f"(0, {alignment.num_sites}): {boundaries}")
    out = []
    for lo, hi in zip(cuts, cuts[1:]):
        out.append(Alignment(alignment.names,
                             alignment.codes[:, lo:hi],
                             alignment.alphabet))
    return out


class PartitionedEngine:
    """Joint likelihood over partitions sharing one tree + branch lengths.

    Parameters
    ----------
    tree:
        The shared topology (each partition engine gets this same object,
        so a topological edit propagates to all partitions).
    partitions:
        ``(alignment, model, rates)`` triples.
    store_kwargs:
        Per-partition store configuration forwarded to each engine
        (``fraction=...``, ``policy=...``, ...); one dict applied to all,
        or a list with one dict per partition.
    """

    def __init__(self, tree, partitions, store_kwargs=None) -> None:
        if not partitions:
            raise LikelihoodError("need at least one partition")
        if store_kwargs is None:
            store_kwargs = {}
        if isinstance(store_kwargs, dict):
            store_kwargs = [dict(store_kwargs) for _ in partitions]
        if len(store_kwargs) != len(partitions):
            raise LikelihoodError(
                f"{len(store_kwargs)} store configs for {len(partitions)} partitions"
            )
        self.tree = tree
        self.engines: list[LikelihoodEngine] = []
        for (alignment, model, rates), kwargs in zip(partitions, store_kwargs):
            self.engines.append(
                LikelihoodEngine(tree, alignment, model, rates, **kwargs)
            )

    @property
    def num_partitions(self) -> int:
        return len(self.engines)

    def loglikelihood(self) -> float:
        """Sum of per-partition log-likelihoods (shared virtual root)."""
        u, v = self.engines[0].default_edge()
        return sum(e.edge_loglikelihood(u, v) for e in self.engines)

    def edge_loglikelihood(self, u: int, v: int) -> float:
        return sum(e.edge_loglikelihood(u, v) for e in self.engines)

    # -- shared-tree mutations: applied once, invalidated per partition -------

    def set_branch_length(self, u: int, v: int, length: float) -> None:
        self.tree.set_branch_length(u, v, length)
        for e in self.engines:
            e.orientation.after_branch_change(u, v)

    def apply_spr(self, prune_node: int, subtree_neighbor: int, target_edge):
        undo = self.tree.spr_move(prune_node, subtree_neighbor, target_edge)
        for e in self.engines:
            e.orientation.after_spr(prune_node, undo.old_a, undo.old_b,
                                    undo.target_u, undo.target_v)
        return undo

    def undo_spr(self, undo) -> None:
        self.tree.undo_spr(undo)
        for e in self.engines:
            e.orientation.after_spr(undo.prune_node, undo.target_u,
                                    undo.target_v, undo.old_a, undo.old_b)

    def apply_nni(self, edge, variant: int = 0):
        undo = self.tree.nni(edge, variant)
        for e in self.engines:
            e.orientation.after_nni(undo.u, undo.v, undo.swapped_u,
                                    undo.swapped_v)
        return undo

    def undo_nni(self, undo) -> None:
        self.tree.undo_nni(undo)
        for e in self.engines:
            e.orientation.after_nni(undo.u, undo.v, undo.swapped_v,
                                    undo.swapped_u)

    def optimize_branch(self, u: int, v: int) -> float:
        """Joint Newton–Raphson over all partitions for one branch.

        Builds one sumtable per partition; the joint derivative is the sum
        of per-partition derivatives (branch lengths are shared).
        """
        from repro.phylo.likelihood import kernels
        from repro.phylo.likelihood.branch_opt import (
            MAX_BRANCH_LENGTH,
            MIN_BRANCH_LENGTH,
        )

        tables = []
        for e in self.engines:
            plan = e.plan(u, v)
            e.execute_plan(plan)
            e._root_edge = (u, v)
            tree = e.tree
            u_clv = v_clv = None
            u_codes = v_codes = None
            if tree.is_tip(u):
                u_codes = e._tip_codes[u]
            else:
                u_clv = e.store.get(e.item(u), pins=e._inner_pins([v]))
            if tree.is_tip(v):
                v_codes = e._tip_codes[v]
            else:
                v_clv = e.store.get(e.item(v), pins=e._inner_pins([u]))
            tables.append(kernels.branch_sumtable(
                e.model.eigenvectors.astype(e.dtype),
                e.model.inv_eigenvectors.astype(e.dtype),
                e.model.frequencies.astype(e.dtype),
                u_clv, v_clv, u_codes, v_codes, e._code_matrix,
            ))

        t = float(np.clip(self.tree.branch_length(u, v),
                          MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
        for _ in range(32):
            d1 = d2 = 0.0
            for e, table in zip(self.engines, tables):
                _, p1, p2 = kernels.branch_lnl_and_derivatives(
                    table, e.model.eigenvalues, e.rates.rates,
                    e.rates.weights, e.pattern_weights, t,
                )
                if not np.isfinite(p1):
                    p1, p2 = 0.0, -1.0
                d1 += p1
                d2 += p2
            if abs(d1) < 1e-9:
                break
            step = -d1 / d2 if d2 < 0 else (t if d1 > 0 else -t / 2)
            t_new = float(np.clip(t + step, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
            if abs(t_new - t) < 1e-10:
                t = t_new
                break
            t = t_new
        self.set_branch_length(u, v, t)
        return t

    def optimize_all_branches(self, passes: int = 1) -> float:
        for _ in range(passes):
            for u, v in list(self.tree.edges()):
                self.optimize_branch(u, v)
        return self.loglikelihood()

    def total_ancestral_bytes(self) -> int:
        return sum(e.total_ancestral_bytes() for e in self.engines)

    @property
    def stats(self):
        """Per-partition I/O statistics."""
        return [e.stats for e in self.engines]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedEngine({self.num_partitions} partitions, {self.tree!r})"
