"""Partitioned likelihood: one tree, several genes, per-partition models.

Genome-scale analyses — exactly the workloads whose memory footprint
motivates the paper — are usually *partitioned*: different genes (alignment
slices) evolve under different substitution models and Γ shapes, while
sharing one topology and one set of branch lengths. The total
log-likelihood is the sum over partitions.

:class:`PartitionedEngine` composes per-partition
:class:`~repro.phylo.likelihood.engine.LikelihoodEngine` instances on one
shared :class:`~repro.phylo.tree.Tree`, with two storage arrangements:

* **per-partition stores** (default): each partition keeps its own
  out-of-core vector store (its own slot budget, policy and backing), so
  the memory limit applies partition-wise — the natural generalization of
  the paper's single-matrix design;
* **one shared store** (``shared_store=...``): every partition's blocks
  live in a single :class:`~repro.core.vecstore.AncestralVectorStore`
  over a :class:`~repro.core.layout.ConcatenatedLayout`, so ONE global
  slot budget (and one policy, one backing file) governs all partitions
  — a hot gene can claim slots a cold gene is not using, which the
  fragmented per-partition budgets cannot do. Partitions with unequal
  pattern counts require a block layout (padded site blocks give every
  partition the same item geometry).
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import (
    DEFAULT_BLOCK_SITES,
    ConcatenatedLayout,
    SharedStoreView,
    make_layout,
)
from repro.core.stats import IoStats
from repro.core.vecstore import AncestralVectorStore
from repro.errors import LikelihoodError
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.models.rates import RateModel
from repro.phylo.msa import Alignment


def split_alignment(alignment: Alignment, boundaries: list[int]) -> list[Alignment]:
    """Slice an alignment into partitions at site ``boundaries``.

    ``boundaries`` are the start sites of each partition after the first,
    e.g. ``[300, 800]`` splits 1000 sites into ``[0:300)``, ``[300:800)``,
    ``[800:1000)``.
    """
    cuts = [0, *boundaries, alignment.num_sites]
    if sorted(cuts) != cuts or len(set(cuts)) != len(cuts):
        raise LikelihoodError(f"boundaries must be increasing within "
                              f"(0, {alignment.num_sites}): {boundaries}")
    out = []
    for lo, hi in zip(cuts, cuts[1:]):
        out.append(Alignment(alignment.names,
                             alignment.codes[:, lo:hi],
                             alignment.alphabet))
    return out


class PartitionedEngine:
    """Joint likelihood over partitions sharing one tree + branch lengths.

    Parameters
    ----------
    tree:
        The shared topology (each partition engine gets this same object,
        so a topological edit propagates to all partitions).
    partitions:
        ``(alignment, model, rates)`` triples.
    store_kwargs:
        Per-partition store configuration forwarded to each engine
        (``fraction=...``, ``policy=...``, ...); one dict applied to all,
        or a list with one dict per partition. Mutually exclusive with
        ``shared_store``.
    shared_store:
        One store configuration dict for ALL partitions: the engine
        builds per-partition layouts (``layout``/``block_sites`` keys,
        default ``"block"`` with :data:`~repro.core.layout.DEFAULT_BLOCK_SITES`
        sites), concatenates them, and opens a single
        :class:`~repro.core.vecstore.AncestralVectorStore` whose remaining
        keys (``num_slots``/``fraction``/``policy``/``backing``/
        ``read_skipping``/... , plus ``dtype``) apply globally. Note
        ``fraction`` is relative to the TOTAL block count across
        partitions. Each partition engine addresses the store through a
        :class:`~repro.core.layout.SharedStoreView`, which mirrors its
        demand counters per partition.
    """

    def __init__(self, tree, partitions, store_kwargs=None, *,
                 shared_store=None) -> None:
        if not partitions:
            raise LikelihoodError("need at least one partition")
        if shared_store is not None and store_kwargs is not None:
            raise LikelihoodError(
                "pass either store_kwargs (per-partition stores) or "
                "shared_store (one store for all), not both")
        self.tree = tree
        self.engines: list[LikelihoodEngine] = []
        self._shared_store: AncestralVectorStore | None = None
        self.shared_layout: ConcatenatedLayout | None = None
        if shared_store is not None:
            self._build_shared(tree, partitions, dict(shared_store))
            return
        if store_kwargs is None:
            store_kwargs = {}
        if isinstance(store_kwargs, dict):
            store_kwargs = [dict(store_kwargs) for _ in partitions]
        if len(store_kwargs) != len(partitions):
            raise LikelihoodError(
                f"{len(store_kwargs)} store configs for {len(partitions)} partitions"
            )
        for (alignment, model, rates), kwargs in zip(partitions, store_kwargs):
            self.engines.append(
                LikelihoodEngine(tree, alignment, model, rates, **kwargs)
            )

    def _build_shared(self, tree, partitions, cfg: dict) -> None:
        """One slot arena for every partition (single global budget)."""
        layout_kind = cfg.pop("layout", "block")
        block_sites = cfg.pop("block_sites", None)
        if layout_kind == "block" and block_sites is None:
            block_sites = DEFAULT_BLOCK_SITES
        dtype = np.dtype(cfg.pop("dtype", np.float64))
        num_inner = tree.num_inner
        layouts = []
        for alignment, model, rates in partitions:
            patterns = alignment.compress().num_patterns
            cats = (rates if rates is not None
                    else RateModel.gamma(1.0, 4)).num_categories
            shape = (patterns, cats, model.num_states)
            layouts.append(make_layout(layout_kind, num_inner, shape,
                                       block_sites=block_sites))
        self.shared_layout = ConcatenatedLayout(layouts)
        self._shared_store = AncestralVectorStore(
            layout=self.shared_layout, dtype=dtype, **cfg)
        for i, (alignment, model, rates) in enumerate(partitions):
            view = SharedStoreView(self._shared_store,
                                   self.shared_layout.view(i))
            self.engines.append(
                LikelihoodEngine(tree, alignment, model, rates,
                                 store=view, dtype=dtype)
            )

    @property
    def num_partitions(self) -> int:
        return len(self.engines)

    @property
    def shared_store(self) -> AncestralVectorStore | None:
        """The single shared store, or ``None`` with per-partition stores."""
        return self._shared_store

    def loglikelihood(self) -> float:
        """Sum of per-partition log-likelihoods (shared virtual root)."""
        u, v = self.engines[0].default_edge()
        return sum(e.edge_loglikelihood(u, v) for e in self.engines)

    def edge_loglikelihood(self, u: int, v: int) -> float:
        return sum(e.edge_loglikelihood(u, v) for e in self.engines)

    # -- shared-tree mutations: applied once, invalidated per partition -------

    def set_branch_length(self, u: int, v: int, length: float) -> None:
        self.tree.set_branch_length(u, v, length)
        for e in self.engines:
            e.orientation.after_branch_change(u, v)

    def apply_spr(self, prune_node: int, subtree_neighbor: int, target_edge):
        undo = self.tree.spr_move(prune_node, subtree_neighbor, target_edge)
        for e in self.engines:
            e.orientation.after_spr(prune_node, undo.old_a, undo.old_b,
                                    undo.target_u, undo.target_v)
        return undo

    def undo_spr(self, undo) -> None:
        self.tree.undo_spr(undo)
        for e in self.engines:
            e.orientation.after_spr(undo.prune_node, undo.target_u,
                                    undo.target_v, undo.old_a, undo.old_b)

    def apply_nni(self, edge, variant: int = 0):
        undo = self.tree.nni(edge, variant)
        for e in self.engines:
            e.orientation.after_nni(undo.u, undo.v, undo.swapped_u,
                                    undo.swapped_v)
        return undo

    def undo_nni(self, undo) -> None:
        self.tree.undo_nni(undo)
        for e in self.engines:
            e.orientation.after_nni(undo.u, undo.v, undo.swapped_v,
                                    undo.swapped_u)

    def optimize_branch(self, u: int, v: int) -> float:
        """Joint Newton–Raphson over all partitions for one branch.

        Builds one sumtable per partition; the joint derivative is the sum
        of per-partition derivatives (branch lengths are shared).
        """
        from repro.phylo.likelihood import kernels
        from repro.phylo.likelihood.branch_opt import (
            MAX_BRANCH_LENGTH,
            MIN_BRANCH_LENGTH,
        )

        tables = []
        for e in self.engines:
            plan = e.plan(u, v)
            e.execute_plan(plan)
            e._root_edge = (u, v)
            tables.append(e._edge_sumtable(u, v))

        t = float(np.clip(self.tree.branch_length(u, v),
                          MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
        for _ in range(32):
            d1 = d2 = 0.0
            for e, table in zip(self.engines, tables):
                _, p1, p2 = kernels.branch_lnl_and_derivatives(
                    table, e.model.eigenvalues, e.rates.rates,
                    e.rates.weights, e.pattern_weights, t,
                )
                if not np.isfinite(p1):
                    p1, p2 = 0.0, -1.0
                d1 += p1
                d2 += p2
            if abs(d1) < 1e-9:
                break
            step = -d1 / d2 if d2 < 0 else (t if d1 > 0 else -t / 2)
            t_new = float(np.clip(t + step, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH))
            if abs(t_new - t) < 1e-10:
                t = t_new
                break
            t = t_new
        self.set_branch_length(u, v, t)
        return t

    def optimize_all_branches(self, passes: int = 1) -> float:
        for _ in range(passes):
            for u, v in list(self.tree.edges()):
                self.optimize_branch(u, v)
        return self.loglikelihood()

    def total_ancestral_bytes(self) -> int:
        return sum(e.total_ancestral_bytes() for e in self.engines)

    @property
    def partition_stats(self) -> list[IoStats]:
        """Per-partition I/O statistics.

        With per-partition stores these are the full store counters; with
        a shared store each entry is that partition's
        :class:`~repro.core.layout.SharedStoreView` mirror, which carries
        the demand counters only (evictions and async traffic are global
        decisions of the shared store — see :meth:`stats`).
        """
        return [e.stats for e in self.engines]

    def stats(self) -> IoStats:
        """Aggregated I/O statistics, reported like a single-engine run.

        With a shared store this is the store's own global counter block
        (its demand traffic equals the sum of the per-partition mirrors);
        with per-partition stores it is the element-wise sum of the
        per-partition blocks.
        """
        if self._shared_store is not None:
            return self._shared_store.stats
        return IoStats.merged(self.partition_stats)

    def close(self) -> None:
        """Close every partition engine and (once) the shared store."""
        for e in self.engines:
            e.close()
        if self._shared_store is not None:
            self._shared_store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._shared_store is not None:
            store = self._shared_store
            desc = (f"shared store: {store.num_slots} slots over "
                    f"{store.num_items} blocks of {store.item_shape}, "
                    f"policy={getattr(store.policy, 'name', '?')}")
        else:
            slots = sum(getattr(e.store, "num_slots", 0) for e in self.engines)
            desc = f"per-partition stores: {slots} slots total"
        patterns = sum(e.num_patterns for e in self.engines)
        return (f"PartitionedEngine({self.num_partitions} partitions, "
                f"{self.tree.num_tips} taxa, {patterns} patterns, {desc})")
