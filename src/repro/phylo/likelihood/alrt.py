"""aLRT branch support — approximate likelihood-ratio test per branch.

The SH-free variant of Anisimova & Gascuel (2006): for each internal edge,
compare the likelihood of the current resolution against the better of its
two NNI alternatives; the statistic ``2(lnL₁ − lnL₂)`` (best vs. second
best local resolution) measures how strongly the data prefer the split.
This is the cheapest per-branch support measure — each edge costs three
local branch optimizations, reusing the same lazy machinery (and hence the
same out-of-core locality) as the SPR search.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.stats import chi2

from repro.errors import LikelihoodError


@dataclass(frozen=True)
class BranchSupport:
    """Per-edge aLRT outcome."""

    edge: tuple[int, int]
    lnl_best: float
    lnl_second: float

    @property
    def statistic(self) -> float:
        return max(0.0, 2.0 * (self.lnl_best - self.lnl_second))

    @property
    def p_value(self) -> float:
        """½χ²₀ + ½χ²₁ mixture tail, the aLRT null distribution."""
        if self.statistic == 0.0:
            return 1.0
        return 0.5 * float(chi2.sf(self.statistic, 1))

    @property
    def supported(self) -> bool:
        return self.p_value < 0.05


def alrt_branch_support(engine, edges=None) -> dict[tuple[int, int], BranchSupport]:
    """Compute aLRT support for internal edges (default: all of them).

    For each edge: optimize its length (lnL of the current resolution),
    then evaluate both NNI alternatives with their central branch
    re-optimized; rejected alternatives are rolled back exactly. The
    current resolution must be at least as good as the alternatives for
    the test to be meaningful — run a search first.
    """
    tree = engine.tree
    if edges is None:
        edges = tree.internal_edges()
    out: dict[tuple[int, int], BranchSupport] = {}
    for edge in edges:
        if not tree.has_edge(*edge) or tree.is_tip(edge[0]) or tree.is_tip(edge[1]):
            raise LikelihoodError(f"{edge} is not an internal edge")
        saved = tree.branch_length(*edge)
        engine.optimize_branch(*edge)
        lnl_here = engine.edge_loglikelihood(*edge)
        alternatives = []
        for variant in (0, 1):
            saved_alt = tree.branch_length(*edge)
            undo = engine.apply_nni(edge, variant)
            engine.optimize_branch(*edge)
            alternatives.append(engine.edge_loglikelihood(*edge))
            engine.undo_nni(undo)
            if tree.branch_length(*edge) != saved_alt:
                engine.set_branch_length(*edge, saved_alt)
        second = max(alternatives)
        key = (min(edge), max(edge))
        out[key] = BranchSupport(edge=key, lnl_best=lnl_here, lnl_second=second)
        if tree.branch_length(*edge) != saved:
            # keep the optimized length: it is the ML length for this edge
            pass
    return out


def support_labels(supports: dict[tuple[int, int], BranchSupport]) -> dict:
    """Edge → printable aLRT statistic, for tree drawing/annotation."""
    return {edge: f"{s.statistic:.1f}" for edge, s in supports.items()}
