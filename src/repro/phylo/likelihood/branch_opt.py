"""Newton–Raphson branch-length optimization (RAxML's ``makenewz``).

Optimizing one branch only ever touches the two ancestral vectors at its
ends: the cross terms are folded into an eigen-basis *sumtable* once, after
which every Newton iteration is a cheap exponential sum. The paper
identifies exactly this access pattern as a main source of the PLF's
memory locality — "only memory accesses to the same two vectors ... are
required in this phase, which accounts for approximately 20–30% of overall
execution time" (§4.2).

The iteration is safeguarded: a Newton step is accepted only if it
increases the branch log-likelihood; otherwise the optimizer falls back to
bisecting toward the better bracket end, so it converges on awkward
surfaces (near-zero branches, saturated branches) where raw NR diverges.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError
from repro.phylo.likelihood import kernels

#: RAxML-style clamps on branch lengths (expected substitutions per site).
MIN_BRANCH_LENGTH = 1e-8
MAX_BRANCH_LENGTH = 50.0


def _branch_phi(sumtable, eigenvalues, rates, cat_weights, pattern_weights, t):
    """Branch log-likelihood up to the (scaling) constant: Σ w_i ln g_i(t)."""
    lam = eigenvalues[None, :] * rates[:, None]
    wexp = cat_weights[:, None] * np.exp(lam * t)
    g = np.einsum("ick,ck->i", sumtable, wexp, optimize=True)
    if np.any(g <= 0.0):
        return -np.inf
    return float(pattern_weights @ np.log(g))


def optimize_branch_from_sumtable(
    sumtable: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    t0: float,
    *,
    max_iter: int = 64,
    tol: float = 1e-9,
    min_bl: float = MIN_BRANCH_LENGTH,
    max_bl: float = MAX_BRANCH_LENGTH,
) -> tuple[float, int]:
    """Maximize the branch likelihood; returns ``(t_opt, iterations)``.

    Pure numerical core (no store traffic): the engine-level wrapper
    computes the sumtable and commits the result.
    """
    t = float(np.clip(t0, min_bl, max_bl))
    phi = _branch_phi(sumtable, eigenvalues, rates, cat_weights, pattern_weights, t)
    it = 0
    while it < max_iter:
        it += 1
        _, d1, d2 = kernels.branch_lnl_and_derivatives(
            sumtable, eigenvalues, rates, cat_weights, pattern_weights, t
        )
        if not np.isfinite(d1):
            # Numerical zero at this t — retreat toward the midpoint.
            t_new = max(min_bl, t / 2.0)
        elif abs(d1) < tol:
            break
        elif np.isfinite(d2) and d2 < 0.0:
            t_new = t - d1 / d2  # classic Newton step on d lnL/dt
        else:
            # Non-concave region: move along the gradient with a bold step.
            t_new = t * 4.0 if d1 > 0 else t / 4.0
        t_new = float(np.clip(t_new, min_bl, max_bl))
        if t_new == t:
            break
        phi_new = _branch_phi(
            sumtable, eigenvalues, rates, cat_weights, pattern_weights, t_new
        )
        # Backtrack the step until it does not lose likelihood.
        shrink = 0
        while phi_new < phi - 1e-13 and shrink < 32:
            t_new = 0.5 * (t_new + t)
            phi_new = _branch_phi(
                sumtable, eigenvalues, rates, cat_weights, pattern_weights, t_new
            )
            shrink += 1
        if abs(t_new - t) < tol * max(1.0, t):
            t, phi = t_new, phi_new
            break
        t, phi = t_new, phi_new
    return t, it


def optimize_branch(engine, u: int, v: int, **kwargs) -> float:
    """Optimize the length of edge ``(u, v)`` in place; returns the new length.

    Ensures both end CLVs are valid toward the edge (a local traversal),
    builds the sumtable — after which the NR loop touches no ancestral
    vector at all — and commits the optimized length through the engine so
    dependent CLVs are invalidated.
    """
    tree = engine.tree
    if not tree.has_edge(u, v):
        raise LikelihoodError(f"({u},{v}) is not an edge")
    plan = engine.plan(u, v)
    engine.execute_plan(plan)
    engine._root_edge = (u, v)

    # Blocked (layout-aware) fetch of the two end vectors; the NR loop
    # below touches no ancestral vector at all.
    sumtable = engine._edge_sumtable(u, v)
    t_opt, _ = optimize_branch_from_sumtable(
        sumtable,
        engine.model.eigenvalues,
        engine.rates.rates,
        engine.rates.weights,
        engine.pattern_weights,
        tree.branch_length(u, v),
        **kwargs,
    )
    if t_opt != tree.branch_length(u, v):
        engine.set_branch_length(u, v, t_opt)
    return t_opt


def smooth_all_branches(engine, passes: int = 1, **kwargs) -> float:
    """RAxML's ``smoothTree``: optimize every branch, ``passes`` times over.

    Edges are visited in a depth-first order starting from the default
    evaluation edge so consecutive optimizations share CLV context — the
    locality that keeps out-of-core miss rates low during this phase.
    Returns the final log-likelihood.
    """
    if passes < 1:
        raise LikelihoodError(f"passes must be >= 1, got {passes}")
    tree = engine.tree
    for _ in range(passes):
        # DFS edge order from tip 0's attachment point.
        (anchor,) = tree.neighbors(0)
        seen = set()
        stack = [(anchor, 0)]
        order = []
        while stack:
            x, parent = stack.pop()
            key = (min(x, parent), max(x, parent))
            if key in seen:
                continue
            seen.add(key)
            order.append((x, parent))
            if not tree.is_tip(x):
                stack.extend((y, x) for y in tree.neighbors(x) if y != parent)
        for x, parent in order:
            optimize_branch(engine, x, parent, **kwargs)
    return engine.loglikelihood()
