"""Traversal planning: which ancestral vectors must be recomputed, in what order.

RAxML does not re-traverse the whole tree for every candidate topology —
"only a small fraction of ancestral probability vectors needs to be accessed
and updated for each tree that is analyzed" (§3.1). That behaviour comes
from *CLV orientation bookkeeping*: each inner node's stored vector is valid
for one direction (toward the virtual root used when it was computed). This
module plans the minimal post-order recomputation list for evaluating the
likelihood at a given edge, given the current orientation state.

The plan is computed **before** any likelihood arithmetic, which is what
makes the paper's read-skipping rule (§3.4) possible: every vector a plan
step writes is write-only on its first access, so its stale disk contents
never need to be read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import LikelihoodError
from repro.phylo.tree import Tree


@dataclass(frozen=True)
class TraversalStep:
    """Recompute the CLV of ``node`` from children ``left`` and ``right``.

    ``left``/``right`` point away from the virtual root; the CLV written at
    ``node`` becomes oriented toward ``toward`` (its parent on the path to
    the root edge).
    """

    node: int
    left: int
    right: int
    toward: int


@dataclass(frozen=True)
class TraversalPlan:
    """An ordered recomputation schedule for evaluating edge ``(u, v)``.

    ``steps`` are in valid post-order (children before parents). The
    *write-only* property holds for every step by construction: a planned
    node's previous contents are never read.
    """

    root_u: int
    root_v: int
    steps: tuple[TraversalStep, ...]

    def __len__(self) -> int:
        return len(self.steps)

    def touched_nodes(self) -> list[int]:
        return [s.node for s in self.steps]


class OrientationState:
    """Validity/orientation bookkeeping for all inner-node CLVs.

    ``orient[x]`` is the neighbor of inner node ``x`` toward which the
    stored CLV of ``x`` "looks" (its parent at computation time), or ``-1``
    when the CLV is invalid. Invariant maintained jointly with the engine:
    ``orient[x] = p ≠ -1`` implies the stored CLV of ``x`` equals the
    conditional likelihood of the subtree at ``x`` away from ``p`` under
    the *current* topology and branch lengths.
    """

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self.orient = np.full(tree.num_nodes, -1, dtype=np.int64)

    def invalidate_all(self) -> None:
        self.orient.fill(-1)

    def is_valid_toward(self, node: int, parent: int) -> bool:
        return self.orient[node] == parent

    def set(self, node: int, parent: int) -> None:
        self.orient[node] = parent

    def num_valid(self) -> int:
        return int((self.orient[self.tree.num_tips:] >= 0).sum())

    # -- invalidation after mutations -------------------------------------------

    def _next_hops(self, source: int) -> np.ndarray:
        """First node on the path from every node to ``source`` (BFS)."""
        tree = self.tree
        hop = np.full(tree.num_nodes, -1, dtype=np.int64)
        hop[source] = source
        q = deque([source])
        while q:
            x = q.popleft()
            for y in tree.neighbors(x):
                if hop[y] < 0:
                    hop[y] = x
                    q.append(y)
        return hop

    def _invalidate_below_sources(self, sources: list[int]) -> None:
        """Invalidate every node that has any of ``sources`` in its subtree.

        A node ``x``'s CLV covers the subtree away from ``orient[x]``; a
        change localized at a source node can only affect ``x`` if the path
        from ``x`` to that source leaves through a child — i.e. the BFS
        next-hop differs from ``orient[x]``.
        """
        tree = self.tree
        for src in sources:
            hop = self._next_hops(src)
            for x in tree.inner_nodes():
                o = self.orient[x]
                if o >= 0 and x != src and hop[x] != o:
                    self.orient[x] = -1

    def after_branch_change(self, u: int, v: int) -> None:
        """Invalidate for a length change of edge ``(u, v)``.

        The endpoints' own CLVs do not include their shared edge, so they
        stay valid when oriented across it; every node with the edge below
        it is invalidated.
        """
        if not self.tree.is_tip(u) and self.orient[u] >= 0 and self.orient[u] != v:
            self.orient[u] = -1
        if not self.tree.is_tip(v) and self.orient[v] >= 0 and self.orient[v] != u:
            self.orient[v] = -1
        self._invalidate_below_sources([u])

    def after_spr(self, p: int, a: int, b: int, tu: int, tv: int) -> None:
        """Invalidate after regrafting the subtree at ``p`` from edge (a,b)'s
        former junction into the former edge ``(tu, tv)``.

        Boundary nodes whose orientation pointed *through* the modified
        junction keep a valid CLV and are remapped to the replacement
        neighbor; everything with a modified junction below it is
        invalidated. Call with the roles from the applied move; for an undo
        call again with old/new locations swapped.
        """
        tree = self.tree
        self.orient[p] = -1
        for node, old_nbr, new_nbr in ((a, p, b), (b, p, a), (tu, tv, p), (tv, tu, p)):
            if tree.is_tip(node):
                continue
            if self.orient[node] == old_nbr:
                # The CLV looked *across* the modified junction; its own
                # subtree content is untouched — remap to the new neighbor.
                self.orient[node] = new_nbr
            elif self.orient[node] >= 0:
                # Any other orientation has the modified junction below it.
                self.orient[node] = -1
        self._invalidate_below_sources([a, p])

    def after_nni(self, u: int, v: int, su: int, sv: int) -> None:
        """Invalidate after an NNI that swapped ``su`` (was at ``u``) with
        ``sv`` (was at ``v``)."""
        tree = self.tree
        self.orient[u] = -1
        self.orient[v] = -1
        for node, old_nbr, new_nbr in ((su, u, v), (sv, v, u)):
            if tree.is_tip(node):
                continue
            if self.orient[node] == old_nbr:
                self.orient[node] = new_nbr
            elif self.orient[node] >= 0:
                self.orient[node] = -1
        self._invalidate_below_sources([u])


def plan_edge_traversal(tree: Tree, state: OrientationState, u: int, v: int,
                        full: bool = False) -> TraversalPlan:
    """Plan the minimal recomputation to evaluate the likelihood at ``(u, v)``.

    Walks each side of the edge away from the other endpoint; descends only
    into inner nodes whose stored CLV is not already valid toward the root
    edge. With ``full=True`` every inner node is scheduled regardless of
    validity — the paper's ``-f z`` full-traversal mode (§4.3).
    """
    if not tree.has_edge(u, v):
        raise LikelihoodError(f"({u},{v}) is not an edge of the tree")
    steps: list[TraversalStep] = []
    for start, parent in ((u, v), (v, u)):
        _plan_side(tree, state, start, parent, full, steps)
    return TraversalPlan(u, v, tuple(steps))


def _plan_side(tree: Tree, state: OrientationState, node: int, parent: int,
               full: bool, steps: list[TraversalStep]) -> None:
    if tree.is_tip(node):
        return
    # Iterative post-order, pruning at already-valid nodes (unless full).
    stack: list[tuple[int, int, bool]] = [(node, parent, False)]
    while stack:
        x, par, expanded = stack.pop()
        if tree.is_tip(x):
            continue
        if not full and state.is_valid_toward(x, par):
            continue
        kids = [y for y in tree.neighbors(x) if y != par]
        if len(kids) != 2:
            raise LikelihoodError(f"inner node {x} has degree {len(kids) + 1}")
        if expanded:
            steps.append(TraversalStep(x, kids[0], kids[1], par))
        else:
            stack.append((x, par, True))
            stack.extend((k, x, False) for k in kids)
