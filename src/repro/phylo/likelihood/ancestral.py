"""Marginal ancestral state reconstruction.

Computes, for any inner node, the posterior probability of each character
state at each site — the classic use of the very ancestral probability
vectors the out-of-core store manages. The marginal at node ``x`` combines
the three directional conditional likelihoods around ``x``; we obtain them
by evaluating with the virtual root placed on an edge incident to ``x``
(so the engine's stored CLV of ``x`` covers two subtrees and the third
direction is folded across the root edge).

Because all vector traffic goes through ``store.get``, reconstruction works
unchanged — and bit-identically — on out-of-core engines.
"""

from __future__ import annotations

import numpy as np

from repro.errors import LikelihoodError
from repro.phylo.likelihood import kernels
from repro.phylo.likelihood.engine import _valid


def marginal_ancestral_distribution(engine, node: int) -> np.ndarray:
    """Posterior state probabilities at inner ``node``: ``(sites, states)``.

    For each site ``i`` and state ``a``:
    ``P(a | data) ∝ Σ_c w_c π_a · CLV_x[i,c,a] · (P_c · CLV_other)[i,c,a]``
    where ``CLV_x`` looks down the two subtrees below ``x`` and the third
    direction arrives across the root edge. Rows are normalized to sum to 1;
    results are expanded from patterns to original sites.
    """
    tree = engine.tree
    if tree.is_tip(node):
        raise LikelihoodError(f"node {node} is a tip; reconstruct inner nodes only")
    parent = tree.neighbors(node)[0]
    # Root on the (node, parent) edge: engine CLV at `node` then covers its
    # two other subtrees; `parent`'s side covers the rest of the tree.
    plan = engine.plan(node, parent)
    engine.execute_plan(plan)
    engine._root_edge = (node, parent)

    layout = engine.layout
    parent_tip = tree.is_tip(parent)
    P = engine._P(node, parent)
    freqs = engine.model.frequencies.astype(engine.dtype)
    weights = engine.rates.weights.astype(engine.dtype)
    single = layout.blocks_per_node == 1
    joint = None if single else np.empty(
        (engine.num_patterns, engine.model.num_states), dtype=engine.dtype)
    for b in range(layout.blocks_per_node):
        lo, hi = layout.block_bounds(b)
        span = hi - lo
        node_clv = _valid(engine.store.get(
            layout.item_of(engine.item(node), b),
            pins=engine._block_pins([parent], b)), span)
        if parent_tip:
            other_folded = kernels.propagate_tip(
                P, engine._tip_codes[parent][lo:hi], engine._code_matrix,
            )
        else:
            other = _valid(engine.store.get(
                layout.item_of(engine.item(parent), b),
                pins=engine._block_pins([node], b)), span)
            other_folded = kernels.propagate_inner(P, other)
        part = np.einsum("ica,ica,a,c->ia", node_clv, other_folded,
                         freqs, weights, optimize=True)
        if single:
            # keep the kernel's own array — downstream reductions are
            # sensitive to operand memory layout at the ulp level
            joint = part
            break
        joint[lo:hi] = part
    assert joint is not None
    totals = joint.sum(axis=1, keepdims=True)
    if np.any(totals <= 0) or not np.all(np.isfinite(totals)):
        raise LikelihoodError("zero marginal likelihood during reconstruction")
    post = joint / totals
    return post[engine.alignment.compress().pattern_of_site]


def marginal_ancestral_states(engine, node: int) -> str:
    """Most probable state per site at ``node``, as a sequence string."""
    post = marginal_ancestral_distribution(engine, node)
    best = post.argmax(axis=1)
    alphabet = engine.alignment.alphabet
    codes = np.left_shift(1, best).astype(
        np.uint8 if alphabet.num_states <= 8 else np.uint32
    )
    return alphabet.decode(codes)


def reconstruct_all(engine) -> dict[int, str]:
    """Most probable ancestral sequences for every inner node."""
    return {node: marginal_ancestral_states(engine, node)
            for node in engine.tree.inner_nodes()}
