"""Batched kernel scheduling: group independent (step, block) updates.

The per-block execution loop in :meth:`LikelihoodEngine.execute_plan`
pays Python dispatch, einsum setup and a store round-trip once per site
block per traversal step — exactly the overhead the paper's SSE3 C
kernels avoid. This module turns a :class:`TraversalPlan` plus a
:class:`~repro.core.layout.StorageLayout` and the store's slot budget
into a :class:`BatchedSchedule`: an ordered partition of the plan's
(step, block) updates into *groups* whose members are mutually
independent (no member reads another member's output), so each group's
child propagations can run as one batched contraction
(:func:`repro.phylo.likelihood.kernels.propagate_inner_batch`).

Two properties make the batched execution path bit-compatible with the
unbatched one (the §4.1 criterion):

* **Access-sequence identity.** Each member carries the exact
  ``(item, pins, write_only)`` store calls the unbatched loop would
  issue, in the same order; the flattened schedule *is*
  ``LikelihoodEngine.plan_accesses(plan)``. Replacement decisions — and
  with them every demand/eviction counter — are a deterministic function
  of that sequence, so PARITY_COUNTERS match for every policy. Child
  views are copied into the batch stacks immediately at fetch time, and
  each member's output target is written back out-of-band after the
  group kernel (:meth:`AncestralVectorStore.fill`), so no view ever
  outlives the gets that follow it.
* **Residency-bounded groups.** A member's deferred output must survive
  in RAM (or be spilled and rewritten) until its group's kernel fills
  it. With ``max_members <= num_slots // 3`` a group issues at most
  ``num_slots`` gets, so under LRU every output is still younger than
  any eviction victim when its fill lands — zero spills. That is the
  default cap; a larger explicit cap trades occasional double-writes of
  evicted outputs (uncounted, policy-neutral) for more fusion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.layout import StorageLayout
from repro.errors import LikelihoodError
from repro.phylo.likelihood.traversal import TraversalPlan


@dataclass(frozen=True)
class BatchMember:
    """One (step, block) update inside a batch group.

    ``fetches`` is the member's store-access run — the child gets (with
    the mutual pins of the unbatched loop) followed by the write-only
    target get — and ``left_item``/``right_item`` are ``-1`` for tip
    children (whose codes come from RAM, not the store).
    """

    node: int
    left: int
    right: int
    toward: int
    block: int
    lo: int
    hi: int
    out_item: int
    left_item: int
    right_item: int
    first_block: bool
    last_block: bool
    fetches: tuple[tuple[int, tuple[int, ...], bool], ...]

    @property
    def span(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class BatchGroup:
    """A maximal run of mutually independent members.

    Within a group no member's ``out_item`` appears among another
    member's child items (enforced at build time by flushing on
    dependency), and all items are distinct — so child copies taken at
    fetch time stay valid for the whole group and the fused kernel may
    compute members in any order or chunking.
    """

    members: tuple[BatchMember, ...]

    def __len__(self) -> int:
        return len(self.members)

    def accesses(self) -> list[tuple[int, tuple[int, ...], bool]]:
        return [f for m in self.members for f in m.fetches]


@dataclass(frozen=True)
class BatchedSchedule:
    """Ordered groups covering every (step, block) update of a plan."""

    groups: tuple[BatchGroup, ...]
    max_members: int
    num_members: int = field(default=0)

    def accesses(self) -> list[tuple[int, tuple[int, ...], bool]]:
        """The flattened store-access sequence — equal, element for
        element, to ``LikelihoodEngine.plan_accesses(plan)``."""
        return [f for g in self.groups for f in g.accesses()]


def default_group_cap(num_slots: int) -> int:
    """The largest group size that cannot spill a deferred output.

    A group of ``G`` members issues at most ``3G`` gets; with
    ``3G <= num_slots`` every member's freshly fetched output is more
    recently used than ``num_slots - 1`` other items when the group
    ends, so an LRU store never evicts it before its fill (see module
    docstring). Other policies may still spill — the fill path handles
    that correctly, it is merely extra backing traffic.
    """
    return max(1, int(num_slots) // 3)


def build_batched_schedule(
    plan: TraversalPlan,
    layout: StorageLayout,
    num_tips: int,
    max_members: int,
) -> BatchedSchedule:
    """Partition a plan's (step, block) updates into batch groups.

    Iterates in the unbatched execution order — steps outer, blocks
    inner — and closes the current group whenever (a) the next step
    reads a node some member of the group writes, or (b) the group is
    full. Post-order plans guarantee children precede parents, so rule
    (a) only ever fires at step boundaries and groups are contiguous
    runs of the original order: the concatenated access sequence is
    exactly the unbatched one.
    """
    if max_members < 1:
        raise LikelihoodError(f"max_members must be >= 1, got {max_members}")

    def item(node: int) -> int:
        return node - num_tips

    blocks = layout.blocks_per_node
    groups: list[BatchGroup] = []
    current: list[BatchMember] = []
    written: set[int] = set()  # nodes written by members of ``current``
    total = 0

    def flush() -> None:
        if current:
            groups.append(BatchGroup(tuple(current)))
            current.clear()
            written.clear()

    for step in plan.steps:
        node, left, right = step.node, step.left, step.right
        left_inner = left >= num_tips
        right_inner = right >= num_tips
        if left in written or right in written:
            flush()
        for b in range(blocks):
            if len(current) >= max_members:
                flush()
            lo, hi = layout.block_bounds(b)
            fetches: list[tuple[int, tuple[int, ...], bool]] = []
            l_item = r_item = -1
            if left_inner:
                l_item = layout.item_of(item(left), b)
                pins = ((layout.item_of(item(right), b),) if right_inner
                        else ()) + (layout.item_of(item(node), b),)
                fetches.append((l_item, pins, False))
            if right_inner:
                r_item = layout.item_of(item(right), b)
                pins = ((layout.item_of(item(left), b),) if left_inner
                        else ()) + (layout.item_of(item(node), b),)
                fetches.append((r_item, pins, False))
            out_item = layout.item_of(item(node), b)
            out_pins = tuple(layout.item_of(item(x), b)
                             for x in (left, right) if x >= num_tips)
            fetches.append((out_item, out_pins, True))
            current.append(BatchMember(
                node=node, left=left, right=right, toward=step.toward,
                block=b, lo=lo, hi=hi,
                out_item=out_item, left_item=l_item, right_item=r_item,
                first_block=(b == 0), last_block=(b == blocks - 1),
                fetches=tuple(fetches),
            ))
            written.add(node)
            total += 1
    flush()
    return BatchedSchedule(groups=tuple(groups), max_members=max_members,
                           num_members=total)


class ScheduleCache:
    """A small LRU of built schedules, keyed by plan identity.

    Full traversals re-plan the identical step sequence every iteration;
    rebuilding items, pins and group boundaries each time would charge
    the batched path the very Python overhead it exists to remove. Keys
    are the plan's frozen contents (hashable dataclasses), so topology
    edits — which change the step tuples — miss naturally. Branch
    lengths are *not* part of the schedule (transition matrices are
    fetched at execution time), so length-only edits may reuse a cached
    schedule safely.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise LikelihoodError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._cache: OrderedDict[tuple, BatchedSchedule] = OrderedDict()

    def get(self, plan: TraversalPlan, layout: StorageLayout,
            num_tips: int, max_members: int) -> BatchedSchedule:
        key = (plan.root_u, plan.root_v, plan.steps, max_members)
        found = self._cache.get(key)
        if found is not None:
            self._cache.move_to_end(key)
            return found
        built = build_batched_schedule(plan, layout, num_tips, max_members)
        self._cache[key] = built
        if len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
        return built
