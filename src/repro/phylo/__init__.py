"""Phylogenetics substrate: alignments, trees, models, likelihood, search.

This subpackage is a from-scratch, numpy-vectorized re-implementation of the
parts of RAxML that the paper's out-of-core layer plugs into: the
Felsenstein-pruning Phylogenetic Likelihood Function (PLF) under GTR-family
models with Γ rate heterogeneity, Newton–Raphson branch-length optimization,
and a lazy-SPR maximum-likelihood tree search.
"""

from repro.phylo.alphabet import AMINO_ACID, DNA, Alphabet
from repro.phylo.msa import Alignment
from repro.phylo.newick import parse_newick, write_newick
from repro.phylo.tree import Tree

__all__ = [
    "Alphabet",
    "DNA",
    "AMINO_ACID",
    "Alignment",
    "Tree",
    "parse_newick",
    "write_newick",
]
