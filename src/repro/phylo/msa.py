"""Multiple sequence alignments with site-pattern compression.

An :class:`Alignment` owns the encoded tip data that stays resident in RAM
during out-of-core likelihood computation (paper §3.1: tip vectors are cheap;
ancestral probability vectors dominate). Identical alignment columns are
collapsed into weighted *site patterns* — the standard PLF optimization that
RAxML applies before any likelihood work — so all kernels operate on
``num_patterns`` columns with integer multiplicities.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.phylo.alphabet import DNA, Alphabet


@dataclass(frozen=True)
class PatternCompression:
    """Mapping between original alignment sites and unique patterns.

    Attributes
    ----------
    pattern_of_site:
        ``(num_sites,)`` index of the unique pattern each site collapsed to.
    weights:
        ``(num_patterns,)`` multiplicity of each unique pattern; sums to the
        original site count.
    """

    pattern_of_site: np.ndarray
    weights: np.ndarray

    @property
    def num_patterns(self) -> int:
        return int(self.weights.shape[0])

    @property
    def num_sites(self) -> int:
        return int(self.pattern_of_site.shape[0])


class Alignment:
    """An immutable multiple sequence alignment of encoded sequences.

    Parameters
    ----------
    names:
        Taxon labels, unique, one per row.
    codes:
        ``(num_taxa, num_sites)`` array of alphabet bitmask codes.
    alphabet:
        The :class:`~repro.phylo.alphabet.Alphabet` the codes belong to.

    Use :meth:`from_sequences`, :meth:`from_fasta` or :meth:`from_phylip`
    to construct from raw text.
    """

    def __init__(self, names: list[str], codes: np.ndarray, alphabet: Alphabet) -> None:
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise AlignmentError("codes must be a 2-D (taxa, sites) array")
        if len(names) != codes.shape[0]:
            raise AlignmentError(
                f"{len(names)} names but {codes.shape[0]} sequence rows"
            )
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise AlignmentError(f"duplicate taxon names: {dupes}")
        if codes.shape[1] == 0:
            raise AlignmentError("alignment has zero sites")
        self._names = list(names)
        self._codes = np.ascontiguousarray(codes)
        self._codes.setflags(write=False)
        self._alphabet = alphabet
        self._compression: PatternCompression | None = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_sequences(
        cls, named_seqs: list[tuple[str, str]], alphabet: Alphabet = DNA
    ) -> "Alignment":
        """Build from ``[(name, sequence_string), ...]`` of equal lengths."""
        if not named_seqs:
            raise AlignmentError("no sequences given")
        lengths = {len(s) for _, s in named_seqs}
        if len(lengths) != 1:
            raise AlignmentError(f"sequences have unequal lengths: {sorted(lengths)}")
        names = [n for n, _ in named_seqs]
        codes = np.stack([alphabet.encode(s) for _, s in named_seqs])
        return cls(names, codes, alphabet)

    @classmethod
    def from_fasta(cls, text: str, alphabet: Alphabet = DNA) -> "Alignment":
        """Parse FASTA-formatted text (``>name`` headers, wrapped sequences)."""
        seqs: list[tuple[str, str]] = []
        name: str | None = None
        chunks: list[str] = []
        for raw in io.StringIO(text):
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    seqs.append((name, "".join(chunks)))
                name = line[1:].split()[0] if len(line) > 1 else ""
                if not name:
                    raise AlignmentError("FASTA header with empty name")
                chunks = []
            else:
                if name is None:
                    raise AlignmentError("FASTA sequence data before any header")
                chunks.append(line)
        if name is not None:
            seqs.append((name, "".join(chunks)))
        if not seqs:
            raise AlignmentError("no FASTA records found")
        return cls.from_sequences(seqs, alphabet)

    @classmethod
    def from_phylip(cls, text: str, alphabet: Alphabet = DNA) -> "Alignment":
        """Parse sequential relaxed-PHYLIP (the format RAxML reads)."""
        lines = [ln.rstrip("\n") for ln in io.StringIO(text) if ln.strip()]
        if not lines:
            raise AlignmentError("empty PHYLIP input")
        header = lines[0].split()
        if len(header) != 2:
            raise AlignmentError(f"bad PHYLIP header: {lines[0]!r}")
        try:
            ntaxa, nsites = int(header[0]), int(header[1])
        except ValueError:
            raise AlignmentError(f"bad PHYLIP header: {lines[0]!r}") from None
        if len(lines) - 1 != ntaxa:
            raise AlignmentError(
                f"PHYLIP header promises {ntaxa} taxa but {len(lines) - 1} rows follow"
            )
        seqs = []
        for ln in lines[1:]:
            parts = ln.split(None, 1)
            if len(parts) != 2:
                raise AlignmentError(f"bad PHYLIP row: {ln!r}")
            seq = parts[1].replace(" ", "")
            if len(seq) != nsites:
                raise AlignmentError(
                    f"taxon {parts[0]!r} has {len(seq)} sites, header says {nsites}"
                )
            seqs.append((parts[0], seq))
        return cls.from_sequences(seqs, alphabet)

    # -- serialization ----------------------------------------------------------

    def to_fasta(self) -> str:
        """Serialize to FASTA text (60-column wrapping)."""
        out = []
        for i, name in enumerate(self._names):
            out.append(f">{name}")
            s = self._alphabet.decode(self._codes[i])
            out.extend(s[j : j + 60] for j in range(0, len(s), 60))
        return "\n".join(out) + "\n"

    def to_phylip(self) -> str:
        """Serialize to sequential relaxed-PHYLIP text."""
        out = [f"{self.num_taxa} {self.num_sites}"]
        width = max(len(n) for n in self._names) + 2
        for i, name in enumerate(self._names):
            out.append(f"{name:<{width}}{self._alphabet.decode(self._codes[i])}")
        return "\n".join(out) + "\n"

    # -- basic accessors ----------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        return self._alphabet

    @property
    def names(self) -> list[str]:
        return list(self._names)

    @property
    def num_taxa(self) -> int:
        return int(self._codes.shape[0])

    @property
    def num_sites(self) -> int:
        return int(self._codes.shape[1])

    @property
    def codes(self) -> np.ndarray:
        """The read-only ``(num_taxa, num_sites)`` bitmask-code matrix."""
        return self._codes

    def index_of(self, name: str) -> int:
        try:
            return self._names.index(name)
        except ValueError:
            raise AlignmentError(f"unknown taxon {name!r}") from None

    def sequence(self, name_or_index) -> str:
        """Decoded sequence string for a taxon (by name or row index)."""
        idx = name_or_index if isinstance(name_or_index, int) else self.index_of(name_or_index)
        return self._alphabet.decode(self._codes[idx])

    # -- pattern compression ---------------------------------------------------

    def compress(self) -> PatternCompression:
        """Collapse identical columns into weighted patterns (cached).

        Columns are compared on their full code vectors, so two columns only
        merge when every taxon (including ambiguity codes) agrees — exactly
        the condition under which their per-site likelihoods are identical.
        """
        if self._compression is None:
            cols = self._codes.T
            _, first_index, inverse, counts = np.unique(
                cols, axis=0, return_index=True, return_inverse=True, return_counts=True
            )
            # Re-order patterns by first appearance so compression is stable
            # with respect to the input, which keeps golden test values fixed.
            order = np.argsort(first_index, kind="stable")
            rank = np.empty_like(order)
            rank[order] = np.arange(len(order))
            self._compression = PatternCompression(
                pattern_of_site=rank[inverse].astype(np.int64),
                weights=counts[order].astype(np.float64),
            )
        return self._compression

    @property
    def num_patterns(self) -> int:
        return self.compress().num_patterns

    def pattern_codes(self) -> np.ndarray:
        """``(num_taxa, num_patterns)`` code matrix of unique patterns only."""
        comp = self.compress()
        first_site = np.full(comp.num_patterns, -1, dtype=np.int64)
        for site in range(comp.num_sites - 1, -1, -1):
            first_site[comp.pattern_of_site[site]] = site
        return np.ascontiguousarray(self._codes[:, first_site])

    def empirical_frequencies(self) -> np.ndarray:
        """Empirical state frequencies, distributing ambiguity mass equally.

        Each character contributes ``1/k`` to each of its ``k`` compatible
        states; fully-unknown (gap) characters are skipped entirely, matching
        RAxML's empirical base-frequency computation.
        """
        tip = self._alphabet.code_matrix()  # (codes, states)
        gap = self._alphabet.gap_code
        flat = self._codes.reshape(-1)
        flat = flat[flat != gap]
        if flat.size == 0:
            k = self._alphabet.num_states
            return np.full(k, 1.0 / k)
        contrib = tip[flat.astype(np.int64)]
        contrib /= contrib.sum(axis=1, keepdims=True)
        freqs = contrib.sum(axis=0)
        total = freqs.sum()
        return freqs / total

    # -- memory accounting (paper §3.1) ------------------------------------------

    def ancestral_vector_bytes(
        self, num_rates: int = 4, dtype=np.float64, compressed: bool = True
    ) -> int:
        """Bytes of ONE ancestral probability vector, ``w`` in the paper.

        ``states * num_rates * sites * itemsize`` — e.g. 10,000 DNA sites
        under Γ4 double precision → ``10,000 × 16 × 8 = 1,280,000`` bytes,
        the worked example of §3.1.
        """
        sites = self.num_patterns if compressed else self.num_sites
        return int(sites * self._alphabet.num_states * num_rates * np.dtype(dtype).itemsize)

    def total_ancestral_bytes(
        self, num_rates: int = 4, dtype=np.float64, compressed: bool = True
    ) -> int:
        """Total bytes of all ``n - 2`` ancestral vectors (paper's formula)."""
        return (self.num_taxa - 2) * self.ancestral_vector_bytes(num_rates, dtype, compressed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Alignment({self.num_taxa} taxa × {self.num_sites} sites, "
            f"{self.num_patterns} patterns, {self._alphabet.name})"
        )
