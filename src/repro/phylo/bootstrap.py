"""Nonparametric (Felsenstein) bootstrap support values.

Columns are resampled with replacement, a tree is inferred on each
replicate, and each split of a reference tree is annotated with the
fraction of replicate trees containing it. Resampling operates directly on
*pattern weights* — a replicate is just a new weight vector over the
existing site patterns, so no sequence data is copied and each replicate
engine reuses the compressed alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AlignmentError
from repro.phylo.msa import Alignment
from repro.phylo.tree import Tree
from repro.utils.rng import as_rng


def bootstrap_alignment(alignment: Alignment, rng) -> Alignment:
    """One bootstrap replicate: sites resampled with replacement."""
    sites = rng.integers(alignment.num_sites, size=alignment.num_sites)
    return Alignment(alignment.names,
                     np.ascontiguousarray(alignment.codes[:, sites]),
                     alignment.alphabet)


def bootstrap_weights(alignment: Alignment, rng) -> np.ndarray:
    """Replicate pattern weights via multinomial resampling of sites.

    Equivalent to :func:`bootstrap_alignment` + recompression but O(sites)
    with no data copies: sample ``num_sites`` sites uniformly and count how
    often each existing pattern was drawn.
    """
    comp = alignment.compress()
    probs = comp.weights / comp.weights.sum()
    counts = rng.multinomial(comp.num_sites, probs)
    return counts.astype(np.float64)


@dataclass
class BootstrapResult:
    """Support analysis output."""

    reference: Tree
    support: dict[frozenset, float]  # split -> fraction of replicates
    num_replicates: int

    def support_for_edge(self, u: int, v: int) -> float:
        """Support of the split induced by internal edge ``(u, v)``."""
        tree = self.reference
        side = frozenset(tree.subtree_tips(u, v))
        if 0 in side:
            side = frozenset(range(tree.num_tips)) - side
        return self.support.get(side, 0.0)

    def mean_support(self) -> float:
        vals = list(self.support.values())
        return float(np.mean(vals)) if vals else 0.0


def bootstrap_support(
    alignment: Alignment,
    reference: Tree,
    infer_tree,
    *,
    replicates: int = 100,
    seed=None,
) -> BootstrapResult:
    """Compute split support for ``reference`` over bootstrap replicates.

    Parameters
    ----------
    alignment:
        The original data.
    reference:
        The tree to annotate (e.g. the ML tree).
    infer_tree:
        Callable ``(Alignment, seed) -> Tree`` used per replicate — e.g.
        ``lambda aln, s: nj_tree(aln)`` for fast NJ bootstrapping, or a
        full ML search for publication-grade values.
    replicates:
        Number of pseudo-replicates.
    """
    if replicates < 1:
        raise AlignmentError(f"need at least 1 replicate, got {replicates}")
    rng = as_rng(seed)
    ref_splits = reference.splits()
    counts = {split: 0 for split in ref_splits}
    for _ in range(replicates):
        replicate = bootstrap_alignment(alignment, rng)
        tree = infer_tree(replicate, int(rng.integers(1 << 31)))
        if sorted(tree.names) != sorted(reference.names):
            raise AlignmentError("replicate tree has different taxa")
        rep_splits = _splits_by_names(tree, reference)
        for split in ref_splits:
            if split in rep_splits:
                counts[split] += 1
    support = {s: c / replicates for s, c in counts.items()}
    return BootstrapResult(reference=reference, support=support,
                           num_replicates=replicates)


def _splits_by_names(tree: Tree, reference: Tree) -> frozenset:
    """Splits of ``tree`` re-indexed into the reference's tip numbering."""
    remap = {i: reference.names.index(name) for i, name in enumerate(tree.names)}
    out = set()
    for split in tree.splits():
        mapped = frozenset(remap[t] for t in split)
        if 0 in mapped:
            mapped = frozenset(range(reference.num_tips)) - mapped
        out.add(mapped)
    return frozenset(out)
