"""Model selection: information criteria and likelihood-ratio tests.

Choosing the substitution model is the step *before* any large analysis of
the kind the paper targets. This module provides the standard tools —
AIC/AICc/BIC over a candidate set, and the χ² likelihood-ratio test for
nested models — operating on fitted engines, so model comparison also runs
out-of-core unchanged.

Free-parameter counting follows the jModelTest convention: branch lengths
(2n−3) + substitution-model parameters (+5 GTR rates, +3 free frequencies,
+1 κ, ...) + rate-heterogeneity parameters (+1 for Γ's α, +1 for p_inv).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import chi2

from repro.errors import ModelError
from repro.phylo.likelihood.branch_opt import smooth_all_branches
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.likelihood.model_opt import optimize_alpha
from repro.phylo.models.dna import GTR, HKY85, JC69, K80


def count_free_parameters(engine: LikelihoodEngine,
                          include_branch_lengths: bool = True) -> int:
    """Free parameters of the engine's model configuration."""
    model = engine.model
    k = 0
    if include_branch_lengths:
        k += 2 * engine.tree.num_tips - 3
    name = model.name.upper()
    if name.startswith("JC"):
        k += 0
    elif name.startswith("K80"):
        k += 1
    elif name.startswith("HKY"):
        k += 1 + 3  # kappa + 3 free frequencies
    elif name.startswith("GTR"):
        k += 5 + 3  # 5 free exchangeabilities + 3 free frequencies
    else:
        # generic reversible model: count off-diagonal exchangeabilities - 1
        s = model.num_states
        k += s * (s - 1) // 2 - 1 + (s - 1)
    if engine.rates.alpha is not None:
        k += 1
    if engine.rates.p_invariant > 0:
        k += 1
    return k


@dataclass(frozen=True)
class FitResult:
    """One fitted candidate model."""

    name: str
    log_likelihood: float
    num_parameters: int
    sample_size: int

    @property
    def aic(self) -> float:
        return 2.0 * self.num_parameters - 2.0 * self.log_likelihood

    @property
    def aicc(self) -> float:
        k, n = self.num_parameters, self.sample_size
        if n - k - 1 <= 0:
            return math.inf
        return self.aic + 2.0 * k * (k + 1) / (n - k - 1)

    @property
    def bic(self) -> float:
        return self.num_parameters * math.log(self.sample_size) \
            - 2.0 * self.log_likelihood


def fit_model(tree, alignment, model, rates, *, optimize_shape: bool = True,
              branch_passes: int = 2, **engine_kwargs) -> FitResult:
    """Fit one candidate: branch lengths (+ α) optimized, scores returned."""
    engine = LikelihoodEngine(tree.copy(), alignment, model, rates,
                              **engine_kwargs)
    smooth_all_branches(engine, passes=branch_passes)
    if optimize_shape and engine.rates.alpha is not None:
        optimize_alpha(engine)
        smooth_all_branches(engine, passes=1)
    label = model.name + (f"+G{engine.rates.num_categories}"
                          if engine.rates.alpha is not None else "")
    return FitResult(
        name=label,
        log_likelihood=engine.loglikelihood(),
        num_parameters=count_free_parameters(engine),
        sample_size=alignment.num_sites,
    )


def candidate_models(frequencies) -> list:
    """The standard nested DNA ladder: JC69 → K80 → HKY85 → GTR."""
    return [
        JC69(),
        K80(2.0),
        HKY85(2.0, tuple(frequencies)),
        GTR((1.0, 2.0, 1.0, 1.0, 2.0, 1.0), tuple(frequencies)),
    ]


def select_model(tree, alignment, rates_factory, criterion: str = "aic",
                 models=None, **fit_kwargs) -> tuple[FitResult, list[FitResult]]:
    """Fit candidates and pick the best by ``aic``/``aicc``/``bic``.

    ``rates_factory()`` builds a fresh rate model per candidate (so each
    gets its own α optimization). Returns ``(winner, all_fits)``.
    """
    if criterion not in ("aic", "aicc", "bic"):
        raise ModelError(f"criterion must be aic/aicc/bic, got {criterion!r}")
    if models is None:
        models = candidate_models(alignment.empirical_frequencies())
    fits = [fit_model(tree, alignment, m, rates_factory(), **fit_kwargs)
            for m in models]
    winner = min(fits, key=lambda f: getattr(f, criterion))
    return winner, fits


@dataclass(frozen=True)
class LrtResult:
    """Likelihood-ratio test between nested models."""

    statistic: float
    degrees_of_freedom: int
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def likelihood_ratio_test(null: FitResult, alternative: FitResult) -> LrtResult:
    """χ² LRT: does the richer model fit significantly better?

    ``null`` must be nested in ``alternative`` (fewer parameters, lnL no
    higher up to round-off).
    """
    df = alternative.num_parameters - null.num_parameters
    if df <= 0:
        raise ModelError(
            f"alternative must have more parameters than the null "
            f"({alternative.num_parameters} vs {null.num_parameters})"
        )
    stat = 2.0 * (alternative.log_likelihood - null.log_likelihood)
    stat = max(stat, 0.0)  # round-off guard: nested lnL can dip epsilon below
    return LrtResult(statistic=stat, degrees_of_freedom=df,
                     p_value=float(chi2.sf(stat, df)))
