"""Newick tree serialization.

Parses rooted or unrooted Newick strings into the library's unrooted
:class:`~repro.phylo.tree.Tree` (a rooted binary Newick is unrooted by
dissolving the degree-2 root, the standard convention) and writes trees
back out as trifurcating unrooted Newick. Both directions are iterative,
so trees with many thousands of taxa (the paper uses 8192) do not hit
Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NewickError
from repro.phylo.tree import Tree


@dataclass
class _PNode:
    name: str | None = None
    length: float | None = None
    children: list["_PNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _tokenize(text: str):
    """Yield Newick tokens: punctuation chars and label/length strings."""
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in "(),:;":
            yield ch
            i += 1
        elif ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise NewickError("unterminated quoted label")
            yield text[i + 1 : j]
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in "(),:;" and not text[j].isspace():
                j += 1
            yield text[i:j]
            i = j


def _parse_tree(text: str) -> _PNode:
    tokens = list(_tokenize(text))
    if not tokens:
        raise NewickError("empty Newick string")
    root = _PNode()
    stack = [root]
    expect_length = False
    saw_semicolon = False
    for tok in tokens:
        if saw_semicolon:
            raise NewickError("trailing content after ';'")
        cur = stack[-1]
        if tok == "(":
            child = _PNode()
            cur.children.append(child)
            stack.append(child)
            expect_length = False
        elif tok == ",":
            if len(stack) < 2:
                raise NewickError("',' outside of any group")
            stack.pop()
            child = _PNode()
            stack[-1].children.append(child)
            stack.append(child)
            expect_length = False
        elif tok == ")":
            if len(stack) < 2:
                raise NewickError("unbalanced ')'")
            stack.pop()
            expect_length = False
        elif tok == ":":
            expect_length = True
        elif tok == ";":
            saw_semicolon = True
        else:
            if expect_length:
                try:
                    cur.length = float(tok)
                except ValueError:
                    raise NewickError(f"bad branch length {tok!r}") from None
                expect_length = False
            else:
                if cur.name is not None:
                    raise NewickError(f"node has two labels: {cur.name!r}, {tok!r}")
                cur.name = tok
    if len(stack) != 1:
        raise NewickError("unbalanced '(' in Newick string")
    if len(root.children) == 1 and root.name is None:
        # "(A,B,C);" parses with an extra anonymous wrapper — unwrap it.
        only = root.children[0]
        if only.length is None:
            root = only
    return root


def parse_newick(text: str, default_length: float = Tree.DEFAULT_BRANCH_LENGTH) -> Tree:
    """Parse a Newick string into an unrooted binary :class:`Tree`.

    Tips are numbered ``0..n-1`` in order of appearance; their labels become
    ``tree.names``. A bifurcating (rooted) top level is converted to the
    equivalent unrooted tree by fusing the two root edges. Missing branch
    lengths default to ``default_length``. Multifurcations (other than the
    conventional trifurcating root) are rejected.
    """
    root = _parse_tree(text)
    if root.is_leaf:
        raise NewickError("Newick string has no groups (single label)")

    # Collect leaves in appearance order.
    leaves: list[_PNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            leaves.append(node)
        else:
            stack.extend(reversed(node.children))
    n = len(leaves)
    if n < 2:
        raise NewickError(f"tree has {n} leaves; need at least 2")
    names = []
    for i, leaf in enumerate(leaves):
        if leaf.name is None:
            raise NewickError("unlabelled leaf")
        names.append(leaf.name)
    if len(set(names)) != len(names):
        raise NewickError("duplicate leaf labels")

    leaf_ids = {id(leaf): i for i, leaf in enumerate(leaves)}
    tree = Tree(n, names)

    if n == 2:
        lens = [c.length if c.length is not None else default_length for c in root.children]
        if len(root.children) != 2 or not all(c.is_leaf for c in root.children):
            raise NewickError("a 2-leaf tree must be (A,B);")
        tree._connect(0, 1, lens[0] + lens[1])
        return tree

    next_inner = [n]

    def node_id(p: _PNode) -> int:
        if p.is_leaf:
            return leaf_ids[id(p)]
        i = next_inner[0]
        next_inner[0] += 1
        if i >= tree.num_nodes:
            raise NewickError("tree is not binary (too many internal nodes)")
        return i

    def length_of(p: _PNode) -> float:
        return p.length if p.length is not None else default_length

    # Iteratively wire up children below each internal node.
    if len(root.children) == 2:
        a, b = root.children
        if a.is_leaf and b.is_leaf:
            raise NewickError("degenerate rooted 2-leaf tree with n>2")
        # Fuse the root: connect a and b directly with summed lengths.
        ia = _build(tree, a, node_id, length_of)
        ib = _build(tree, b, node_id, length_of)
        tree._connect(ia, ib, length_of(a) + length_of(b))
    elif len(root.children) == 3:
        r = node_id(root)
        for c in root.children:
            ic = _build(tree, c, node_id, length_of)
            tree._connect(r, ic, length_of(c))
    else:
        raise NewickError(
            f"top-level multifurcation of degree {len(root.children)} is not binary"
        )
    tree.validate()
    return tree


def _build(tree: Tree, sub: _PNode, node_id, length_of) -> int:
    """Wire the subtree below ``sub`` into ``tree``; return ``sub``'s node id."""
    my_id = node_id(sub)
    stack = [(sub, my_id)]
    while stack:
        p, pid = stack.pop()
        if p.is_leaf:
            continue
        if len(p.children) != 2:
            raise NewickError(
                f"internal multifurcation of degree {len(p.children) + 1} is not binary"
            )
        for c in p.children:
            cid = node_id(c)
            tree._connect(pid, cid, length_of(c))
            stack.append((c, cid))
    return my_id


def write_newick(tree: Tree, precision: int = 6) -> str:
    """Serialize an unrooted tree as trifurcating Newick rooted next to tip 0.

    The inner node adjacent to tip 0 becomes the printed trifurcation, so
    ``parse_newick(write_newick(t))`` reproduces the topology and branch
    lengths exactly (tip numbering may permute; names are authoritative).
    """
    if tree.num_tips == 2:
        ln = tree.branch_length(0, 1) / 2.0
        return (
            f"({tree.names[0]}:{ln:.{precision}g},{tree.names[1]}:{ln:.{precision}g});"
        )
    (anchor,) = tree.neighbors(0)

    def subtree_str(node: int, parent: int) -> str:
        # Iterative post-order string construction.
        parts: dict[int, list[str]] = {}
        stack = [(node, parent, False)]
        result: dict[tuple[int, int], str] = {}
        while stack:
            x, par, expanded = stack.pop()
            bl = tree.branch_length(x, par)
            if tree.is_tip(x):
                result[(x, par)] = f"{tree.names[x]}:{bl:.{precision}g}"
                continue
            kids = [y for y in tree.neighbors(x) if y != par]
            if expanded:
                inner = ",".join(result[(k, x)] for k in kids)
                result[(x, par)] = f"({inner}):{bl:.{precision}g}"
            else:
                stack.append((x, par, True))
                stack.extend((k, x, False) for k in kids)
        return result[(node, parent)]

    children = list(tree.neighbors(anchor))
    parts = [subtree_str(c, anchor) for c in children]
    return "(" + ",".join(parts) + ");"
