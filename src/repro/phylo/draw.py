"""ASCII rendering of trees for terminals and logs.

A dependency-free drawing of an unrooted tree as a rooted ladder diagram
(rooted next to tip 0, the same convention the Newick writer uses), with
optional branch-length proportional column widths and per-edge labels
(e.g. bootstrap support from :func:`repro.phylo.consensus.annotate_support`).
"""

from __future__ import annotations

from repro.errors import TreeError
from repro.phylo.tree import Tree


def ascii_tree(tree: Tree, *, max_width: int = 60,
               edge_labels: dict[tuple[int, int], str] | None = None,
               show_lengths: bool = False) -> str:
    """Render ``tree`` as multi-line ASCII art.

    Parameters
    ----------
    max_width:
        Horizontal budget for the branch columns; depths are scaled by
        patristic distance into this budget.
    edge_labels:
        Optional text per (sorted) edge — printed after the child name or
        at the internal junction.
    show_lengths:
        Append ``:length`` to every taxon label.
    """
    if tree.num_tips < 2:
        raise TreeError("cannot draw a tree with fewer than 2 tips")
    if tree.num_tips > 1000:
        raise TreeError("refusing to ASCII-draw more than 1000 taxa")
    if tree.num_tips == 2:
        ln = tree.branch_length(0, 1)
        return f"{tree.names[0]} ──({ln:.4g})── {tree.names[1]}"
    labels = edge_labels or {}
    (anchor,) = tree.neighbors(0)

    # depth = patristic distance from the anchor node
    max_depth = max(
        (tree.patristic_distance(anchor, t) for t in range(tree.num_tips)),
        default=1.0,
    ) or 1.0
    unit = max(1.0, max_width) / max_depth

    lines: list[str] = []

    def label_of(child: int, parent: int) -> str:
        key = (min(child, parent), max(child, parent))
        extra = f" [{labels[key]}]" if key in labels else ""
        if tree.is_tip(child):
            name = tree.names[child]
            if show_lengths:
                name += f":{tree.branch_length(child, parent):.4g}"
            return name + extra
        return extra.strip()

    def draw(node: int, parent: int, prefix: str, connector: str,
             depth: float) -> None:
        length = tree.branch_length(node, parent)
        cols = max(1, int(round(length * unit)))
        bar = "─" * cols
        if tree.is_tip(node):
            lines.append(f"{prefix}{connector}{bar} {label_of(node, parent)}")
            return
        kids = [x for x in tree.neighbors(node) if x != parent]
        tag = label_of(node, parent)
        lines.append(f"{prefix}{connector}{bar}┐{(' ' + tag) if tag else ''}")
        child_prefix = prefix + (" " if connector == "└" else
                                 "│" if connector == "├" else "") \
            + " " * (len(bar) + (1 if connector else 0))
        for i, kid in enumerate(kids):
            last = i == len(kids) - 1
            draw(kid, node, child_prefix, "└" if last else "├", depth + length)

    # the trifurcation at the anchor: tip 0 plus the anchor's other subtrees
    kids = list(tree.neighbors(anchor))
    lines.append(f"{tree.names[0]} (root)")
    for i, kid in enumerate(k for k in kids if k != 0):
        remaining = [k for k in kids if k != 0]
        last = kid == remaining[-1]
        draw(kid, anchor, "", "└" if last else "├", 0.0)
    return "\n".join(lines)


def print_tree(tree: Tree, **kwargs) -> None:  # pragma: no cover - I/O shim
    """Convenience wrapper: print :func:`ascii_tree`."""
    print(ascii_tree(tree, **kwargs))
