"""Unrooted binary phylogenetic trees.

The PLF is defined on unrooted binary trees (paper §3.1): the ``n`` extant
taxa sit at tips and the ``n - 2`` inner nodes are ancestors whose
*ancestral probability vectors* dominate memory. This module provides the
topology substrate: node numbering matches RAxML's convention —

* tips have ids ``0 .. n-1``;
* inner nodes have ids ``n .. 2n-3`` (so ancestral vector ``i`` of the
  out-of-core store corresponds to inner node ``n + i``).

Topological edits (SPR, NNI, tip insertion) are provided with undo records
so a tree search can cheaply back out rejected moves, and hop-distance
queries support the paper's *Topological* replacement strategy (§3.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import TreeError
from repro.utils.rng import as_rng


def _key(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u < v else (v, u)


@dataclass
class SprUndo:
    """Record to reverse an :meth:`Tree.spr_move` (apply via :meth:`Tree.undo_spr`)."""

    prune_node: int
    subtree_neighbor: int
    old_a: int
    old_b: int
    old_len_pa: float
    old_len_pb: float
    target_u: int
    target_v: int
    old_len_target: float


@dataclass
class NniUndo:
    """Record to reverse an :meth:`Tree.nni` move."""

    u: int
    v: int
    swapped_u: int
    swapped_v: int


class Tree:
    """Mutable unrooted binary tree over ``num_tips`` labelled tips.

    Internally an adjacency-list structure: ``neighbors[x]`` holds the 1
    (tip) or 3 (inner) adjacent node ids; branch lengths live in a dict
    keyed by the sorted node pair. All high-level edits keep the tree a
    valid unrooted binary tree or raise :class:`~repro.errors.TreeError`.
    """

    DEFAULT_BRANCH_LENGTH = 0.1

    def __init__(self, num_tips: int, names: list[str] | None = None) -> None:
        if num_tips < 2:
            raise TreeError(f"need at least 2 tips, got {num_tips}")
        self._n = num_tips
        self.names = list(names) if names is not None else [f"t{i}" for i in range(num_tips)]
        if len(self.names) != num_tips:
            raise TreeError(f"{len(self.names)} names for {num_tips} tips")
        total = 2 * num_tips - 2 if num_tips >= 3 else 2
        self._neighbors: list[list[int]] = [[] for _ in range(total)]
        self._lengths: dict[tuple[int, int], float] = {}

    # -- identity & counters ---------------------------------------------------

    @property
    def num_tips(self) -> int:
        return self._n

    @property
    def num_inner(self) -> int:
        return self._n - 2 if self._n >= 3 else 0

    @property
    def num_nodes(self) -> int:
        return self._n + self.num_inner

    @property
    def num_edges(self) -> int:
        return len(self._lengths)

    def is_tip(self, node: int) -> bool:
        return 0 <= node < self._n

    def degree(self, node: int) -> int:
        return len(self._neighbors[node])

    def neighbors(self, node: int) -> tuple[int, ...]:
        return tuple(self._neighbors[node])

    def nodes(self) -> range:
        return range(self.num_nodes)

    def inner_nodes(self) -> range:
        return range(self._n, self.num_nodes)

    def edges(self):
        """Iterate edges as sorted ``(u, v)`` pairs."""
        return iter(sorted(self._lengths.keys()))

    def internal_edges(self) -> list[tuple[int, int]]:
        """Edges whose both endpoints are inner nodes (NNI candidates)."""
        return [e for e in self.edges() if not self.is_tip(e[0]) and not self.is_tip(e[1])]

    # -- low-level wiring -------------------------------------------------------

    def _connect(self, u: int, v: int, length: float) -> None:
        if u == v:
            raise TreeError(f"self-edge at node {u}")
        if v in self._neighbors[u]:
            raise TreeError(f"edge ({u},{v}) already exists")
        self._neighbors[u].append(v)
        self._neighbors[v].append(u)
        self._lengths[_key(u, v)] = float(length)

    def _disconnect(self, u: int, v: int) -> float:
        try:
            self._neighbors[u].remove(v)
            self._neighbors[v].remove(u)
            return self._lengths.pop(_key(u, v))
        except (ValueError, KeyError):
            raise TreeError(f"edge ({u},{v}) does not exist") from None

    def has_edge(self, u: int, v: int) -> bool:
        return _key(u, v) in self._lengths

    def branch_length(self, u: int, v: int) -> float:
        try:
            return self._lengths[_key(u, v)]
        except KeyError:
            raise TreeError(f"edge ({u},{v}) does not exist") from None

    def set_branch_length(self, u: int, v: int, length: float) -> None:
        if length < 0:
            raise TreeError(f"negative branch length {length} on ({u},{v})")
        key = _key(u, v)
        if key not in self._lengths:
            raise TreeError(f"edge ({u},{v}) does not exist")
        self._lengths[key] = float(length)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def star3(cls, names: list[str] | None = None) -> "Tree":
        """The unique unrooted tree on 3 tips (one inner node)."""
        t = cls(3, names)
        inner = 3
        for tip in range(3):
            t._connect(tip, inner, cls.DEFAULT_BRANCH_LENGTH)
        return t

    @classmethod
    def random_topology(cls, num_tips: int, seed=None, names=None,
                        branch_length=None) -> "Tree":
        """Uniform random unrooted binary topology by sequential addition.

        Tip ``k`` (``k >= 3``) is attached to a uniformly chosen existing
        edge, which yields the uniform distribution over labelled unrooted
        binary topologies. Branch lengths default to
        :attr:`DEFAULT_BRANCH_LENGTH`.
        """
        rng = as_rng(seed)
        bl = cls.DEFAULT_BRANCH_LENGTH if branch_length is None else branch_length
        if num_tips < 3:
            t = cls(num_tips, names)
            t._connect(0, 1, bl)
            return t
        t = cls(num_tips, names)
        inner = num_tips
        for tip in range(3):
            t._connect(tip, inner, bl)
        for k in range(3, num_tips):
            all_edges = list(t._lengths.keys())
            u, v = all_edges[rng.integers(len(all_edges))]
            t.insert_tip(k, (u, v), branch_length=bl)
        return t

    def copy(self) -> "Tree":
        t = Tree(self._n, self.names)
        t._neighbors = [list(nb) for nb in self._neighbors]
        t._lengths = dict(self._lengths)
        return t

    # -- tip insertion (stepwise addition substrate) ------------------------------

    def insert_tip(self, tip: int, edge: tuple[int, int], branch_length=None,
                   inner: int | None = None) -> int:
        """Attach unattached ``tip`` into ``edge`` via a fresh inner node.

        The edge ``(u, v)`` is split at a new inner node ``w``; its length is
        divided evenly between the two halves. Returns ``w``. Used both by
        random-topology generation and stepwise-addition starting trees.
        """
        if self._neighbors[tip]:
            raise TreeError(f"tip {tip} is already attached")
        u, v = edge
        if inner is None:
            inner = next(
                (w for w in self.inner_nodes() if not self._neighbors[w]), None
            )
            if inner is None:
                raise TreeError("no free inner node available for insertion")
        old = self._disconnect(u, v)
        bl = self.DEFAULT_BRANCH_LENGTH if branch_length is None else branch_length
        self._connect(u, inner, old / 2.0)
        self._connect(inner, v, old / 2.0)
        self._connect(tip, inner, bl)
        return inner

    def remove_tip(self, tip: int) -> tuple[int, int]:
        """Detach ``tip`` and dissolve its inner attachment node.

        Returns the edge ``(a, b)`` restored by merging the two half-edges.
        The inner node becomes free for reuse by :meth:`insert_tip`.
        """
        if not self.is_tip(tip) or not self._neighbors[tip]:
            raise TreeError(f"node {tip} is not an attached tip")
        (inner,) = self._neighbors[tip]
        self._disconnect(tip, inner)
        rest = list(self._neighbors[inner])
        if len(rest) != 2:
            raise TreeError(f"attachment node {inner} does not have degree 3")
        a, b = rest
        la = self._disconnect(inner, a)
        lb = self._disconnect(inner, b)
        self._connect(a, b, la + lb)
        return _key(a, b)

    # -- traversal -----------------------------------------------------------------

    def postorder_edge(self, u: int, v: int) -> list[tuple[int, int, int]]:
        """Post-order over both sides of the virtual-root edge ``(u, v)``.

        Returns ``(node, left_child, right_child)`` triples for every inner
        node, children pointing *away* from the root edge — exactly the
        Felsenstein-pruning evaluation order (paper §3.1). Tips produce no
        triple. The two triples nearest the root are last.
        """
        if not self.has_edge(u, v):
            raise TreeError(f"({u},{v}) is not an edge")
        out: list[tuple[int, int, int]] = []
        out.extend(self.postorder_subtree(u, v))
        out.extend(self.postorder_subtree(v, u))
        return out

    def postorder_subtree(self, node: int, parent: int) -> list[tuple[int, int, int]]:
        """Post-order triples of the subtree rooted at ``node`` away from ``parent``."""
        out: list[tuple[int, int, int]] = []
        # Iterative DFS so 8192-taxon trees do not hit the recursion limit.
        stack: list[tuple[int, int, bool]] = [(node, parent, False)]
        while stack:
            x, par, expanded = stack.pop()
            if self.is_tip(x):
                continue
            kids = [y for y in self._neighbors[x] if y != par]
            if len(kids) != 2:
                raise TreeError(f"inner node {x} has {len(kids) + 1} neighbors")
            if expanded:
                out.append((x, kids[0], kids[1]))
            else:
                stack.append((x, par, True))
                stack.extend((k, x, False) for k in kids)
        return out

    def subtree_nodes(self, node: int, parent: int) -> list[int]:
        """All nodes in the subtree at ``node`` looking away from ``parent``."""
        out = []
        stack = [(node, parent)]
        while stack:
            x, par = stack.pop()
            out.append(x)
            stack.extend((y, x) for y in self._neighbors[x] if y != par)
        return out

    def subtree_tips(self, node: int, parent: int) -> list[int]:
        return [x for x in self.subtree_nodes(node, parent) if self.is_tip(x)]

    # -- distances (Topological replacement strategy, §3.3) --------------------------

    def hop_distances_from(self, source: int) -> np.ndarray:
        """Hop count (number of intermediate nodes + 1) from ``source`` to all nodes.

        The paper defines node distance as "the number of nodes along the
        unique path" between two nodes; BFS over the unweighted topology
        computes it for all targets in ``O(n)``.
        """
        dist = np.full(self.num_nodes, -1, dtype=np.int64)
        dist[source] = 0
        q = deque([source])
        while q:
            x = q.popleft()
            for y in self._neighbors[x]:
                if dist[y] < 0:
                    dist[y] = dist[x] + 1
                    q.append(y)
        return dist

    def path(self, u: int, v: int) -> list[int]:
        """The unique simple path from ``u`` to ``v`` (inclusive)."""
        prev = {u: u}
        q = deque([u])
        while q:
            x = q.popleft()
            if x == v:
                break
            for y in self._neighbors[x]:
                if y not in prev:
                    prev[y] = x
                    q.append(y)
        if v not in prev:
            raise TreeError(f"no path from {u} to {v} (disconnected tree?)")
        out = [v]
        while out[-1] != u:
            out.append(prev[out[-1]])
        return out[::-1]

    def patristic_distance(self, u: int, v: int) -> float:
        """Sum of branch lengths along the path from ``u`` to ``v``."""
        p = self.path(u, v)
        return float(sum(self.branch_length(a, b) for a, b in zip(p, p[1:])))

    # -- SPR -----------------------------------------------------------------------

    def spr_move(self, prune_node: int, subtree_neighbor: int,
                 target_edge: tuple[int, int]) -> SprUndo:
        """Subtree-Pruning-and-Regrafting.

        The subtree hanging off inner node ``prune_node`` in the direction of
        ``subtree_neighbor`` is pruned (dissolving ``prune_node`` from its two
        remaining neighbors ``a``/``b``, which become directly connected) and
        regrafted into ``target_edge``, re-using ``prune_node`` as the new
        attachment point. Returns an undo record for :meth:`undo_spr`.
        """
        p, s = prune_node, subtree_neighbor
        if self.is_tip(p):
            raise TreeError(f"prune point {p} must be an inner node")
        if s not in self._neighbors[p]:
            raise TreeError(f"{s} is not adjacent to prune point {p}")
        rest = [x for x in self._neighbors[p] if x != s]
        a, b = rest
        tu, tv = target_edge
        if not self.has_edge(tu, tv):
            raise TreeError(f"target ({tu},{tv}) is not an edge")
        if {tu, tv} & {p}:
            raise TreeError("target edge touches the prune point")
        forbidden = set(self.subtree_nodes(s, p))
        if tu in forbidden or tv in forbidden:
            raise TreeError("target edge lies inside the pruned subtree")
        if _key(tu, tv) == _key(a, b):
            raise TreeError("target edge equals the edge left by pruning")

        la = self._disconnect(p, a)
        lb = self._disconnect(p, b)
        self._connect(a, b, la + lb)
        lt = self._disconnect(tu, tv)
        self._connect(tu, p, lt / 2.0)
        self._connect(p, tv, lt / 2.0)
        return SprUndo(p, s, a, b, la, lb, tu, tv, lt)

    def undo_spr(self, undo: SprUndo) -> None:
        """Exactly reverse a previous :meth:`spr_move` (lengths restored)."""
        p = undo.prune_node
        self._disconnect(undo.target_u, p)
        self._disconnect(p, undo.target_v)
        self._connect(undo.target_u, undo.target_v, undo.old_len_target)
        self._disconnect(undo.old_a, undo.old_b)
        self._connect(p, undo.old_a, undo.old_len_pa)
        self._connect(p, undo.old_b, undo.old_len_pb)

    def spr_candidates(self, prune_node: int, subtree_neighbor: int,
                       radius: int | None = None) -> list[tuple[int, int]]:
        """Target edges reachable for regrafting the given pruned subtree.

        ``radius`` limits the rearrangement distance (in hops from the prune
        point in the *remaining* tree), mirroring RAxML's rearrangement
        radius. The edge closed by pruning and edges inside the subtree are
        excluded.
        """
        p, s = prune_node, subtree_neighbor
        rest = [x for x in self._neighbors[p] if x != s]
        if len(rest) != 2:
            raise TreeError(f"{p} is not a valid prune point")
        a, b = rest
        forbidden = set(self.subtree_nodes(s, p)) | {p}
        # BFS in the remaining tree starting from a and b (distance 1 each).
        dist = {a: 1, b: 1}
        q = deque([a, b])
        while q:
            x = q.popleft()
            if radius is not None and dist[x] >= radius:
                continue
            for y in self._neighbors[x]:
                if y in forbidden or y in dist:
                    continue
                dist[y] = dist[x] + 1
                q.append(y)
        reach = set(dist)
        out = []
        closed = _key(a, b)
        for u, v in self.edges():
            if u in forbidden or v in forbidden:
                continue
            if (u in reach or v in reach) and _key(u, v) != closed:
                out.append((u, v))
        return out

    # -- NNI -----------------------------------------------------------------------

    def nni(self, edge: tuple[int, int], variant: int = 0) -> NniUndo:
        """Nearest-Neighbor Interchange across internal ``edge``.

        ``variant`` 0 or 1 selects which of the two alternative topologies
        around the edge is produced. Returns an undo record (an NNI is its
        own inverse given the swapped pair).
        """
        u, v = edge
        if self.is_tip(u) or self.is_tip(v):
            raise TreeError(f"NNI edge ({u},{v}) must be internal")
        if not self.has_edge(u, v):
            raise TreeError(f"({u},{v}) is not an edge")
        if variant not in (0, 1):
            raise TreeError(f"NNI variant must be 0 or 1, got {variant}")
        us = [x for x in self._neighbors[u] if x != v]
        vs = [x for x in self._neighbors[v] if x != u]
        su = us[0]
        sv = vs[variant]
        lu = self._disconnect(u, su)
        lv = self._disconnect(v, sv)
        self._connect(u, sv, lv)
        self._connect(v, su, lu)
        return NniUndo(u, v, su, sv)

    def undo_nni(self, undo: NniUndo) -> None:
        u, v = undo.u, undo.v
        lu = self._disconnect(v, undo.swapped_u)
        lv = self._disconnect(u, undo.swapped_v)
        self._connect(u, undo.swapped_u, lu)
        self._connect(v, undo.swapped_v, lv)

    # -- validation & comparison ------------------------------------------------------

    def validate(self) -> None:
        """Check binary-tree invariants; raise :class:`TreeError` on violation."""
        if self._n < 3:
            if self.num_edges != 1:
                raise TreeError("2-tip tree must have exactly 1 edge")
            return
        for tip in range(self._n):
            if self.degree(tip) != 1:
                raise TreeError(f"tip {tip} has degree {self.degree(tip)}")
        attached_inner = [w for w in self.inner_nodes() if self._neighbors[w]]
        for w in attached_inner:
            if self.degree(w) != 3:
                raise TreeError(f"inner node {w} has degree {self.degree(w)}")
        expected_edges = self._n + len(attached_inner) - 1
        if self.num_edges != expected_edges:
            raise TreeError(
                f"{self.num_edges} edges but {expected_edges} expected for a tree"
            )
        seen = set(self.subtree_nodes(0, -1))
        if len(seen) != self._n + len(attached_inner):
            raise TreeError("tree is disconnected")
        for (u, v), ln in self._lengths.items():
            if not np.isfinite(ln) or ln < 0:
                raise TreeError(f"bad branch length {ln} on ({u},{v})")

    def splits(self) -> frozenset[frozenset[int]]:
        """Canonical set of non-trivial tip bipartitions (for topology equality).

        Each internal edge induces a split of the tip set; the side not
        containing tip 0 is used as the canonical representative.
        """
        out = set()
        for u, v in self.edges():
            if self.is_tip(u) or self.is_tip(v):
                continue
            side = frozenset(self.subtree_tips(u, v))
            if 0 in side:
                side = frozenset(range(self._n)) - side
            if 1 < len(side) < self._n - 1:
                out.add(side)
        return frozenset(out)

    def robinson_foulds(self, other: "Tree") -> int:
        """Robinson–Foulds distance (symmetric difference of split sets)."""
        if self._n != other._n:
            raise TreeError("trees have different tip counts")
        a, b = self.splits(), other.splits()
        return len(a ^ b)

    def total_branch_length(self) -> float:
        return float(sum(self._lengths.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree({self._n} tips, {self.num_edges} edges)"
