"""Alignment diagnostics: the sanity checks run before a large analysis.

Composition-homogeneity testing matters for the GTR-family models used
here (they assume stationary base composition across the tree); gap and
identity summaries guide partitioning/filtering decisions for the
genome-scale datasets whose memory footprint the paper addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2

from repro.phylo.msa import Alignment


@dataclass(frozen=True)
class AlignmentSummary:
    """Headline statistics of an alignment."""

    num_taxa: int
    num_sites: int
    num_patterns: int
    gap_fraction: float
    proportion_invariant: float
    mean_pairwise_identity: float

    def __str__(self) -> str:
        return (
            f"{self.num_taxa} taxa x {self.num_sites} sites "
            f"({self.num_patterns} patterns); gaps {self.gap_fraction:.1%}, "
            f"invariant {self.proportion_invariant:.1%}, "
            f"mean identity {self.mean_pairwise_identity:.1%}"
        )


def gap_fraction(alignment: Alignment) -> float:
    """Fraction of fully-unknown (gap) characters in the matrix."""
    return float((alignment.codes == alignment.alphabet.gap_code).mean())


def proportion_invariant_sites(alignment: Alignment) -> float:
    """Fraction of columns where all taxa could share one state.

    A column is (potentially) invariant when the bitwise AND over its codes
    is non-empty — ambiguities count as compatible.
    """
    col_and = alignment.codes[0].copy()
    for row in alignment.codes[1:]:
        col_and &= row
    return float((col_and != 0).mean())


def mean_pairwise_identity(alignment: Alignment) -> float:
    """Average fraction of compatible characters over all taxon pairs."""
    from repro.nj.distances import p_distances

    D = p_distances(alignment)
    n = alignment.num_taxa
    if n < 2:
        return 1.0
    iu = np.triu_indices(n, 1)
    return float(1.0 - D[iu].mean())


def per_taxon_composition(alignment: Alignment) -> np.ndarray:
    """``(taxa, states)`` matrix of per-taxon state frequencies.

    Ambiguity mass is split equally over compatible states; gaps skipped.
    """
    tip = alignment.alphabet.code_matrix()
    gap = alignment.alphabet.gap_code
    S = alignment.alphabet.num_states
    out = np.zeros((alignment.num_taxa, S))
    for i in range(alignment.num_taxa):
        row = alignment.codes[i]
        row = row[row != gap]
        if row.size == 0:
            out[i] = 1.0 / S
            continue
        contrib = tip[row.astype(np.int64)]
        contrib = contrib / contrib.sum(axis=1, keepdims=True)
        freq = contrib.sum(axis=0)
        out[i] = freq / freq.sum()
    return out


@dataclass(frozen=True)
class CompositionTest:
    """χ² test of base-composition homogeneity across taxa."""

    statistic: float
    degrees_of_freedom: int
    p_value: float

    @property
    def homogeneous(self) -> bool:
        """True when there is no evidence of composition heterogeneity."""
        return self.p_value >= 0.05


def composition_chi2_test(alignment: Alignment) -> CompositionTest:
    """The standard (PAUP*-style) χ² composition-homogeneity test.

    Observed per-taxon state counts are compared to expectations under the
    pooled composition; df = (taxa − 1)(states − 1). The test is known to
    be liberal (sites are not independent), but it is the conventional
    screen.
    """
    tip = alignment.alphabet.code_matrix()
    gap = alignment.alphabet.gap_code
    S = alignment.alphabet.num_states
    n = alignment.num_taxa
    counts = np.zeros((n, S))
    for i in range(n):
        row = alignment.codes[i]
        row = row[row != gap]
        if row.size:
            contrib = tip[row.astype(np.int64)]
            counts[i] = (contrib / contrib.sum(axis=1, keepdims=True)).sum(axis=0)
    row_tot = counts.sum(axis=1, keepdims=True)
    col_tot = counts.sum(axis=0, keepdims=True)
    grand = counts.sum()
    expected = row_tot @ col_tot / grand
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(expected > 0, (counts - expected) ** 2 / expected, 0.0)
    stat = float(terms.sum())
    df = (n - 1) * (S - 1)
    return CompositionTest(statistic=stat, degrees_of_freedom=df,
                           p_value=float(chi2.sf(stat, df)))


def summarize(alignment: Alignment) -> AlignmentSummary:
    """One-call overview used by examples and the CLI."""
    return AlignmentSummary(
        num_taxa=alignment.num_taxa,
        num_sites=alignment.num_sites,
        num_patterns=alignment.num_patterns,
        gap_fraction=gap_fraction(alignment),
        proportion_invariant=proportion_invariant_sites(alignment),
        mean_pairwise_identity=mean_pairwise_identity(alignment),
    )
