"""Consensus trees: summarizing tree collections (bootstrap/MCMC output).

Builds strict (100%) and majority-rule consensus topologies from a list of
trees over the same taxa, via split counting. The greedy construction adds
compatible splits in order of decreasing frequency, so thresholds below 0.5
yield the usual greedy ("extended majority rule") consensus.

Because :class:`~repro.phylo.tree.Tree` is strictly binary, consensus
multifurcations are resolved arbitrarily with **zero-length** branches: the
splits carrying consensus support are exactly those returned by
:func:`consensus_splits`; every other split in the returned tree sits on a
zero-length resolution branch.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import TreeError
from repro.phylo.tree import Tree


def _canonical_splits(tree: Tree, names: list[str]) -> set[frozenset]:
    """Non-trivial splits of ``tree``, expressed over the reference names."""
    if sorted(tree.names) != sorted(names):
        raise TreeError("trees must share one taxon set")
    remap = {i: names.index(name) for i, name in enumerate(tree.names)}
    out = set()
    for split in tree.splits():
        mapped = frozenset(remap[t] for t in split)
        if 0 in mapped:
            mapped = frozenset(range(len(names))) - mapped
        out.add(mapped)
    return out


def split_frequencies(trees: list[Tree]) -> dict[frozenset, float]:
    """Fraction of input trees containing each non-trivial split.

    Splits are canonicalized over the first tree's taxon names (the side
    not containing taxon 0).
    """
    if not trees:
        raise TreeError("need at least one tree")
    names = trees[0].names
    counts: Counter = Counter()
    for tree in trees:
        counts.update(_canonical_splits(tree, names))
    n = len(trees)
    return {split: c / n for split, c in counts.items()}


def _compatible(a: frozenset, b: frozenset, n: int) -> bool:
    """Splits are compatible iff some pair of their sides is disjoint."""
    full = frozenset(range(n))
    a2, b2 = full - a, full - b
    return (a.isdisjoint(b) or a.isdisjoint(b2)
            or a2.isdisjoint(b) or a2.isdisjoint(b2))


def consensus_splits(trees: list[Tree], threshold: float = 0.5) -> dict[frozenset, float]:
    """The splits the consensus keeps, with their frequencies.

    Splits at or above ``threshold`` are accepted greedily in order of
    decreasing frequency, skipping any split incompatible with one already
    accepted (only relevant for thresholds < 0.5; above 0.5 all qualifying
    splits are mutually compatible automatically).
    """
    if not 0.0 < threshold <= 1.0:
        raise TreeError(f"threshold must be in (0, 1], got {threshold}")
    n = trees[0].num_tips
    freqs = split_frequencies(trees)
    order = sorted(
        ((f, tuple(sorted(s)), s) for s, f in freqs.items()
         if f >= threshold - 1e-12),
        key=lambda x: (-x[0], x[1]),
    )
    accepted: dict[frozenset, float] = {}
    for f, _, split in order:
        if all(_compatible(split, other, n) for other in accepted):
            accepted[split] = f
    return accepted


def consensus_tree(trees: list[Tree], threshold: float = 0.5) -> Tree:
    """Binary tree realizing the consensus splits (see module docstring)."""
    names = trees[0].names
    accepted = consensus_splits(trees, threshold)
    return tree_from_splits(names, list(accepted))


def tree_from_splits(names: list[str], splits: list[frozenset]) -> Tree:
    """Build a binary tree containing all the given (compatible) splits.

    Multifurcations implied by missing splits are resolved arbitrarily with
    zero-length branches; the given splits get unit-length branches so they
    can be told apart downstream.
    """
    n = len(names)
    if n < 3:
        raise TreeError("need at least 3 taxa")
    tree = Tree(n, names)
    # Work on a rooted cluster hierarchy: every accepted split is a cluster
    # (the side without taxon 0); the root cluster is all taxa except 0...
    # Simplest rooted view: root above taxon 0. Clusters = splits (never
    # containing 0) + singletons for tips 1..n-1 + the root cluster.
    clusters = sorted({frozenset(s) for s in splits}, key=len)
    for c in clusters:
        if 0 in c:
            raise TreeError("splits must be canonical (side without taxon 0)")
        if not 1 < len(c) < n - 1:
            raise TreeError(f"trivial split {sorted(c)}")

    counter = [n]

    def fresh() -> int:
        i = counter[0]
        counter[0] += 1
        return i

    def connect(a: int, b: int, length: float) -> None:
        tree._connect(a, b, length)

    def build(members: frozenset, cluster_pool: list[frozenset]) -> int:
        """Return a node subtending exactly ``members``; wire its interior.

        Children on accepted-cluster branches get length 1, resolution
        branches length 0 — so consumers can tell supported splits apart.
        """
        if len(members) == 1:
            (tip,) = members
            return tip
        # maximal proper sub-clusters of `members`
        inside = [c for c in cluster_pool if c < members]
        direct: list[frozenset] = []
        for c in sorted(inside, key=len, reverse=True):
            if not any(c < d for d in direct):
                direct.append(c)
        covered: set = set().union(*direct) if direct else set()
        parts = direct + [frozenset([t]) for t in sorted(members - covered)]
        children = []
        for part in parts:
            node = build(part, [c for c in inside if c <= part])
            length = 1.0 if part in clusterset or len(part) == 1 else 0.0
            children.append((node, length))
        # Chain the children into a binary caterpillar headed at `members`.
        node, length = children[0]
        for child, child_len in children[1:-1]:
            join = fresh()
            connect(join, node, length)
            connect(join, child, child_len)
            node, length = join, 0.0
        head = fresh()
        connect(head, node, length)
        connect(head, children[-1][0], children[-1][1])
        return head

    clusterset = set(clusters)
    root_members = frozenset(range(1, n))
    head = build(root_members, clusters)
    connect(0, head, 1.0)
    tree.validate()
    return tree


def annotate_support(reference: Tree, trees: list[Tree]) -> dict[tuple[int, int], float]:
    """Per-internal-edge split frequency of ``reference`` among ``trees``.

    Returns ``{(u, v): support}`` for every internal edge — the standard
    way bootstrap or posterior support is attached to a point estimate.
    """
    freqs = split_frequencies([reference, *trees])
    m = len(trees)
    out = {}
    for u, v in reference.internal_edges():
        side = frozenset(reference.subtree_tips(u, v))
        if 0 in side:
            side = frozenset(range(reference.num_tips)) - side
        # remove the reference tree's own contribution
        f = freqs.get(side, 0.0) * (m + 1)
        out[(u, v)] = max(0.0, (f - 1.0)) / m if m else 0.0
    return out
