"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by the library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AlphabetError(ReproError):
    """An unknown character/state was encountered while encoding sequences."""


class AlignmentError(ReproError):
    """Malformed multiple sequence alignment (ragged rows, dup names, ...)."""


class NewickError(ReproError):
    """Newick string could not be parsed or serialized."""


class TreeError(ReproError):
    """Structural violation in a tree (bad degree, unknown node, bad edit)."""


class ModelError(ReproError):
    """Invalid substitution-model parameters (negative rates, bad freqs)."""


class LikelihoodError(ReproError):
    """The likelihood engine was used inconsistently (stale CLVs, bad root)."""


class OutOfCoreError(ReproError):
    """Out-of-core vector store misuse or internal inconsistency."""


class PinnedSlotError(OutOfCoreError):
    """No victim slot could be chosen because all candidates are pinned."""


class BorrowError(OutOfCoreError):
    """A slot view was used after its slot was recycled (use-after-evict).

    Only raised under the debug-mode slot-borrow sanitizer
    (``REPRO_SANITIZE=1`` or ``AncestralVectorStore(sanitize=True)``).
    """


class BackingStoreError(OutOfCoreError):
    """Failure in a backing store (short read/write, closed file, ...)."""


class SearchError(ReproError):
    """Tree-search driver misuse (empty move set, invalid radius, ...)."""


class SimulationError(ReproError):
    """Sequence/tree simulation was configured inconsistently."""
