"""Virtual-memory substrate: the "standard version using paging" baseline.

The paper's Figure 5 compares the out-of-core implementation against
standard RAxML relying on OS paging (2 GB RAM, 36 GB swap). We cannot
deconfigure this machine's RAM, so this package simulates the relevant OS
behaviour exactly as a cache model: a 4 KiB-page LRU page cache in front of
a disk latency model. The PLF compute runs for real; every byte range it
touches is charged to the page cache, whose fault count × per-fault cost
gives the simulated paging time (see DESIGN.md, substitution 3 — the paper
itself reports fault counts, 346,861 @ 2 GB → 902,489 @ 5 GB, which this
model reproduces in spirit).
"""

from repro.vm.disk import DiskModel
from repro.vm.pagecache import PageCache
from repro.vm.pagedarena import PagedArena

__all__ = ["DiskModel", "PageCache", "PagedArena"]
