"""Vector-store façade for the "standard version using paging" baseline.

Standard RAxML allocates *all* ancestral vectors in one big block and lets
the OS page it (paper §4.3). :class:`PagedStandardStore` reproduces that:
it satisfies the engine's store protocol with every vector always
"resident" (a plain full-size array), while charging each access to a
:class:`~repro.vm.pagedarena.PagedArena`, which simulates the page cache
and accumulates fault counts and paging time. Plugging this store into a
:class:`~repro.phylo.likelihood.engine.LikelihoodEngine` yields the exact
compute of the standard implementation plus the simulated cost of paging.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import IoStats
from repro.errors import OutOfCoreError
from repro.vm.disk import DiskModel
from repro.vm.pagedarena import PagedArena


class PagedStandardStore:
    """All vectors in one arena; accesses charged to a simulated pager.

    Parameters
    ----------
    num_items, item_shape, dtype:
        Vector geometry (same as :class:`AncestralVectorStore`).
    ram_bytes:
        Simulated physical memory available (the paper's 2 GB, scaled).
    disk:
        Swap-device model.
    """

    def __init__(self, num_items: int, item_shape: tuple[int, ...],
                 *, dtype=np.float64, ram_bytes: int,
                 disk: DiskModel | None = None,
                 page_bytes: int = 4096, readahead_pages: int = 8) -> None:
        if num_items < 1:
            raise OutOfCoreError(f"need at least one item, got {num_items}")
        self.num_items = int(num_items)
        self.item_shape = tuple(item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize
        self._data = np.zeros((self.num_items, *self.item_shape), dtype=self.dtype)
        self.arena = PagedArena(self.num_items, self.item_bytes, ram_bytes,
                                disk, page_bytes, readahead_pages)
        self.stats = IoStats()
        self.policy = None  # engine introspects this for topological wiring

    def get(self, item: int, pins: tuple = (), write_only: bool = False) -> np.ndarray:
        """Return the vector (always a RAM hit) and charge the pager."""
        if not 0 <= item < self.num_items:
            raise OutOfCoreError(f"item {item} out of range [0, {self.num_items})")
        self.stats.requests += 1
        self.stats.hits += 1
        self.arena.access_item(item, write=write_only)
        return self._data[item]

    @property
    def faults(self) -> int:
        return self.arena.faults

    @property
    def simulated_seconds(self) -> float:
        return self.arena.simulated_seconds

    def ram_bytes(self) -> int:
        return self._data.nbytes

    def flush(self) -> None:  # protocol completeness; nothing to do
        pass

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagedStandardStore(n={self.num_items}, w={self.item_bytes}B, "
            f"ram={self.arena.cache.capacity_pages * self.arena.cache.page_bytes}B)"
        )
