"""A simple analytic disk-latency model.

Transfers cost ``access_latency + bytes / bandwidth``. Random (page-fault
sized) accesses pay the access latency on every operation; large sequential
transfers amortize it — which is precisely the paper's §3.1 argument for
using whole ancestral vectors (≫ the 512 B–8 KiB hardware block) as the
swap unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class DiskModel:
    """Latency/bandwidth parameters of a secondary-storage device.

    Attributes
    ----------
    access_latency:
        Seconds per discrete I/O operation (seek + rotational delay for
        an HDD; controller overhead for an SSD).
    bandwidth:
        Sustained sequential transfer rate, bytes/second.
    name:
        Label for reports.
    """

    access_latency: float
    bandwidth: float
    name: str = "disk"

    def __post_init__(self) -> None:
        if self.access_latency < 0 or self.bandwidth <= 0:
            raise ReproError(
                f"bad disk model: latency={self.access_latency}, bandwidth={self.bandwidth}"
            )

    @classmethod
    def hdd(cls) -> "DiskModel":
        """A 2010-era 7200 rpm SATA drive (≈8 ms access, 100 MB/s) — the class
        of device in the paper's Intel i5 test system."""
        return cls(access_latency=8e-3, bandwidth=100e6, name="hdd")

    @classmethod
    def ssd(cls) -> "DiskModel":
        """A SATA SSD (≈0.1 ms access, 500 MB/s) for sensitivity analyses."""
        return cls(access_latency=1e-4, bandwidth=500e6, name="ssd")

    def transfer_time(self, nbytes: int, sequential: bool = True) -> float:
        """Seconds to move ``nbytes`` in one operation.

        ``sequential=False`` models scattered page-granularity traffic by
        charging a full access latency per 4 KiB page, the worst case an
        OS pager degenerates to under random fault patterns.
        """
        if nbytes < 0:
            raise ReproError(f"negative transfer size {nbytes}")
        if sequential:
            return self.access_latency + nbytes / self.bandwidth
        pages = max(1, (nbytes + 4095) // 4096)
        return pages * (self.access_latency + 4096 / self.bandwidth)

    def page_fault_time(self, page_bytes: int = 4096) -> float:
        """Cost of servicing one hard page fault (random single-page read)."""
        return self.access_latency + page_bytes / self.bandwidth
