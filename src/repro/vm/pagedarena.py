"""Item-granularity façade over the page-cache simulator.

:class:`PagedArena` models the memory behaviour of *standard* RAxML: all
``n`` ancestral vectors are one big contiguous allocation (``n · w`` bytes),
and the PLF touches whole vectors. Under memory pressure the OS pager —
not the application — decides what stays resident, at page granularity and
without any knowledge of the tree. The arena translates each vector access
into the byte-range touch of the underlying :class:`PageCache`, giving the
fault counts and the simulated paging time that the Figure-5 baseline needs.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.vm.disk import DiskModel
from repro.vm.pagecache import PageCache


class PagedArena:
    """A virtual ``(num_items × item_bytes)`` arena behind a simulated pager.

    Parameters
    ----------
    num_items:
        Number of ancestral vectors in the allocation.
    item_bytes:
        Width ``w`` of each vector.
    capacity_bytes:
        Simulated physical RAM available to the arena.
    disk:
        Swap-device model (defaults to the HDD of the paper's test box).
    page_bytes, readahead_pages:
        Forwarded to :class:`PageCache`.
    """

    def __init__(self, num_items: int, item_bytes: int, capacity_bytes: int,
                 disk: DiskModel | None = None, page_bytes: int = 4096,
                 readahead_pages: int = 8) -> None:
        if num_items < 1 or item_bytes < 1:
            raise ReproError("PagedArena needs positive item count and width")
        self.num_items = int(num_items)
        self.item_bytes = int(item_bytes)
        self.cache = PageCache(capacity_bytes, page_bytes, disk, readahead_pages)

    def access_item(self, item: int, write: bool = False) -> int:
        """Touch all pages of vector ``item``; return the number of faults."""
        if not 0 <= item < self.num_items:
            raise ReproError(f"item {item} out of range [0, {self.num_items})")
        return self.cache.touch_range(item * self.item_bytes, self.item_bytes, write)

    @property
    def total_bytes(self) -> int:
        return self.num_items * self.item_bytes

    @property
    def faults(self) -> int:
        return self.cache.faults

    @property
    def simulated_seconds(self) -> float:
        return self.cache.simulated_seconds

    def fits_in_ram(self) -> bool:
        """True when the whole arena is smaller than simulated RAM."""
        return self.total_bytes <= self.cache.capacity_pages * self.cache.page_bytes
