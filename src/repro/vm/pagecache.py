"""An OS-style page cache / swap simulator.

Models what happens when "standard" RAxML allocates more ancestral-vector
memory than physical RAM and the OS starts paging (paper §4.3): memory is
divided into fixed 4 KiB pages managed by LRU; touching a non-resident page
is a *fault*. Fault economics follow a real kernel:

* a first touch of an anonymous page is a **demand-zero (minor) fault** —
  counted, but free of disk time;
* a **major fault** (the page was previously swapped out) costs a swap-in
  read; runs of consecutive missing pages are clustered up to a read-ahead
  window;
* evicting a **dirty** page costs a swap-out write, clustered the same way
  (kernels batch swap-out); evicting a clean page whose swap copy is still
  valid is free.

This keeps the simulated "standard" implementation honest: below the RAM
limit it pays *no* I/O at all, and above it the paging cost is dominated by
page-granularity swap traffic without application knowledge — the regime
where the paper measures its >5× out-of-core win.
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.errors import ReproError
from repro.vm.disk import DiskModel

PAGE_BYTES_DEFAULT = 4096


class PageCache:
    """LRU page cache with fault counting and a disk-time account.

    Parameters
    ----------
    capacity_bytes:
        Physical memory available for pages (the paper's 2 GB, scaled).
    page_bytes:
        Page size; 4 KiB like Linux.
    disk:
        The :class:`DiskModel` backing the swap device.
    readahead_pages:
        Maximum pages the simulated kernel moves per I/O cluster, for both
        swap-in read-ahead and swap-out batching.
    """

    def __init__(self, capacity_bytes: int, page_bytes: int = PAGE_BYTES_DEFAULT,
                 disk: DiskModel | None = None, readahead_pages: int = 8) -> None:
        if capacity_bytes < page_bytes:
            raise ReproError(
                f"page cache capacity {capacity_bytes} smaller than one page"
            )
        if readahead_pages < 1:
            raise ReproError("readahead_pages must be >= 1")
        self.page_bytes = int(page_bytes)
        self.capacity_pages = int(capacity_bytes // page_bytes)
        self.disk = disk if disk is not None else DiskModel.hdd()
        self.readahead_pages = int(readahead_pages)
        self._resident: OrderedDict[int, bool] = OrderedDict()  # page -> dirty
        self._on_swap: set[int] = set()   # pages with a valid swap copy
        self.faults = 0                   # all faults (minor + major)
        self.major_faults = 0             # faults that read from swap
        self.evictions = 0
        self.writebacks = 0
        self.simulated_seconds = 0.0

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def touch_range(self, start_byte: int, nbytes: int, write: bool = False) -> int:
        """Touch ``[start_byte, start_byte + nbytes)``; return new faults.

        Missing pages are faulted in (major faults clustered through
        read-ahead, minor faults free), LRU pages are evicted to make room
        (dirty write-backs batched), and all touched pages become
        most-recently-used.
        """
        if nbytes <= 0:
            return 0
        first = start_byte // self.page_bytes
        last = (start_byte + nbytes - 1) // self.page_bytes
        new_faults = 0
        pending_writebacks = 0
        missing_run: list[int] = []
        for page in range(first, last + 1):
            if page in self._resident:
                # Pop before servicing the pending run so this page is never
                # an eviction candidate for its own range.
                dirty = self._resident.pop(page)
                pending_writebacks += self._service_run(missing_run, write)
                self._resident[page] = dirty or write
            else:
                new_faults += 1
                if missing_run and page != missing_run[-1] + 1:
                    pending_writebacks += self._service_run(missing_run, write)
                missing_run.append(page)
        pending_writebacks += self._service_run(missing_run, write)
        if pending_writebacks:
            self._charge_clustered(pending_writebacks)
        self.faults += new_faults
        return new_faults

    def _service_run(self, run: list[int], write: bool) -> int:
        """Fault in a run of missing pages; returns dirty evictions to charge."""
        if not run:
            return 0
        major = sum(1 for p in run if p in self._on_swap)
        if major:
            self.major_faults += major
            self._charge_clustered(major)
        writebacks = 0
        for page in run:
            writebacks += self._make_room()
            self._resident[page] = write
        run.clear()
        return writebacks

    def _charge_clustered(self, num_pages: int) -> None:
        """Disk time for ``num_pages`` moved in read-ahead-sized clusters."""
        clusters = math.ceil(num_pages / self.readahead_pages)
        self.simulated_seconds += (
            clusters * self.disk.access_latency
            + num_pages * self.page_bytes / self.disk.bandwidth
        )

    def _make_room(self) -> int:
        """Evict LRU pages until one slot is free; returns dirty evictions."""
        writebacks = 0
        while len(self._resident) >= self.capacity_pages:
            page, dirty = self._resident.popitem(last=False)
            self.evictions += 1
            if dirty:
                writebacks += 1
                self.writebacks += 1
                self._on_swap.add(page)
            # clean pages: swap copy (if any) stays valid; drop for free
        return writebacks

    def reset_counters(self) -> None:
        self.faults = 0
        self.major_faults = 0
        self.evictions = 0
        self.writebacks = 0
        self.simulated_seconds = 0.0
