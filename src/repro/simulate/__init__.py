"""Data simulation: random trees and sequence evolution.

The paper generates its large test datasets with INDELible ("we deployed
INDELible to simulate DNA data on a tree with 8192 species and varying
alignment lengths", §4.3). This package is the from-scratch substitute:
random tree generators (Yule and coalescent) and a sequence evolver that
walks any :class:`~repro.phylo.tree.Tree` under any
:class:`~repro.phylo.models.base.ReversibleModel` with Γ rate
heterogeneity, producing a ready-to-use :class:`~repro.phylo.msa.Alignment`.
"""

from repro.simulate.sequences import simulate_alignment
from repro.simulate.trees import coalescent_tree, yule_tree

__all__ = ["simulate_alignment", "yule_tree", "coalescent_tree"]
