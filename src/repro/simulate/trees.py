"""Random phylogeny generators with realistic branch lengths.

Both generators work backwards in time by merging lineages, which yields an
iterative O(n) construction suitable for the paper's 8192-taxon trees:

* :func:`coalescent_tree` — Kingman coalescent: merge times exponential
  with rate ``k(k-1)/2`` while ``k`` lineages remain.
* :func:`yule_tree` — pure-birth: inter-speciation times exponential with
  rate ``kλ``; merging uniformly random pairs backwards reproduces the
  Yule topology distribution.

Both produce ultrametric rooted shapes that are returned as the library's
unrooted :class:`~repro.phylo.tree.Tree` (the root is dissolved, as the
PLF requires an unrooted tree — paper §3.1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.phylo.tree import Tree
from repro.utils.rng import as_rng


def _merge_backwards(num_tips: int, rng: np.random.Generator, rate_of_k,
                     names: list[str] | None, scale: float) -> Tree:
    """Shared backward-merging construction for both generators.

    ``rate_of_k`` maps the current lineage count ``k`` to the exponential
    rate of the next merge event. The last three lineages are joined to a
    single inner node, which directly yields a valid unrooted binary tree.
    """
    if num_tips < 3:
        raise SimulationError(f"need at least 3 tips, got {num_tips}")
    tree = Tree(num_tips, names)
    # Each active lineage: (tree node id, height of that node).
    active: list[tuple[int, float]] = [(i, 0.0) for i in range(num_tips)]
    next_inner = num_tips
    t = 0.0
    while len(active) > 3:
        k = len(active)
        t += float(rng.exponential(1.0 / rate_of_k(k))) * scale
        i, j = sorted(rng.choice(k, size=2, replace=False))
        (ni, hi), (nj, hj) = active[i], active[j]
        u = next_inner
        next_inner += 1
        tree._connect(ni, u, max(t - hi, 1e-9))
        tree._connect(nj, u, max(t - hj, 1e-9))
        active = [active[x] for x in range(k) if x not in (i, j)] + [(u, t)]
    k = len(active)
    t += float(rng.exponential(1.0 / rate_of_k(k))) * scale
    u = next_inner
    for node, height in active:
        tree._connect(node, u, max(t - height, 1e-9))
    tree.validate()
    return tree


def coalescent_tree(num_tips: int, seed=None, names: list[str] | None = None,
                    scale: float = 0.1) -> Tree:
    """Kingman-coalescent random tree; ``scale`` converts time to
    expected substitutions per site."""
    rng = as_rng(seed)
    return _merge_backwards(num_tips, rng, lambda k: k * (k - 1) / 2.0, names, scale)


def yule_tree(num_tips: int, seed=None, names: list[str] | None = None,
              birth_rate: float = 1.0, scale: float = 0.1) -> Tree:
    """Yule (pure-birth) random tree with speciation rate ``birth_rate``."""
    if birth_rate <= 0:
        raise SimulationError(f"birth rate must be positive, got {birth_rate}")
    rng = as_rng(seed)
    return _merge_backwards(num_tips, rng, lambda k: k * birth_rate, names, scale)
