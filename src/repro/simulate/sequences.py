"""Sequence evolution along a tree — the INDELible substitute (paper §4.3).

Simulates aligned character data of a fixed width ``s`` (the paper's
datasets are simulated *without* indels at fixed alignment lengths, so an
explicit indel process is unnecessary — see DESIGN.md, substitution 4):

1. each site draws a rate category from the :class:`RateModel`;
2. root states are drawn from the model's stationary distribution;
3. a pre-order walk samples each child's states from the row of
   ``P(rate · branch_length)`` selected by the parent state.

All sampling is vectorized across sites via inverse-CDF lookup.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.phylo.alphabet import AMINO_ACID, DNA, Alphabet
from repro.phylo.models.base import ReversibleModel
from repro.phylo.models.rates import RateModel
from repro.phylo.msa import Alignment
from repro.phylo.tree import Tree
from repro.utils.rng import as_rng


def _sample_rows(prob_rows: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one category per row of a ``(sites, states)`` probability matrix."""
    cdf = np.cumsum(prob_rows, axis=1)
    cdf[:, -1] = 1.0  # guard against round-off shortfall
    u = rng.random((prob_rows.shape[0], 1))
    return (u > cdf).sum(axis=1).astype(np.int64)


def simulate_alignment(
    tree: Tree,
    model: ReversibleModel,
    num_sites: int,
    *,
    rates: RateModel | None = None,
    seed=None,
    alphabet: Alphabet | None = None,
) -> Alignment:
    """Evolve ``num_sites`` characters down ``tree`` under ``model`` (+Γ).

    Returns an :class:`Alignment` whose taxa are the tree's tip names, in
    tip order — ready to feed straight back into a
    :class:`~repro.phylo.likelihood.engine.LikelihoodEngine` for
    round-trip experiments.
    """
    if num_sites < 1:
        raise SimulationError(f"need at least one site, got {num_sites}")
    if tree.num_tips < 3:
        raise SimulationError("need at least 3 taxa to simulate an alignment")
    rng = as_rng(seed)
    rates = rates if rates is not None else RateModel.gamma(1.0, 4)
    if alphabet is None:
        if model.num_states == 4:
            alphabet = DNA
        elif model.num_states == 20:
            alphabet = AMINO_ACID
        else:
            raise SimulationError(
                f"no default alphabet for {model.num_states} states; pass one"
            )
    if alphabet.num_states != model.num_states:
        raise SimulationError(
            f"alphabet {alphabet.name} has {alphabet.num_states} states, "
            f"model has {model.num_states}"
        )

    site_cat = rng.choice(rates.num_categories, size=num_sites, p=rates.weights)
    root = tree.num_tips  # any inner node serves as the simulation root
    states: dict[int, np.ndarray] = {
        root: rng.choice(model.num_states, size=num_sites, p=model.frequencies)
    }
    tip_states: dict[int, np.ndarray] = {}

    # Pre-order walk from the root; children sampled conditional on parent.
    stack: list[tuple[int, int]] = [(nbr, root) for nbr in tree.neighbors(root)]
    pending_children = {root: tree.degree(root)}
    while stack:
        node, parent = stack.pop()
        t = tree.branch_length(node, parent)
        P = model.transition_matrices(t, rates.rates)  # (C, S, S)
        parent_states = states[parent]
        prob_rows = P[site_cat, parent_states, :]       # (sites, S)
        node_states = _sample_rows(prob_rows, rng)
        pending_children[parent] -= 1
        if pending_children[parent] == 0 and parent != root:
            del states[parent]  # free finished inner rows (large trees)
        if tree.is_tip(node):
            tip_states[node] = node_states
        else:
            states[node] = node_states
            pending_children[node] = tree.degree(node) - 1
            stack.extend((nbr, node) for nbr in tree.neighbors(node) if nbr != parent)

    codes = np.empty((tree.num_tips, num_sites), dtype=np.uint8 if
                     alphabet.num_states <= 8 else np.uint32)
    for tip in range(tree.num_tips):
        codes[tip] = np.left_shift(1, tip_states[tip]).astype(codes.dtype)
    return Alignment(tree.names, codes, alphabet)
