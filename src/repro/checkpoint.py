"""Checkpointing: persist and restore an analysis in progress.

Genome-scale analyses of the kind the paper targets run for days; RAxML
therefore writes periodic checkpoints. This module serializes everything
needed to resume a :class:`LikelihoodEngine` — tree (Newick), substitution
model, rate model, store geometry — as a single JSON document. Ancestral
vectors themselves are *not* saved: they are recomputed on demand (one full
traversal), which is both simpler and usually faster than re-reading them.

The restored engine produces bit-identical likelihoods to the original
(same data, same parameters, same arithmetic).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.errors import ReproError
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.models.base import ReversibleModel
from repro.phylo.models.dna import GTR
from repro.phylo.models.protein import EmpiricalProteinModel
from repro.phylo.models.rates import RateModel
from repro.phylo.msa import Alignment
from repro.phylo.newick import parse_newick, write_newick
from repro.phylo.tree import Tree

FORMAT_VERSION = 1


def _model_to_dict(model: ReversibleModel) -> dict:
    out = {
        "name": model.name,
        "num_states": model.num_states,
        "frequencies": model.frequencies.tolist(),
    }
    if isinstance(model, GTR):
        out["kind"] = "gtr"
        out["rates6"] = model.rates6.tolist()
    else:
        out["kind"] = "generic"
        R = model.rate_matrix / model.frequencies[None, :]
        R = (R + R.T) / 2.0
        np.fill_diagonal(R, 0.0)
        out["exchangeabilities"] = R.tolist()
    return out


def _model_from_dict(data: dict) -> ReversibleModel:
    freqs = np.asarray(data["frequencies"])
    if data["kind"] == "gtr":
        return GTR(tuple(data["rates6"]), tuple(freqs), name=data["name"])
    R = np.asarray(data["exchangeabilities"])
    if data["num_states"] == 20:
        return EmpiricalProteinModel(R, freqs, name=data["name"])
    return ReversibleModel(R, freqs, name=data["name"])


def _rates_to_dict(rates: RateModel) -> dict:
    return {
        "rates": rates.rates.tolist(),
        "weights": rates.weights.tolist(),
        "alpha": rates.alpha,
        "p_invariant": rates.p_invariant,
    }


def _rates_from_dict(data: dict) -> RateModel:
    return RateModel(np.asarray(data["rates"]), np.asarray(data["weights"]),
                     alpha=data["alpha"], p_invariant=data["p_invariant"])


def _alignment_fingerprint(alignment: Alignment) -> dict:
    codes = alignment.codes
    return {
        "num_taxa": alignment.num_taxa,
        "num_sites": alignment.num_sites,
        "alphabet": alignment.alphabet.name,
        "checksum": int(np.uint64(codes.astype(np.uint64).sum()
                                  + (codes.astype(np.uint64) ** 2).sum() % (1 << 61))),
    }


def _tree_to_dict(tree: Tree) -> dict:
    """Exact structural snapshot of a tree: node numbering, adjacency
    *order* and branch-length insertion order included.

    A Newick round-trip preserves the topology and (at precision 17) the
    branch lengths, but renumbers inner nodes and reorders adjacency
    lists — and the SPR driver enumerates candidate moves in adjacency
    order, so a resumed search would explore moves in a different order
    and converge to a slightly different optimum. Bit-identical resume
    needs the tree back exactly as it was, so the checkpoint carries the
    raw adjacency structure (JSON floats round-trip float64 exactly via
    ``repr``).
    """
    return {
        "names": list(tree.names),
        # node ids can be numpy integers (rng-built topologies): coerce
        # to plain ints for JSON
        "neighbors": [[int(nb) for nb in tree.neighbors(node)]
                      for node in tree.nodes()],
        "lengths": [[int(u), int(v), tree.branch_length(u, v)]
                    for (u, v) in tree._lengths],
    }


def _tree_from_dict(data: dict) -> Tree:
    tree = Tree(len(data["names"]), list(data["names"]))
    tree._neighbors = [list(nb) for nb in data["neighbors"]]
    tree._lengths = {(u, v): float(length)
                     for u, v, length in data["lengths"]}
    tree.validate()
    return tree


def _fsync_dir(path: str) -> None:
    """fsync the directory entry so the rename itself survives a crash."""
    dfd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    try:
        os.fsync(dfd)
    finally:
        os.close(dfd)


def save_checkpoint(engine: LikelihoodEngine, path: str | os.PathLike,
                    extra: dict | None = None, *,
                    sync_store: bool = True) -> None:
    """Write a resumable JSON checkpoint of ``engine`` to ``path``.

    ``extra`` may carry caller state (e.g. the search round counter); it is
    round-tripped verbatim under the ``"extra"`` key.

    Durability discipline (see DESIGN.md "Durability & failure model"):
    with ``sync_store=True`` the engine's vector store is flushed first —
    dirty residents written back, the write-behind queue drained, and the
    backing store fsynced — then the document is written to a temp file,
    fsynced, atomically renamed over ``path``, and the directory entry
    fsynced. A crash at ANY point leaves either the previous checkpoint or
    the new one, never a torn file, and never a checkpoint that is newer
    than the backing data it describes.
    """
    if sync_store and hasattr(engine.store, "flush"):
        engine.store.flush()
    doc = {
        "format_version": FORMAT_VERSION,
        "tree": write_newick(engine.tree, precision=17),
        "tree_exact": _tree_to_dict(engine.tree),
        "model": _model_to_dict(engine.model),
        "rates": _rates_to_dict(engine.rates),
        "dtype": engine.dtype.name,
        "store": {
            "num_slots": getattr(engine.store, "num_slots", None),
            "policy": getattr(getattr(engine.store, "policy", None), "name", None),
        },
        "alignment": _alignment_fingerprint(engine.alignment),
        "extra": extra or {},
    }
    tmp = f"{os.fspath(path)}.tmp"
    with open(tmp, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)  # atomic on POSIX: no torn checkpoints
    _fsync_dir(os.fspath(path))


def load_checkpoint(path: str | os.PathLike, alignment: Alignment,
                    **engine_kwargs) -> tuple[LikelihoodEngine, dict]:
    """Rebuild an engine from a checkpoint; returns ``(engine, extra)``.

    The alignment is the caller's responsibility (checkpoints store only a
    fingerprint, which is verified). ``engine_kwargs`` override the store
    configuration — resuming an in-core run out-of-core (or vice versa) is
    explicitly supported, since results are configuration-independent.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported checkpoint version {doc.get('format_version')!r}"
        )
    fp = _alignment_fingerprint(alignment)
    if fp != doc["alignment"]:
        raise ReproError(
            "alignment does not match the checkpoint "
            f"(expected {doc['alignment']}, got {fp})"
        )
    # Prefer the exact structural snapshot (bit-identical resume); fall
    # back to the Newick form for documents written before it existed.
    if "tree_exact" in doc:
        tree = _tree_from_dict(doc["tree_exact"])
    else:
        tree = parse_newick(doc["tree"])
    if sorted(tree.names) != sorted(alignment.names):
        raise ReproError("checkpoint tree taxa do not match the alignment")
    model = _model_from_dict(doc["model"])
    rates = _rates_from_dict(doc["rates"])
    engine_kwargs.setdefault("dtype", np.dtype(doc["dtype"]))
    if "store" not in engine_kwargs and engine_kwargs.get("num_slots") is None \
            and engine_kwargs.get("fraction") is None:
        saved_slots = doc["store"].get("num_slots")
        saved_policy = doc["store"].get("policy")
        if saved_slots is not None:
            engine_kwargs["num_slots"] = saved_slots
        if saved_policy is not None and saved_policy in (
            "random", "lru", "lfu", "fifo", "clock", "topological"
        ):
            engine_kwargs.setdefault("policy", saved_policy)
    engine = LikelihoodEngine(tree, alignment, model, rates, **engine_kwargs)
    return engine, doc.get("extra", {})
