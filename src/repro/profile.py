"""``python -m repro.profile`` — profile an out-of-core likelihood workload.

Runs one of the paper's evaluation workloads with the full observability
stack attached (:mod:`repro.obs`: event tracer, latency histograms,
per-phase timers) and writes a ``BENCH_profile.json`` summary:

* **full** — the §4.3 benchmark mode: N full tree traversals, the
  worst case for vector locality;
* **search** — one lazy-SPR search round, the workload whose locality the
  replacement strategies exploit (§4.2).

The store configuration (slot fraction, policy, write-behind, prefetch,
backing store) is fully controllable, so the same command profiles every
point of the paper's design space. Tracing is passive by construction:
``--check-parity`` re-runs the identical workload untraced and fails if
any demand or eviction counter differs.

Examples
--------
::

    python -m repro.profile --workload full --fraction 0.25 --traversals 3
    python -m repro.profile --workload search --policy lru --fraction 0.5 \\
        --backing file --events events.jsonl --timeline timeline.json
    python -m repro.profile --workload search --metrics-port 9107 \\
        --spans-out trace.json
    python -m repro.profile --validate BENCH_profile.json

Every profile now embeds a full metrics-registry snapshot (the same
counters a live ``/metrics`` scrape exposes); ``--metrics-port`` serves
the registry over HTTP for the duration of the run, and ``--spans-out``
writes a Chrome trace-event timeline loadable in Perfetto. With
``--backing sharded`` the timeline gains one process track per shard
worker (spans shipped back over the wire protocol's TELEMETRY op), and
the mandatory ``attribution`` block decomposes per-op latency into
pipeline stages — window wait, wire, worker disk, reply — from the
merged cross-process histograms; ``--attribution`` prints the stage
table to stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.cli import _parse_model, _read_alignment
from repro.core.stats import DEMAND_COUNTERS, EVICTION_COUNTERS
from repro.errors import ReproError
from repro.obs import (
    PROFILE_SCHEMA,
    MetricsServer,
    Observer,
    records_to_jsonl,
    slot_timeline,
    validate_profile,
)
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.newick import parse_newick

#: Counters whose traced/untraced equality ``--check-parity`` asserts:
#: everything describing the demand trace and the eviction stream.
PARITY_COUNTERS = tuple(sorted(DEMAND_COUNTERS | EVICTION_COUNTERS))


def _dataset(args):
    """(alignment, tree) from files or the built-in simulator."""
    if args.msa:
        alignment = _read_alignment(args.msa)
        if args.tree:
            tree = parse_newick(Path(args.tree).read_text())
        else:
            from repro.phylo.parsimony import stepwise_addition_tree
            tree = stepwise_addition_tree(alignment, seed=args.seed)
        return alignment, tree
    from repro.phylo.models import GTR
    from repro.simulate import simulate_alignment, yule_tree
    tree = yule_tree(args.simulate_taxa, seed=args.seed, scale=0.1)
    alignment = simulate_alignment(tree, GTR(), args.simulate_length,
                                   seed=args.seed + 1)
    return alignment, tree


def _make_backing(kind: str, layout, dtype, workdir: str, shards: int = 4):
    """Backing store sized for the layout's item space (blocks, not nodes)."""
    if kind == "memory":
        return None  # the store builds its own MemoryBackingStore
    if kind == "file":
        from repro.core.backing import FileBackingStore
        return FileBackingStore.from_layout(
            os.path.join(workdir, "vectors.bin"), layout, dtype)
    if kind == "simulated":
        from repro.core.backing import SimulatedDiskBackingStore
        return SimulatedDiskBackingStore.from_layout(layout, dtype)
    if kind == "compressed":
        from repro.core.compress import CompressedFileBackingStore
        return CompressedFileBackingStore.from_layout(
            os.path.join(workdir, "vectors.czb"), layout, dtype)
    if kind == "sharded":
        from repro.core.sharded import ShardedBackingStore
        return ShardedBackingStore.from_layout(
            os.path.join(workdir, "shards"), layout, dtype,
            num_shards=shards)
    raise ReproError(f"unknown backing store kind {kind!r}")


def _build_engine(alignment, tree, args, workdir: str) -> LikelihoodEngine:
    from repro.core.layout import make_layout

    model, rates = _parse_model(args.model, alignment)
    dtype = np.dtype(args.dtype)
    probe = LikelihoodEngine(tree.copy(), alignment, model, rates, dtype=dtype)
    layout = make_layout(
        args.layout, probe.num_inner, probe.clv_shape,
        block_sites=args.block_sites if args.layout == "block" else None)
    backing = _make_backing(args.backing, layout, probe.dtype, workdir,
                            shards=getattr(args, "shards", 4))
    if backing is not None and getattr(args, "backing_retries", 0) > 0:
        from repro.core.faults import RetryingBackingStore
        backing = RetryingBackingStore(backing, retries=args.backing_retries)
    del probe
    policy_kwargs = {"seed": args.seed} if args.policy == "random" else None
    return LikelihoodEngine(
        tree.copy(), alignment, model, rates,
        dtype=dtype,
        layout=layout,
        fraction=None if args.num_slots is not None else args.fraction,
        num_slots=args.num_slots,
        policy=args.policy,
        policy_kwargs=policy_kwargs,
        backing=backing,
        writeback_depth=args.writeback_depth,
        io_threads=args.io_threads,
        prefetch_depth=args.prefetch_depth,
        batch=args.batch,
        kernel_threads=args.kernel_threads,
    )


def _run_workload(engine: LikelihoodEngine, args) -> float:
    if args.workload == "full":
        return engine.full_traversals(args.traversals)
    from repro.phylo.search import lazy_spr_round
    return lazy_spr_round(engine, radius=args.radius).lnl


def _counters_block(engine: LikelihoodEngine) -> dict:
    stats = engine.stats
    row = stats.as_row()
    row["physical_reads"] = stats.physical_reads
    row["physical_writes"] = stats.physical_writes
    row["writeback_enabled"] = stats.writeback_enabled
    return row


def _config_block(args, engine: LikelihoodEngine) -> dict:
    return {
        "fraction": engine.store.num_slots / engine.store.num_items,
        "num_slots": engine.store.num_slots,
        "num_items": engine.store.num_items,
        "layout": engine.layout.describe(),
        "dtype": str(np.dtype(args.dtype)),
        "policy": args.policy,
        "backing": args.backing,
        "shards": args.shards if args.backing == "sharded" else None,
        "writeback_depth": args.writeback_depth,
        "io_threads": args.io_threads,
        "prefetch_depth": args.prefetch_depth,
        "batch": engine.batch_members,
        "kernel_threads": engine.kernel_threads,
        "model": args.model,
        "seed": args.seed,
        "dataset": args.msa or
            f"simulated({args.simulate_taxa}x{args.simulate_length})",
    }


def _find_sharded(backing):
    """Unwrap fault/retry wrappers down to a ShardedBackingStore, if any."""
    seen = 0
    while backing is not None and seen < 8:
        if getattr(backing, "num_shards", 0) and hasattr(backing,
                                                         "collect_telemetry"):
            return backing
        backing = getattr(backing, "inner", None)
        seen += 1
    return None


def _hist_summary(hist) -> dict:
    """count/sum/percentile summary of one LogHistogram (attribution shape)."""
    count = hist.count
    return {
        "count": count,
        "sum": hist.total_seconds,
        "p50": hist.percentile(50.0) if count else 0.0,
        "p95": hist.percentile(95.0) if count else 0.0,
        "p99": hist.percentile(99.0) if count else 0.0,
    }


_ZERO_SUMMARY = {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


def _attribution_block(args, obs: Observer, sharded) -> dict:
    """Per-op latency decomposition (the ``repro-profile/3`` block).

    The totals are the parent-side request latencies (``obs.probe``);
    the stages come from the merged worker histograms shipped back over
    OP_TELEMETRY. Stage sums need not add up to the total — the stages
    time distinct sub-intervals of a request (wire transit, worker disk
    time, reply transit) and queueing between them is real.
    """
    totals = {"read": obs.probe.read_hist, "write": obs.probe.write_hist}
    ops: dict = {}
    if sharded is None:
        for op, hist in totals.items():
            ops[op] = _hist_summary(hist)
            # Single-process backing: the whole request *is* the disk op.
            ops[op]["stages"] = {"disk": _hist_summary(hist)}
        return {"backing": args.backing, "window_wait": dict(_ZERO_SUMMARY),
                "ops": ops, "per_shard": {}}
    stages = {
        "read": {"wire": sharded.wire_read_hist,
                 "disk": sharded.worker_probe.read_hist,
                 "reply": sharded.reply_read_hist},
        "write": {"wire": sharded.wire_write_hist,
                  "disk": sharded.worker_probe.write_hist,
                  "reply": sharded.reply_write_hist},
    }
    for op, hist in totals.items():
        ops[op] = _hist_summary(hist)
        ops[op]["stages"] = {name: _hist_summary(h)
                             for name, h in stages[op].items()}
    return {
        "backing": args.backing,
        "window_wait": _hist_summary(sharded.window_hist),
        "ops": ops,
        "per_shard": sharded.per_shard_counts(),
    }


def _attribution_crosscheck(sharded, counters: dict) -> list[str]:
    """Worker-side op counts must equal the parent's IoStats totals.

    Every successful physical read/write is counted exactly once on each
    side of the wire (workers count completions, IoStats counts issued
    ops that returned); any drift means lost or double-counted telemetry.
    """
    problems = []
    for op, key in (("read", "physical_reads"), ("write", "physical_writes")):
        hist = getattr(sharded.worker_probe, f"{op}_hist")
        if hist.count != counters[key]:
            problems.append(
                f"worker {op} count {hist.count} != IoStats "
                f"{key} {counters[key]}")
    return problems


def _print_attribution(attribution: dict) -> None:
    def fmt(s: dict) -> str:
        return (f"count={s['count']:>6}  sum={s['sum']:.4f}s  "
                f"p50={s['p50'] * 1e6:9.1f}us  p95={s['p95'] * 1e6:9.1f}us  "
                f"p99={s['p99'] * 1e6:9.1f}us")

    print(f"latency attribution ({attribution['backing']} backing)")
    print(f"  window_wait     : {fmt(attribution['window_wait'])}")
    for op in ("read", "write"):
        entry = attribution["ops"][op]
        print(f"  {op:<5} total     : {fmt(entry)}")
        for stage, summary in entry["stages"].items():
            print(f"    stage {stage:<5}   : {fmt(summary)}")
    per_shard = attribution["per_shard"]
    if per_shard:
        for shard in sorted(per_shard, key=int):
            row = per_shard[shard]
            print(f"  shard {shard}: {row['reads']} reads, "
                  f"{row['writes']} writes, {row['restarts']} restarts")


def _parity_check(alignment, tree, args, workdir: str,
                  traced: dict) -> list[str]:
    """Re-run untraced; return mismatch descriptions (empty = parity holds)."""
    engine = _build_engine(alignment, tree, args, workdir)
    try:
        _run_workload(engine, args)
        engine.store.drain()
        bare = _counters_block(engine)
    finally:
        engine.close()
    problems = []
    for key in PARITY_COUNTERS:
        if traced[key] != bare[key]:
            problems.append(
                f"counter {key!r}: traced={traced[key]} untraced={bare[key]}")
    return problems


def run_profile(args) -> int:
    if args.block_sites is not None and args.layout != "block":
        print("error: --block-sites only applies to --layout block",
              file=sys.stderr)
        return 2
    if args.check_parity and args.prefetch_depth:
        # A prefetch thread's policy touches depend on scheduling, so two
        # runs can evict different victims regardless of tracing; the
        # parity assertion is only meaningful for deterministic configs.
        print("error: --check-parity requires --prefetch-depth 0 "
              "(prefetch victim choice is timing-dependent)", file=sys.stderr)
        return 2
    alignment, tree = _dataset(args)
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as workdir:
        obs = Observer(capacity=args.trace_capacity, metrics=True,
                       spans=bool(args.spans_out))
        engine = _build_engine(alignment, tree, args, workdir)
        obs.attach(engine)
        server = None
        try:
            if args.metrics_port is not None:
                server = MetricsServer(obs.metrics,
                                       port=args.metrics_port).start()
                print(f"metrics endpoint: {server.url}")
            t0 = time.perf_counter()
            lnl = _run_workload(engine, args)
            engine.store.drain()
            wall = time.perf_counter() - t0
            sharded = _find_sharded(engine.store.backing)
            if sharded is not None:
                # Pull the final worker deltas while the processes are
                # still up, so the snapshot below already includes them.
                sharded.collect_telemetry()
            counters = _counters_block(engine)
            metrics_snapshot = obs.metrics.snapshot()
        finally:
            if server is not None:
                server.close()
            engine.close()

        attribution = _attribution_block(args, obs, sharded)
        if sharded is not None:
            mismatches = _attribution_crosscheck(sharded, counters)
            if mismatches:
                for m in mismatches:
                    print(f"attribution cross-check FAILED: {m}",
                          file=sys.stderr)
                return 1

        doc = {
            "schema": PROFILE_SCHEMA,
            "workload": args.workload,
            "config": _config_block(args, engine),
            "log_likelihood": lnl,
            "wall_seconds": wall,
            "phases": obs.phase_totals(),
            "counters": counters,
            "histograms": obs.histograms(),
            "events": obs.event_summary(),
            "metrics": metrics_snapshot,
            "attribution": attribution,
        }
        problems = validate_profile(doc)
        if problems:  # a bug in this module, not in the caller's input
            for p in problems:
                print(f"internal schema violation: {p}", file=sys.stderr)
            return 1

        out = Path(args.out)
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"profile written : {out}")
        print(f"workload        : {args.workload} (lnL {lnl:.4f}, "
              f"{wall:.3f}s wall)")
        for phase, entry in doc["phases"].items():
            print(f"phase {phase:>10}: {entry['seconds']:.4f}s "
                  f"over {int(entry['calls'])} laps")
        ev = doc["events"]
        print(f"events          : {ev['emitted']} emitted, "
              f"{ev['captured']} captured, {ev['dropped']} dropped")
        if sharded is not None:
            print(f"telemetry       : worker histograms match IoStats "
                  f"({counters['physical_reads']} reads, "
                  f"{counters['physical_writes']} writes)")
        if args.attribution:
            _print_attribution(attribution)

        if args.spans_out:
            worker_spans = 0
            if sharded is not None:
                worker_spans = sharded.export_spans_into(obs.spans)
            obs.spans.write_chrome_trace(args.spans_out)
            extra = (f", {worker_spans} worker spans on "
                     f"{sharded.num_shards} tracks" if sharded is not None
                     else "")
            print(f"span timeline   : {args.spans_out} "
                  f"({len(obs.spans)} spans, {obs.spans.dropped} dropped"
                  f"{extra}; load in Perfetto / chrome://tracing)")
        if args.events:
            n = records_to_jsonl(obs.tracer.records(), args.events)
            print(f"event dump      : {args.events} ({n} records)")
        if args.timeline:
            intervals = slot_timeline(obs.tracer.records())
            Path(args.timeline).write_text(
                json.dumps(intervals, indent=2) + "\n")
            print(f"slot timeline   : {args.timeline} "
                  f"({len(intervals)} intervals)")

        if args.check_parity:
            mismatches = _parity_check(alignment, tree, args, workdir,
                                       counters)
            if mismatches:
                for m in mismatches:
                    print(f"parity FAILED: {m}", file=sys.stderr)
                return 1
            print(f"parity          : OK ({len(PARITY_COUNTERS)} demand/"
                  "eviction counters bit-identical untraced)")
    return 0


def run_validate(path: str) -> int:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read profile {path}: {exc}", file=sys.stderr)
        return 2
    problems = validate_profile(doc)
    if problems:
        for p in problems:
            print(f"{path}: {p}")
        print(f"{len(problems)} schema problem(s)", file=sys.stderr)
        return 1
    print(f"{path}: valid {doc['schema']} profile")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.profile",
        description="Profile an out-of-core PLF workload with the repro.obs "
                    "observability stack and emit BENCH_profile.json",
    )
    parser.add_argument("--validate", metavar="PATH",
                        help="validate an existing profile document and exit")
    parser.add_argument("-s", "--msa", help="alignment file (FASTA/PHYLIP); "
                        "omit to use the built-in simulator")
    parser.add_argument("-t", "--tree", help="Newick tree file")
    parser.add_argument("--simulate-taxa", type=int, default=24,
                        help="taxa for the simulated dataset (default: 24)")
    parser.add_argument("--simulate-length", type=int, default=300,
                        help="sites for the simulated dataset (default: 300)")
    parser.add_argument("-m", "--model", default="GTR+G")
    parser.add_argument("--workload", choices=["full", "search"],
                        default="full",
                        help="full: -f z traversals (§4.3); search: one lazy "
                             "SPR round (default: full)")
    parser.add_argument("-N", "--traversals", type=int, default=3,
                        help="full traversals for --workload full")
    parser.add_argument("--radius", type=int, default=3,
                        help="SPR radius for --workload search")
    parser.add_argument("--fraction", type=float, default=0.25,
                        help="fraction f of vectors held in RAM (paper §3.2)")
    parser.add_argument("--num-slots", type=int, default=None,
                        help="absolute RAM slot count (overrides --fraction; "
                             "with --layout block this can be smaller than "
                             "one whole vector's worth of blocks)")
    parser.add_argument("--layout", default="whole",
                        choices=["whole", "block"],
                        help="storage layout: whole vectors (the paper's "
                             "unit of paging) or site blocks")
    parser.add_argument("--block-sites", type=int, default=None,
                        help="sites per block for --layout block "
                             "(default: 64)")
    parser.add_argument("--dtype", default="float64",
                        choices=["float64", "float32"],
                        help="floating-point precision of the ancestral "
                             "vectors (default: float64)")
    parser.add_argument("--policy", default="lru",
                        choices=["random", "lru", "lfu", "fifo", "clock",
                                 "topological"])
    parser.add_argument("--backing", default="memory",
                        choices=["memory", "file", "simulated", "compressed",
                                 "sharded"],
                        help="backing store for evicted vectors (sharded: "
                             "items hash-routed across worker processes)")
    parser.add_argument("--shards", type=int, default=4,
                        help="worker processes for --backing sharded "
                             "(default: 4)")
    parser.add_argument("--backing-retries", type=int, default=0,
                        help="wrap the backing in a RetryingBackingStore "
                             "with this retry budget (0 = no wrapper)")
    parser.add_argument("--writeback-depth", type=int, default=0)
    parser.add_argument("--io-threads", type=int, default=1)
    parser.add_argument("--prefetch-depth", type=int, default=0)
    parser.add_argument("--batch", type=int, default=0,
                        help="batched kernel schedule: 0 = off (per-block "
                             "loop), -1 = auto group cap (num_slots // 3, "
                             "never spills under LRU), N > 0 = explicit "
                             "members-per-group cap (default: 0)")
    parser.add_argument("--kernel-threads", type=int, default=1,
                        help="with --batch, overlap one group's fused "
                             "kernel with the next group's gathers on a "
                             "worker thread (2 = on; default: 1 = off)")
    parser.add_argument("--trace-capacity", type=int, default=1 << 16,
                        help="event ring-buffer capacity (oldest records "
                             "drop beyond this; default: 65536)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("-o", "--out", default="BENCH_profile.json",
                        help="profile output path (default: "
                             "BENCH_profile.json)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve the live metrics registry as Prometheus "
                             "text on http://127.0.0.1:PORT/metrics for the "
                             "duration of the run (0 = ephemeral port)")
    parser.add_argument("--spans-out", metavar="PATH",
                        help="also record span timelines and write them as "
                             "Chrome trace-event JSON (Perfetto-loadable)")
    parser.add_argument("--events", metavar="PATH",
                        help="also dump the raw event stream as JSONL")
    parser.add_argument("--timeline", metavar="PATH",
                        help="also write the slot-occupancy timeline (JSON)")
    parser.add_argument("--attribution", action="store_true",
                        help="print the per-op latency attribution table "
                             "(stage decomposition from the merged "
                             "cross-process histograms)")
    parser.add_argument("--check-parity", action="store_true",
                        help="re-run untraced and fail unless all demand/"
                             "eviction counters are bit-identical")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.validate:
        return run_validate(args.validate)
    try:
        return run_profile(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
