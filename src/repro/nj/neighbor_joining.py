"""The Neighbor-Joining algorithm (Saitou & Nei 1987, Studier–Keppler form).

Classic O(n³) agglomeration over the O(n²) distance matrix — the data
access pattern the paper's §2 contrasts with the PLF: "dominated by
searching for the minimum in the O(n²) distance matrix at each step".
Recovers additive trees exactly and provides fast starting topologies for
the ML search.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TreeError
from repro.phylo.msa import Alignment
from repro.phylo.tree import Tree

#: Floor applied to inferred branch lengths (NJ can produce negatives).
MIN_LENGTH = 1e-8


def neighbor_joining(distances: np.ndarray, names: list[str] | None = None) -> Tree:
    """Build an unrooted binary :class:`Tree` from a distance matrix.

    ``distances`` must be a symmetric ``(n, n)`` matrix with zero diagonal,
    ``n >= 3``. Tip ``i`` of the result corresponds to row ``i``.
    """
    D = np.array(distances, dtype=np.float64)
    if D.ndim != 2 or D.shape[0] != D.shape[1]:
        raise TreeError("distance matrix must be square")
    n = D.shape[0]
    if n < 3:
        raise TreeError(f"NJ needs at least 3 taxa, got {n}")
    if not np.allclose(D, D.T, atol=1e-9):
        raise TreeError("distance matrix must be symmetric")
    if np.any(np.abs(np.diag(D)) > 1e-12):
        raise TreeError("distance matrix must have a zero diagonal")

    tree = Tree(n, names)
    # active[i] -> node id in the output tree; D rows/cols track active set.
    active = list(range(n))
    next_inner = n

    while len(active) > 3:
        m = len(active)
        r = D.sum(axis=1)
        # Q-criterion; mask the diagonal so argmin picks a true pair.
        Q = (m - 2) * D - r[:, None] - r[None, :]
        np.fill_diagonal(Q, np.inf)
        i, j = np.unravel_index(np.argmin(Q), Q.shape)
        if i > j:
            i, j = j, i
        dij = D[i, j]
        vi = 0.5 * dij + (r[i] - r[j]) / (2.0 * (m - 2))
        vj = dij - vi
        u = next_inner
        next_inner += 1
        tree._connect(active[i], u, max(vi, MIN_LENGTH))
        tree._connect(active[j], u, max(vj, MIN_LENGTH))
        # Distances from the new cluster to the remaining ones.
        du = 0.5 * (D[i] + D[j] - dij)
        keep = [k for k in range(m) if k not in (i, j)]
        newD = np.empty((m - 1, m - 1))
        newD[: m - 2, : m - 2] = D[np.ix_(keep, keep)]
        newD[m - 2, : m - 2] = newD[: m - 2, m - 2] = du[keep]
        newD[m - 2, m - 2] = 0.0
        D = newD
        active = [active[k] for k in keep] + [u]

    # Final star join of the last three clusters.
    u = next_inner
    d01, d02, d12 = D[0, 1], D[0, 2], D[1, 2]
    lengths = (
        0.5 * (d01 + d02 - d12),
        0.5 * (d01 + d12 - d02),
        0.5 * (d02 + d12 - d01),
    )
    for cluster, length in zip(active, lengths):
        tree._connect(cluster, u, max(length, MIN_LENGTH))
    tree.validate()
    return tree


def nj_tree(alignment: Alignment) -> Tree:
    """NJ starting tree from JC-corrected alignment distances."""
    from repro.nj.distances import jc69_distances

    return neighbor_joining(jc69_distances(alignment), alignment.names)
