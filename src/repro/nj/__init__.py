"""Neighbor Joining — the related-work baseline (paper §2).

The paper contrasts the PLF with Neighbor Joining, "a clustering technique
that relies on updating an O(n²) distance matrix", whose external-memory
variants (Wheeler's NINJA, Simonsen et al.) predate any out-of-core PLF.
We implement classic NJ plus JC-corrected distance matrices: it serves as
a comparison point for access patterns and as a fast starting-tree builder
for the ML search.
"""

from repro.nj.distances import jc69_distances, p_distances
from repro.nj.neighbor_joining import neighbor_joining

__all__ = ["p_distances", "jc69_distances", "neighbor_joining"]
