"""Pairwise evolutionary distance matrices from alignments.

Distances are computed over site patterns with multiplicity weights.
Two codes *mismatch* when their bitmask intersection is empty (no state
both could be); sites where either taxon is fully unknown (gap) are
excluded from the denominator — the standard pairwise-deletion treatment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.phylo.msa import Alignment


def p_distances(alignment: Alignment) -> np.ndarray:
    """Symmetric matrix of uncorrected mismatch proportions (p-distances)."""
    codes = alignment.pattern_codes().astype(np.int64)
    weights = alignment.compress().weights
    gap = alignment.alphabet.gap_code
    n = alignment.num_taxa
    valid = codes != gap
    D = np.zeros((n, n))
    for i in range(n):
        both = valid[i][None, :] & valid[i + 1:]
        mism = ((codes[i][None, :] & codes[i + 1:]) == 0) & both
        denom = (both * weights[None, :]).sum(axis=1)
        numer = (mism * weights[None, :]).sum(axis=1)
        with np.errstate(invalid="ignore"):
            row = np.where(denom > 0, numer / np.maximum(denom, 1e-300), 0.0)
        D[i, i + 1:] = row
        D[i + 1:, i] = row
    return D


def jc69_distances(alignment: Alignment, max_distance: float = 5.0) -> np.ndarray:
    """Jukes–Cantor corrected distances ``d = -(k-1)/k · ln(1 - k·p/(k-1))``.

    ``k`` is the alphabet size (¾ formula for DNA, 19/20 for proteins).
    Saturated pairs (``p ≥ (k-1)/k``) are clamped to ``max_distance``.
    """
    k = alignment.alphabet.num_states
    if k < 2:
        raise AlignmentError("JC correction needs at least 2 states")
    frac = (k - 1.0) / k
    p = p_distances(alignment)
    arg = 1.0 - p / frac
    with np.errstate(divide="ignore", invalid="ignore"):
        d = np.where(arg > 0, -frac * np.log(np.maximum(arg, 1e-300)), max_distance)
    d = np.minimum(d, max_distance)
    np.fill_diagonal(d, 0.0)
    return d
