"""Out-of-core ancestral-probability-vector machinery — the paper's contribution.

The central class is :class:`~repro.core.vecstore.AncestralVectorStore`,
the Python equivalent of the paper's ``map``/``nodemap`` bookkeeping
structures (§3.2): ``n`` logical vectors live either in one of ``m < n``
RAM *slots* or in a backing store (a single binary file in the paper), and
every access goes through :meth:`~repro.core.vecstore.AncestralVectorStore.get`
— the paper's ``getxvector()`` — which transparently swaps vectors, honours
pinned slots, applies a pluggable replacement strategy (§3.3) and the
read-skipping optimization (§3.4), and counts every hit, miss, read and
write for the evaluation (§4).
"""

from repro.core.backing import (
    AsyncBackingStore,
    BackingStore,
    FileBackingStore,
    IoTicket,
    MemoryBackingStore,
    MultiFileBackingStore,
    SimulatedDiskBackingStore,
)
from repro.core.compress import (
    Codec,
    CompressedFileBackingStore,
    NullCodec,
    ZlibCodec,
    make_codec,
)
from repro.core.faults import (
    FaultInjectingBackingStore,
    InjectedFault,
    RetryingBackingStore,
    SimulatedCrash,
)
from repro.core.layout import (
    DEFAULT_BLOCK_SITES,
    ConcatenatedLayout,
    PartitionLayoutView,
    SharedStoreView,
    SiteBlockLayout,
    StorageLayout,
    WholeVectorLayout,
    make_layout,
    shard_items,
    shard_of,
)
from repro.core.sharded import ShardedBackingStore, ShardTicket
from repro.core.policies import (
    BeladyPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TopologicalPolicy,
    make_policy,
)
from repro.core.shadow import ShadowStore, TeeStore
from repro.core.stats import IoStats
from repro.core.trace import AccessTrace, TraceEvent, simulate_policy_on_trace
from repro.core.vecstore import AncestralVectorStore

__all__ = [
    "AncestralVectorStore",
    "BackingStore",
    "AsyncBackingStore",
    "IoTicket",
    "StorageLayout",
    "WholeVectorLayout",
    "SiteBlockLayout",
    "ConcatenatedLayout",
    "PartitionLayoutView",
    "SharedStoreView",
    "make_layout",
    "shard_of",
    "shard_items",
    "DEFAULT_BLOCK_SITES",
    "ShardedBackingStore",
    "ShardTicket",
    "MemoryBackingStore",
    "FileBackingStore",
    "MultiFileBackingStore",
    "SimulatedDiskBackingStore",
    "CompressedFileBackingStore",
    "Codec",
    "ZlibCodec",
    "NullCodec",
    "make_codec",
    "FaultInjectingBackingStore",
    "RetryingBackingStore",
    "InjectedFault",
    "SimulatedCrash",
    "ReplacementPolicy",
    "RandomPolicy",
    "LruPolicy",
    "LfuPolicy",
    "FifoPolicy",
    "TopologicalPolicy",
    "BeladyPolicy",
    "make_policy",
    "IoStats",
    "ShadowStore",
    "TeeStore",
    "AccessTrace",
    "TraceEvent",
    "simulate_policy_on_trace",
]
