"""Three-layer vector storage: accelerator ⇄ RAM ⇄ disk (paper §5).

The paper's conclusion envisions "a three-layer architecture, where
ancestral probability vectors partially reside on disk, in RAM, or the
memory of an accelerator card". :class:`TieredVectorStore` composes two
:class:`~repro.core.vecstore.AncestralVectorStore` levels: a small, fast
*device* tier whose backing store is an adapter over a larger *host* tier,
which in turn spills to the real backing store (file / simulated disk).
``get()`` on the tiered store transparently promotes a vector through both
levels, and each level keeps its own policy and statistics — so the
device-tier miss rate is the PCIe-transfer rate and the host-tier miss rate
is the disk-transfer rate.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import DTypeLike

from repro.core.backing import BackingStore
from repro.core.policies import ReplacementPolicy
from repro.core.stats import IoStats
from repro.core.vecstore import AncestralVectorStore
from repro.errors import OutOfCoreError


class HostTierBacking:
    """Adapter presenting a host-level vector store as a backing store.

    A device-tier miss triggers ``read`` here, which resolves the vector in
    the host tier (possibly faulting it up from disk) and copies it into
    the device slot — the simulated PCIe transfer. Evicted device vectors
    are written back down the same way. Pins are forwarded so the host
    tier never evicts a vector the device tier is mid-transfer on.
    """

    def __init__(self, host: AncestralVectorStore) -> None:
        self.host = host
        self.num_items = host.num_items
        self.transfers_up = 0
        self.transfers_down = 0
        self.bytes_moved = 0

    def read(self, item: int, out: np.ndarray) -> None:
        np.copyto(out, self.host.get(item, write_only=False))
        self.transfers_up += 1
        self.bytes_moved += out.nbytes

    def write(self, item: int, data: np.ndarray) -> None:
        np.copyto(self.host.get(item, write_only=True), data)
        self.transfers_down += 1
        self.bytes_moved += data.nbytes

    def close(self) -> None:
        self.host.close()


class TieredVectorStore:
    """Two cooperating store levels with a single ``get()`` front door.

    Parameters
    ----------
    num_items, item_shape, dtype:
        Geometry, as for :class:`AncestralVectorStore`.
    device_slots:
        Capacity of the small fast tier (accelerator memory).
    host_slots:
        Capacity of the middle tier (CPU RAM).
    device_policy / host_policy:
        Replacement strategy per tier.
    backing:
        The bottom layer (binary file or simulated disk) behind the host.
    """

    def __init__(
        self,
        num_items: int,
        item_shape: tuple[int, ...],
        *,
        dtype: DTypeLike = np.float64,
        device_slots: int,
        host_slots: int,
        device_policy: str | ReplacementPolicy = "lru",
        host_policy: str | ReplacementPolicy = "lru",
        backing: BackingStore | None = None,
        read_skipping: bool = True,
    ) -> None:
        if device_slots >= host_slots:
            raise OutOfCoreError(
                f"device tier ({device_slots}) should be smaller than host tier "
                f"({host_slots}) — otherwise use a single store"
            )
        self.host = AncestralVectorStore(
            num_items, item_shape, dtype=dtype, num_slots=host_slots,
            policy=host_policy, backing=backing, read_skipping=read_skipping,
        )
        self.link = HostTierBacking(self.host)
        self.device = AncestralVectorStore(
            num_items, item_shape, dtype=dtype, num_slots=device_slots,
            policy=device_policy, backing=self.link, read_skipping=read_skipping,
        )
        self.num_items = num_items

    def get(self, item: int, pins: tuple = (), write_only: bool = False) -> np.ndarray:
        """Fetch a vector into the device tier (promoting through the host)."""
        return self.device.get(item, pins=pins, write_only=write_only)

    @property
    def device_stats(self) -> IoStats:
        return self.device.stats

    @property
    def host_stats(self) -> IoStats:
        return self.host.stats

    def flush(self) -> None:
        """Push all device-resident vectors down to host, then host to backing."""
        for item in self.device.resident_items():
            # read_item snapshots the newest version under the device store's
            # lock — no reaching into its slot arena from outside.
            self.link.write(item, self.device.read_item(item))
        self.host.flush()

    def close(self) -> None:
        self.device.close()  # closes link -> host -> backing

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TieredVectorStore(n={self.num_items}, device={self.device.num_slots}, "
            f"host={self.host.num_slots})"
        )
