"""Three-layer vector storage: accelerator ⇄ RAM ⇄ disk (paper §5).

The paper's conclusion envisions "a three-layer architecture, where
ancestral probability vectors partially reside on disk, in RAM, or the
memory of an accelerator card". :class:`TieredVectorStore` composes two
:class:`~repro.core.vecstore.AncestralVectorStore` levels: a small, fast
*device* tier whose backing store is an adapter over a larger *host* tier,
which in turn spills to the real backing store (file / simulated disk).
``get()`` on the tiered store transparently promotes a vector through both
levels, and each level keeps its own policy and statistics — so the
device-tier miss rate is the PCIe-transfer rate and the host-tier miss rate
is the disk-transfer rate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import DTypeLike

from repro.analysis.race import race_detector
from repro.core.backing import BackingStore
from repro.core.layout import StorageLayout
from repro.core.policies import ReplacementPolicy
from repro.core.stats import IoStats
from repro.core.vecstore import AncestralVectorStore
from repro.errors import OutOfCoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class HostTierBacking:
    """Adapter presenting a host-level vector store as a backing store.

    A device-tier miss triggers ``read`` here, which resolves the vector in
    the host tier (possibly faulting it up from disk) and copies it into
    the device slot — the simulated PCIe transfer. Evicted device vectors
    are written back down the same way. Pins are forwarded so the host
    tier never evicts a vector the device tier is mid-transfer on.
    """

    def __init__(self, host: AncestralVectorStore) -> None:
        self.host = host
        self.num_items = host.num_items
        # Transfer counters are deliberately unlocked: the device tier is
        # single-threaded by contract (no write-behind / prefetcher of its
        # own), so only the compute thread reaches this adapter. The race
        # hooks make the sanitizer *prove* that — any concurrent caller
        # shows up as RACE001 on these fields.
        self.transfers_up = 0
        self.transfers_down = 0
        self.bytes_moved = 0
        self._race = race_detector()
        self._race_scope = ("" if self._race is None
                            else self._race.new_scope("HostTierBacking"))

    def read(self, item: int, out: np.ndarray) -> None:
        np.copyto(out, self.host.get(item, write_only=False))
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "transfers_up", "bytes_moved")
        self.transfers_up += 1
        self.bytes_moved += out.nbytes

    def write(self, item: int, data: np.ndarray) -> None:
        np.copyto(self.host.get(item, write_only=True), data)
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "transfers_down", "bytes_moved")
        self.transfers_down += 1
        self.bytes_moved += data.nbytes

    def flush(self) -> None:
        """Durability barrier: drain the host tier down to its backing."""
        self.host.flush()

    def close(self) -> None:
        self.host.close()


class TieredVectorStore:
    """Two cooperating store levels with a single ``get()`` front door.

    Parameters
    ----------
    num_items, item_shape, dtype:
        Geometry, as for :class:`AncestralVectorStore`.
    layout:
        Optional :class:`~repro.core.layout.StorageLayout` shared by both
        tiers (the same item space flows accelerator ⇄ RAM ⇄ disk, so one
        layout instance describes all three levels). Defaults to the
        whole-vector layout over ``num_items × item_shape``.
    device_slots:
        Capacity of the small fast tier (accelerator memory).
    host_slots:
        Capacity of the middle tier (CPU RAM).
    device_policy / host_policy:
        Replacement strategy per tier.
    backing:
        The bottom layer (binary file or simulated disk) behind the host.
    """

    def __init__(
        self,
        num_items: int | None = None,
        item_shape: tuple[int, ...] | None = None,
        *,
        layout: StorageLayout | None = None,
        dtype: DTypeLike = np.float64,
        device_slots: int,
        host_slots: int,
        device_policy: str | ReplacementPolicy = "lru",
        host_policy: str | ReplacementPolicy = "lru",
        backing: BackingStore | None = None,
        read_skipping: bool = True,
    ) -> None:
        if device_slots >= host_slots:
            raise OutOfCoreError(
                f"device tier ({device_slots}) should be smaller than host tier "
                f"({host_slots}) — otherwise use a single store"
            )
        self.host = AncestralVectorStore(
            num_items, item_shape, layout=layout, dtype=dtype,
            num_slots=host_slots,
            policy=host_policy, backing=backing, read_skipping=read_skipping,
        )
        self.link = HostTierBacking(self.host)
        self.device = AncestralVectorStore(
            layout=self.host.layout, dtype=dtype, num_slots=device_slots,
            policy=device_policy, backing=self.link, read_skipping=read_skipping,
        )
        self.layout = self.host.layout
        self.num_items = self.host.num_items

    def get(self, item: int, pins: tuple = (), write_only: bool = False) -> np.ndarray:
        """Fetch a vector into the device tier (promoting through the host)."""
        return self.device.get(item, pins=pins, write_only=write_only)

    @property
    def device_stats(self) -> IoStats:
        return self.device.stats

    @property
    def host_stats(self) -> IoStats:
        return self.host.stats

    @property
    def stats(self) -> IoStats:
        """The front-door (device-tier) counters, as an engine reports them."""
        return self.device.stats

    @property
    def backing(self) -> BackingStore | None:
        """The bottom layer (file / simulated disk) behind the host tier."""
        return self.host.backing

    @property
    def policy(self) -> ReplacementPolicy:
        """The front-door (device-tier) replacement policy."""
        return self.device.policy

    @property
    def tracer(self) -> "Tracer | None":
        """The attached event tracer (shared by both tiers), if any."""
        return self.device.tracer

    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Attach (or with ``None`` detach) one tracer to BOTH tiers.

        Device- and host-tier transitions land in the same ring, so a
        promotion shows up as the device-tier miss followed by the host
        events that resolved it. Event ``item`` ids are shared (both tiers
        address the same item space); disambiguate by thread/ordering or
        attach separate tracers directly via ``store.device`` /
        ``store.host`` when per-tier streams are needed.
        """
        self.device.attach_tracer(tracer)
        self.host.attach_tracer(tracer)

    @property
    def metrics(self) -> "MetricsRegistry | None":
        """The attached metrics registry (front-door tier), if any."""
        return self.device.metrics

    def attach_metrics(self, registry: "MetricsRegistry | None") -> None:
        """Attach (or with ``None`` detach) a registry to the DEVICE tier.

        Only the front-door tier registers a collector: both tiers share
        one metric namespace, so collecting both would overwrite each
        other's counters on every scrape. The device-tier view matches
        what :attr:`stats` reports; attach a registry directly via
        ``store.host.attach_metrics`` when the host-tier (disk-transfer)
        counters are wanted instead.
        """
        self.device.attach_metrics(registry)

    def validate(self) -> None:
        """Check both tiers' invariants plus the cross-tier geometry.

        Raises :class:`~repro.errors.OutOfCoreError` on the first
        violation; returns ``None`` when consistent (same contract as
        :meth:`AncestralVectorStore.validate`).
        """
        self.device.validate()
        self.host.validate()
        if self.device.num_items != self.host.num_items:
            raise OutOfCoreError(
                f"tier geometry mismatch: device addresses "
                f"{self.device.num_items} items, host {self.host.num_items}")
        if self.device.item_shape != self.host.item_shape:
            raise OutOfCoreError(
                f"tier geometry mismatch: device items {self.device.item_shape}, "
                f"host items {self.host.item_shape}")
        if self.link.host is not self.host:
            raise OutOfCoreError("device tier's backing does not link this host")
        if self.device.num_slots >= self.host.num_slots:
            raise OutOfCoreError(
                f"tier capacity inverted: device {self.device.num_slots} >= "
                f"host {self.host.num_slots}")

    def flush(self) -> None:
        """Push all device-resident vectors down to host, then host to backing."""
        for item in self.device.resident_items():
            # read_item snapshots the newest version under the device store's
            # lock — no reaching into its slot arena from outside.
            self.link.write(item, self.device.read_item(item))
        self.host.flush()

    def close(self) -> None:
        self.device.close()  # closes link -> host -> backing

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TieredVectorStore(n={self.num_items}, device={self.device.num_slots}, "
            f"host={self.host.num_slots})"
        )
