"""Backing stores: where evicted ancestral vectors live.

The paper stores "all ancestral probability vectors that do not fit into
RAM contiguously in a single binary file", with an option to spread them
over several files (§3.2, performance difference "minimal"). We implement
both, plus an in-memory backing (for miss-rate experiments where physical
I/O would only add noise) and a *simulated-latency disk* used by the
Figure-5 runtime benchmark, which charges an explicit seek + bandwidth cost
per transfer instead of performing real I/O — see DESIGN.md, substitution 3.

All stores move whole vectors ("pages" of ``w`` bytes): because one
ancestral vector is far larger than the 512 B–8 KiB hardware block (§3.1),
every transfer is a single large sequential access, which is exactly the
amortization argument the paper makes.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import TYPE_CHECKING, Callable, Protocol

from numpy.typing import DTypeLike

import numpy as np

from repro.errors import BackingStoreError
from repro.vm.disk import DiskModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.layout import StorageLayout
    from repro.obs.histogram import BackingProbe
    from repro.obs.metrics import MetricsRegistry

#: Bound on consecutive zero-byte transfers before a write is declared
#: stuck. A zero return is a legitimate interruption (not an error), but
#: an endless run of them means the device is wedged.
_MAX_ZERO_TRANSFERS = 16


class BackingStore(Protocol):
    """Protocol for vector-granularity persistent storage.

    Implementations store ``num_items`` fixed-size vectors addressed by
    integer id. ``read`` fills a caller-provided buffer (no allocation on
    the hot path); ``write`` persists a vector. ``flush`` is the
    durability barrier: after it returns, every completed ``write`` must
    survive a process crash (file-backed stores fsync; RAM-backed stores
    no-op because their durability domain is the process itself).
    """

    def read(self, item: int, out: np.ndarray) -> None: ...

    def write(self, item: int, data: np.ndarray) -> None: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class IoTicket(Protocol):
    """Waitable handle for one asynchronously submitted transfer.

    ``wait`` blocks until the operation completed and re-raises its error,
    if any; ``done`` polls without blocking.
    """

    def wait(self) -> None: ...

    @property
    def done(self) -> bool: ...


class AsyncBackingStore(BackingStore, Protocol):
    """A backing store with split submit/collect hooks.

    ``submit_read``/``submit_write`` issue the transfer and return an
    :class:`IoTicket` without waiting for completion, letting one caller
    keep many transfers in flight — across the shard workers of a
    :class:`~repro.core.sharded.ShardedBackingStore`, that is what turns
    N processes into N-way I/O parallelism. ``submit_write`` must
    serialise (or copy) the caller's buffer before returning, so the
    buffer is immediately reusable — the same contract as the
    write-behind staging copy. Consumers feature-detect these hooks with
    ``callable(getattr(backing, "submit_write", None))``; every plain
    :class:`BackingStore` keeps working unchanged.
    """

    def submit_read(self, item: int, out: np.ndarray) -> IoTicket: ...

    def submit_write(self, item: int, data: np.ndarray) -> IoTicket: ...


class MemoryBackingStore:
    """Backing store held in RAM — zero-latency stand-in for a disk.

    Used by the replacement-strategy experiments (Figs. 2–4): the metric
    there is the *miss/read rate*, a property of the access pattern alone,
    so physical disk traffic is unnecessary. The paper does the same thing
    by running on a 36 GB machine where everything fits ("the amount of
    available RAM was sufficient to hold all vectors in memory", §4.1).
    """

    def __init__(self, num_items: int, item_shape: tuple[int, ...], dtype: DTypeLike = np.float64) -> None:
        self.num_items = int(num_items)
        self.item_shape = tuple(item_shape)
        self.dtype = np.dtype(dtype)
        self._data = np.zeros((self.num_items, *self.item_shape), dtype=self.dtype)
        self._present = np.zeros(self.num_items, dtype=bool)
        self._closed = False
        # Observability hooks (default off): latency/byte probe and metrics
        # registry populated by repro.obs.Observer.attach / attach_metrics.
        # Reads and writes stay untimed while both are None.
        self.probe: BackingProbe | None = None
        self.metrics: MetricsRegistry | None = None

    @classmethod
    def from_layout(cls, layout: "StorageLayout",
                    dtype: DTypeLike = np.float64) -> "MemoryBackingStore":
        """Backing sized for a layout's item space (blocks, not nodes)."""
        return cls(layout.num_items, layout.item_shape, dtype)

    def _check(self, item: int) -> None:
        if self._closed:
            raise BackingStoreError("backing store is closed")
        if not 0 <= item < self.num_items:
            raise BackingStoreError(f"item {item} out of range [0, {self.num_items})")

    def read(self, item: int, out: np.ndarray) -> None:
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        self._check(item)
        np.copyto(out, self._data[item])
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_read(dt, out.nbytes)
            if mx is not None:
                mx.observe("backing_read_seconds", dt)

    def write(self, item: int, data: np.ndarray) -> None:
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        self._check(item)
        np.copyto(self._data[item], data)
        self._present[item] = True
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_write(dt, data.nbytes)
            if mx is not None:
                mx.observe("backing_write_seconds", dt)

    def has(self, item: int) -> bool:
        return bool(self._present[item])

    def flush(self) -> None:
        """No-op: RAM is this store's durability domain."""

    def close(self) -> None:
        self._closed = True


class FileBackingStore:
    """The paper's layout: all vectors contiguous in ONE binary file.

    Vector ``i`` lives at byte offset ``i * w`` where ``w`` is the vector
    width — the paper's ``nodemap`` offset field. A new file is
    preallocated (sparse where the OS allows) on construction; an
    *existing* file is reattached read-write with its contents intact, so
    a checkpointed run can resume against the vectors it already spilled.

    Transfers use positioned I/O (``os.pread``/``os.pwrite``), so there is
    no shared file-position cursor: concurrent reader and writer threads —
    the write-behind drainer and the prefetcher — cannot race each other
    through an interleaved ``seek``. Accesses to *distinct* items are fully
    thread-safe; the vector store never issues concurrent I/O for the same
    item (in-flight items are excluded from eviction).
    """

    def __init__(self, path: str | os.PathLike, num_items: int,
                 item_shape: tuple[int, ...], dtype: DTypeLike = np.float64) -> None:
        self.path = os.fspath(path)
        self.num_items = int(num_items)
        self.item_shape = tuple(item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize
        # The handle intentionally outlives this scope (positioned I/O for
        # the store's whole lifetime); close() / __del__ release it.
        # "r+b" on an existing file: "w+b" would truncate a previous run's
        # spilled vectors to zeros on reattach.
        exists = os.path.exists(self.path)
        self._fh = open(self.path, "r+b" if exists else "w+b",  # noqa: SIM115
                        buffering=0)
        self._fd = self._fh.fileno()
        total = self.num_items * self.item_bytes
        if os.fstat(self._fd).st_size < total:
            self._fh.truncate(total)
        self._closed = False
        # Observability hooks (default off), see MemoryBackingStore.probe.
        self.probe: BackingProbe | None = None
        self.metrics: MetricsRegistry | None = None

    @classmethod
    def from_layout(cls, path: "str | os.PathLike[str]", layout: "StorageLayout",
                    dtype: DTypeLike = np.float64) -> "FileBackingStore":
        """Backing sized for a layout's item space; under a
        :class:`~repro.core.layout.SiteBlockLayout` block ``(n, b)`` lives
        at byte offset ``(n·blocks_per_node + b)·w`` with ``w`` the padded
        block width, preserving the paper's dense single-file placement."""
        return cls(path, layout.num_items, layout.item_shape, dtype)

    def _offset(self, item: int) -> int:
        if self._closed:
            raise BackingStoreError("backing store is closed")
        if not 0 <= item < self.num_items:
            raise BackingStoreError(f"item {item} out of range [0, {self.num_items})")
        return item * self.item_bytes

    def _transfer(self, syscall: Callable[[int, list[memoryview], int], int],
                  item: int, view: memoryview, offset: int, kind: str) -> int:
        """Drive a vectored positioned transfer to completion.

        Reads and writes share one loop (``os.preadv``/``os.pwritev``)
        with symmetric interruption semantics: ``EINTR`` raised before any
        byte moved is retried, and a zero-byte *write* — a legitimately
        interrupted transfer on some kernels — is retried up to
        :data:`_MAX_ZERO_TRANSFERS` times rather than treated as an error.
        A zero-byte *read* stops the loop: inside the preallocated extent
        it means EOF, which the caller reports as a short read.
        """
        done = 0
        zeros = 0
        while done < self.item_bytes:
            try:
                n = syscall(self._fd, [view[done:]], offset + done)
            except InterruptedError:
                continue  # EINTR before any byte moved: retry the call
            if n > 0:
                done += n
                zeros = 0
                continue
            if kind == "read":
                break  # EOF inside the extent; caller raises short-read
            zeros += 1
            if zeros >= _MAX_ZERO_TRANSFERS:
                raise BackingStoreError(
                    f"{kind} for item {item} made no progress after "
                    f"{zeros} attempts: {done}/{self.item_bytes} bytes"
                )
        return done

    def read(self, item: int, out: np.ndarray) -> None:
        if out.nbytes != self.item_bytes or not out.flags.c_contiguous:
            raise BackingStoreError(
                f"read buffer mismatch: {out.nbytes} bytes vs item width {self.item_bytes}"
            )
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        offset = self._offset(item)
        view = memoryview(out.reshape(-1).view(np.uint8))
        done = self._transfer(os.preadv, item, view, offset, "read")
        if done < self.item_bytes:
            # A zero-byte read inside the preallocated extent is EOF —
            # the file was truncated under us, not a retryable condition.
            raise BackingStoreError(
                f"short read for item {item}: {done}/{self.item_bytes} bytes"
            )
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_read(dt, self.item_bytes)
            if mx is not None:
                mx.observe("backing_read_seconds", dt)

    def write(self, item: int, data: np.ndarray) -> None:
        if data.dtype != self.dtype or not data.flags.c_contiguous:
            data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.nbytes != self.item_bytes:
            raise BackingStoreError(
                f"write buffer mismatch: {data.nbytes} bytes vs item width {self.item_bytes}"
            )
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        offset = self._offset(item)
        view = memoryview(data.reshape(-1).view(np.uint8))
        done = self._transfer(os.pwritev, item, view, offset, "write")
        if done < self.item_bytes:
            raise BackingStoreError(
                f"short write for item {item}: {done}/{self.item_bytes} bytes"
            )
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_write(dt, self.item_bytes)
            if mx is not None:
                mx.observe("backing_write_seconds", dt)

    def flush(self) -> None:
        if not self._closed:
            os.fsync(self._fd)

    def close(self) -> None:
        if not self._closed:
            self._fh.close()
            self._closed = True

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()


class MultiFileBackingStore:
    """Vectors striped round-robin across several binary files (§3.2).

    The paper "allows for storing individual vectors in several files" and
    found the single-file/multi-file difference minimal; this class exists
    to reproduce that comparison (see the ablation benchmark).
    """

    def __init__(self, directory: str | os.PathLike, num_items: int,
                 item_shape: tuple[int, ...], dtype: DTypeLike = np.float64, num_files: int = 4) -> None:
        if num_files < 1:
            raise BackingStoreError(f"need at least 1 file, got {num_files}")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.num_items = int(num_items)
        self.num_files = int(num_files)
        per_file = [len(range(f, num_items, num_files)) for f in range(num_files)]
        self._files = [
            FileBackingStore(
                os.path.join(self.directory, f"vectors_{f}.bin"),
                max(per_file[f], 1), item_shape, dtype,
            )
            for f in range(num_files)
        ]
        # Observability hooks (default off): timed around the whole striped
        # transfer; the per-stripe child stores keep their hooks at None.
        self.probe: BackingProbe | None = None
        self.metrics: MetricsRegistry | None = None

    @classmethod
    def from_layout(cls, directory: "str | os.PathLike[str]",
                    layout: "StorageLayout", dtype: DTypeLike = np.float64,
                    num_files: int = 4) -> "MultiFileBackingStore":
        """Backing sized for a layout's item space (blocks stripe round-robin)."""
        return cls(directory, layout.num_items, layout.item_shape, dtype,
                   num_files)

    def _locate(self, item: int) -> tuple[FileBackingStore, int]:
        if not 0 <= item < self.num_items:
            raise BackingStoreError(f"item {item} out of range [0, {self.num_items})")
        return self._files[item % self.num_files], item // self.num_files

    def read(self, item: int, out: np.ndarray) -> None:
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        fh, local = self._locate(item)
        fh.read(local, out)
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_read(dt, out.nbytes)
            if mx is not None:
                mx.observe("backing_read_seconds", dt)

    def write(self, item: int, data: np.ndarray) -> None:
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        fh, local = self._locate(item)
        fh.write(local, data)
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_write(dt, data.nbytes)
            if mx is not None:
                mx.observe("backing_write_seconds", dt)

    def flush(self) -> None:
        """Durability barrier: fsync every stripe file *concurrently*.

        Each stripe is an independent descriptor, so their fsyncs can
        overlap — one thread per stripe instead of a sequential sweep
        whose latency grows linearly with ``num_files``. The call still
        returns only after every stripe is durable, and the first
        failure is re-raised.
        """
        errors: list[BaseException] = []
        err_lock = threading.Lock()

        def _sync(fh: FileBackingStore) -> None:
            try:
                fh.flush()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with err_lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=_sync, args=(fh,),
                             name=f"stripe-fsync-{i}", daemon=True)
            for i, fh in enumerate(self._files)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]

    def close(self) -> None:
        for fh in self._files:
            fh.close()


class SimulatedDiskBackingStore:
    """In-memory data with an explicit disk-time model.

    Every ``read``/``write`` completes instantly (a RAM copy) but charges
    ``DiskModel.transfer_time(nbytes, sequential=True)`` to
    :attr:`simulated_seconds`. The Figure-5 benchmark runs the real numpy
    PLF compute and adds this simulated I/O wait, reproducing the paper's
    out-of-core runtime curve without a 32 GB dataset or a 2 GB machine
    (DESIGN.md substitution 3).

    With ``sleep=True`` each transfer additionally *blocks the calling
    thread* for its modelled duration (``time.sleep``), turning the model
    into a wall-clock-faithful slow device. This is how the async-I/O
    benchmark measures real overlap: background writer/prefetcher threads
    sleep concurrently with likelihood compute, while the synchronous path
    serialises every sleep. The time accounting is thread-safe.
    """

    def __init__(self, num_items: int, item_shape: tuple[int, ...], dtype: DTypeLike = np.float64,
                 disk: DiskModel | None = None, sleep: bool = False) -> None:
        self._inner = MemoryBackingStore(num_items, item_shape, dtype)
        self.disk = disk if disk is not None else DiskModel.hdd()
        self.simulated_seconds = 0.0
        self.sleep = bool(sleep)
        self.num_items = self._inner.num_items
        self.item_bytes = int(np.prod(item_shape)) * np.dtype(dtype).itemsize
        self._time_lock = threading.Lock()
        # Observability hooks (default off): with sleep=True the histograms
        # reflect the modelled device latency; without it, the RAM copy.
        self.probe: BackingProbe | None = None
        self.metrics: MetricsRegistry | None = None

    @classmethod
    def from_layout(cls, layout: "StorageLayout",
                    dtype: DTypeLike = np.float64,
                    disk: DiskModel | None = None,
                    sleep: bool = False) -> "SimulatedDiskBackingStore":
        """Backing sized for a layout's item space. Note the modelled
        per-transfer cost shrinks with the item: site blocks amortize the
        seek less well than whole vectors, which is exactly the trade-off
        a block-size sweep measures."""
        return cls(layout.num_items, layout.item_shape, dtype,
                   disk=disk, sleep=sleep)

    def _charge(self) -> None:
        cost = self.disk.transfer_time(self.item_bytes, sequential=True)
        with self._time_lock:
            self.simulated_seconds += cost
        if self.sleep:
            time.sleep(cost)

    def read(self, item: int, out: np.ndarray) -> None:
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        self._inner.read(item, out)
        self._charge()
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_read(dt, out.nbytes)
            if mx is not None:
                mx.observe("backing_read_seconds", dt)

    def write(self, item: int, data: np.ndarray) -> None:
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        self._inner.write(item, data)
        self._charge()
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_write(dt, data.nbytes)
            if mx is not None:
                mx.observe("backing_write_seconds", dt)

    def flush(self) -> None:
        """No physical medium to sync; delegate to the RAM inner store."""
        self._inner.flush()

    def close(self) -> None:
        self._inner.close()
