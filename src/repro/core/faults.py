"""Deterministic fault injection and bounded retry for backing stores.

The out-of-core design treats the backing tier as an infallible byte
array; real devices time out, return short transfers, and hosts crash
mid-search. This module makes failure a first-class, *reproducible* test
input:

* :class:`FaultInjectingBackingStore` wraps any backing store and injects
  transient errors, short (torn) transfers, latency spikes, and
  crash-points on a schedule derived purely from ``(seed, kind, item,
  attempt)`` — the same seed replays the same faults regardless of thread
  interleaving, because the decision hash never consults global order.
* :class:`RetryingBackingStore` is the production-side answer: bounded
  retry with exponential backoff around *transient* failures
  (:class:`InjectedFault` and ``OSError``), surfacing everything else —
  including :class:`SimulatedCrash`, which models the process dying and
  must never be absorbed by a retry loop.

Both wrappers forward the ``probe``/``metrics`` observability hooks to
the wrapped store (so physical I/O timing is still recorded at the point
it happens) and count their own events on the metrics registry
(``backing_faults``, ``backing_retries``).
"""

from __future__ import annotations

import time
import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.analysis.race import make_lock
from repro.core.backing import BackingStore
from repro.errors import BackingStoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.histogram import BackingProbe
    from repro.obs.metrics import MetricsRegistry


class InjectedFault(BackingStoreError):
    """A transient, injected I/O failure (retry is expected to succeed)."""


class SimulatedCrash(BaseException):
    """The process "dies" at an injected crash-point.

    Deliberately derives from ``BaseException`` so that ``except
    Exception`` recovery paths (the write-behind writer, retry loops)
    cannot absorb it — exactly like a real ``SIGKILL`` would not be
    absorbed. Tests catch it explicitly at the outermost level.
    """


def _hash_unit(seed: int, kind: str, item: int, attempt: int) -> float:
    """A deterministic draw in ``[0, 1)`` for one (kind, item, attempt).

    ``zlib.crc32`` keyed on the full coordinate tuple (the repo's seeded
    order-independent idiom, cf. :mod:`repro.core.interleave`): no stdlib
    ``random`` state, no dependence on call order across threads.
    """
    h = zlib.crc32(f"{seed}:{kind}:{item}:{attempt}".encode())
    return h / 2.0**32


class FaultInjectingBackingStore:
    """Wrap a backing store and inject deterministic, seeded faults.

    Parameters
    ----------
    inner:
        The real store; all surviving transfers are delegated to it.
    seed:
        Fault schedule seed. Decisions are pure functions of
        ``(seed, kind, item, attempt)``; the ``attempt`` counter is kept
        per ``(kind, item)`` so a retried operation re-rolls (transient
        semantics) while replays with the same seed see identical faults.
    read_error_rate / write_error_rate:
        Probability that a read/write raises :class:`InjectedFault`
        *before* touching the inner store (a clean transient error).
    short_read_rate:
        Probability that a read fills only a prefix of the caller's
        buffer and then raises — the buffer is deliberately left torn to
        catch callers that use it despite the exception.
    short_write_rate:
        Probability that a write lands only a prefix of the payload
        (prefix = new bytes, suffix = previous contents) and then raises
        — a torn page, the classic crash-consistency hazard.
    latency_rate / latency_seconds:
        Probability of (and duration of) an injected latency spike.
    crash_after_writes:
        After this many *successful* writes, the next write raises
        :class:`SimulatedCrash` without transferring anything.
    """

    def __init__(
        self,
        inner: BackingStore,
        *,
        seed: int = 0,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        short_read_rate: float = 0.0,
        short_write_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.0,
        crash_after_writes: int | None = None,
    ) -> None:
        for name, rate in (("read_error_rate", read_error_rate),
                           ("write_error_rate", write_error_rate),
                           ("short_read_rate", short_read_rate),
                           ("short_write_rate", short_write_rate),
                           ("latency_rate", latency_rate)):
            if not 0.0 <= rate <= 1.0:
                raise BackingStoreError(f"{name} must be in [0, 1], got {rate}")
        self.inner = inner
        self.seed = int(seed)
        self.read_error_rate = float(read_error_rate)
        self.write_error_rate = float(write_error_rate)
        self.short_read_rate = float(short_read_rate)
        self.short_write_rate = float(short_write_rate)
        self.latency_rate = float(latency_rate)
        self.latency_seconds = float(latency_seconds)
        self.crash_after_writes = crash_after_writes
        self.faults_injected = 0
        self.crashes_injected = 0
        self.writes_completed = 0
        self._attempts: dict[tuple[str, int], int] = {}
        # Leaf lock: guards the attempt/fault counters only; inner I/O
        # happens outside it, so no ordering edge toward store locks.
        self._lock = make_lock("FaultInjectingBackingStore")
        self._metrics: MetricsRegistry | None = None

    # -- observability hooks: land on the inner store, where I/O happens ------

    @property
    def probe(self) -> "BackingProbe | None":
        return getattr(self.inner, "probe", None)

    @probe.setter
    def probe(self, value: "BackingProbe | None") -> None:
        if hasattr(self.inner, "probe"):
            self.inner.probe = value  # type: ignore[attr-defined]

    @property
    def metrics(self) -> "MetricsRegistry | None":
        return self._metrics

    @metrics.setter
    def metrics(self, value: "MetricsRegistry | None") -> None:
        self._metrics = value
        if hasattr(self.inner, "metrics"):
            self.inner.metrics = value  # type: ignore[attr-defined]

    # -- fault schedule -------------------------------------------------------

    def _roll(self, kind: str, item: int) -> tuple[float, float]:
        """Advance the (kind, item) attempt counter; return two draws.

        The first draw decides the fault itself, the second parameterizes
        it (torn-transfer cut point). Counting per (kind, item) keeps the
        schedule independent of cross-item operation order: the store
        never issues concurrent I/O for one item, so the counter needs no
        further coordination beyond the leaf lock.
        """
        with self._lock:
            attempt = self._attempts.get((kind, item), 0)
            self._attempts[(kind, item)] = attempt + 1
        return (_hash_unit(self.seed, kind, item, attempt),
                _hash_unit(self.seed, kind + "#aux", item, attempt))

    def _record_fault(self) -> None:
        with self._lock:
            self.faults_injected += 1
            if self._metrics is not None:
                self._metrics.inc("backing_faults")

    def _maybe_sleep(self, item: int) -> None:
        if self.latency_rate <= 0.0 or self.latency_seconds <= 0.0:
            return
        draw, _ = self._roll("latency", item)
        if draw < self.latency_rate:
            time.sleep(self.latency_seconds)

    # -- BackingStore interface -----------------------------------------------

    def read(self, item: int, out: np.ndarray) -> None:
        self._maybe_sleep(item)
        draw, aux = self._roll("read", item)
        if draw < self.read_error_rate:
            self._record_fault()
            raise InjectedFault(f"injected transient read error on item {item}")
        draw, aux = self._roll("short_read", item)
        if draw < self.short_read_rate:
            full = np.empty_like(out)
            self.inner.read(item, full)
            flat_out = out.reshape(-1).view(np.uint8)
            flat_new = full.reshape(-1).view(np.uint8)
            cut = max(1, int(aux * flat_out.size)) % max(flat_out.size, 1)
            flat_out[:cut] = flat_new[:cut]
            self._record_fault()
            raise InjectedFault(
                f"injected short read on item {item}: {cut}/{flat_out.size} bytes")
        self.inner.read(item, out)

    def write(self, item: int, data: np.ndarray) -> None:
        if (self.crash_after_writes is not None
                and self.writes_completed >= self.crash_after_writes):
            with self._lock:
                self.crashes_injected += 1
            raise SimulatedCrash(
                f"injected crash-point before write of item {item} "
                f"(after {self.writes_completed} writes)")
        self._maybe_sleep(item)
        draw, aux = self._roll("write", item)
        if draw < self.write_error_rate:
            self._record_fault()
            raise InjectedFault(f"injected transient write error on item {item}")
        draw, aux = self._roll("short_write", item)
        if draw < self.short_write_rate:
            # Torn page: prefix of the new payload over the old suffix.
            old = np.empty_like(data)
            self.inner.read(item, old)
            torn = old.reshape(-1).view(np.uint8).copy()
            flat_new = np.ascontiguousarray(data).reshape(-1).view(np.uint8)
            cut = max(1, int(aux * torn.size)) % max(torn.size, 1)
            torn[:cut] = flat_new[:cut]
            self.inner.write(item, torn.view(data.dtype).reshape(data.shape))
            self._record_fault()
            raise InjectedFault(
                f"injected short write on item {item}: {cut}/{torn.size} bytes")
        self.inner.write(item, data)
        with self._lock:
            self.writes_completed += 1

    def flush(self) -> None:
        self.inner.flush()

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name: str) -> Any:
        if name == "inner":  # guard: no recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.inner, name)


class RetryingBackingStore:
    """Bounded retry with exponential backoff around transient failures.

    Retries :class:`InjectedFault` and ``OSError`` — the transient
    classes — up to ``retries`` times per operation, sleeping
    ``backoff * factor**n`` between attempts. Permanent failures
    (out-of-range items, closed stores: plain
    :class:`~repro.errors.BackingStoreError`) and
    :class:`SimulatedCrash` propagate immediately.

    Each retry increments ``backing_retries`` on the attached metrics
    registry; the terminal give-up re-raises the last error.
    """

    #: Exception classes treated as transient (retried).
    TRANSIENT: tuple[type[BaseException], ...] = (InjectedFault, OSError)

    def __init__(self, inner: BackingStore, *, retries: int = 3,
                 backoff: float = 0.0, factor: float = 2.0) -> None:
        if retries < 0:
            raise BackingStoreError(f"retries must be >= 0, got {retries}")
        self.inner = inner
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.factor = float(factor)
        self.retries_performed = 0
        self.give_ups = 0
        self._lock = make_lock("RetryingBackingStore")
        self._metrics: MetricsRegistry | None = None

    @property
    def probe(self) -> "BackingProbe | None":
        return getattr(self.inner, "probe", None)

    @probe.setter
    def probe(self, value: "BackingProbe | None") -> None:
        if hasattr(self.inner, "probe"):
            self.inner.probe = value  # type: ignore[attr-defined]

    @property
    def metrics(self) -> "MetricsRegistry | None":
        return self._metrics

    @metrics.setter
    def metrics(self, value: "MetricsRegistry | None") -> None:
        self._metrics = value
        if hasattr(self.inner, "metrics"):
            self.inner.metrics = value  # type: ignore[attr-defined]

    def _attempt(self, fn: Any) -> None:
        delay = self.backoff
        for attempt in range(self.retries + 1):
            try:
                fn()
                return
            except self.TRANSIENT:
                if attempt == self.retries:
                    with self._lock:
                        self.give_ups += 1
                    raise
                with self._lock:
                    self.retries_performed += 1
                    if self._metrics is not None:
                        self._metrics.inc("backing_retries")
                if delay > 0.0:
                    time.sleep(delay)
                    delay *= self.factor

    def read(self, item: int, out: np.ndarray) -> None:
        self._attempt(lambda: self.inner.read(item, out))

    def write(self, item: int, data: np.ndarray) -> None:
        self._attempt(lambda: self.inner.write(item, data))

    def flush(self) -> None:
        self._attempt(self.inner.flush)

    def close(self) -> None:
        self.inner.close()

    def __getattr__(self, name: str) -> Any:
        if name == "inner":  # guard: no recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.inner, name)
