"""Asynchronous write-behind: evictions stage their victim, a thread drains it.

The paper's eviction path is synchronous — ``getxvector()`` blocks the
likelihood compute until the victim vector is written out (§3.2). The
:class:`WriteBehindQueue` removes that stall: the store copies the victim
slot into a bounded *staging buffer* and returns immediately; one or more
background writer threads drain staged vectors to the backing store in
FIFO order.

Correctness invariants
----------------------
* **Read-your-writes.** A staged vector stays visible to
  :meth:`read_into` from the moment it is :meth:`put` until its write has
  *completed* — never merely until it has been popped. A demand or
  prefetch read of a recently evicted item is served from the staging
  buffer, not from the (possibly stale) backing store.
* **Coalescing.** Re-staging an item that is already queued overwrites the
  staged copy in place — only the newest version is ever written. If the
  older version is mid-write, a fresh buffer is staged and drains later
  (writes to one item are never concurrent, so the newest data always
  lands last).
* **Back-pressure.** ``put`` blocks while the buffer holds ``depth``
  distinct items (each blocked eviction counts one ``writeback_stalls``).
* **Drain barrier.** :meth:`drain` returns only once every staged vector
  is durable in the backing store; ``flush``/``close``/checkpointing use
  it as their barrier.
* **Fault handling.** A failed write keeps its vector staged (still
  readable), re-queues it for retry and parks the writer until new
  activity; the error surfaces on the next ``drain``/``close``.

Thread model: callers (the compute thread via eviction, the prefetcher via
``read_into``) and ``io_threads`` writer threads synchronise on one
condition variable. Writers never take the vector-store lock, so a caller
may block in ``put`` while holding it without deadlock.
"""

from __future__ import annotations

import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

import numpy as np
from numpy.typing import DTypeLike

from repro.analysis.race import make_condition, make_lock, make_thread, race_detector
from repro.core.backing import BackingStore
from repro.core.stats import IoStats
from repro.errors import OutOfCoreError
from repro.obs.spans import next_span_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.histogram import LogHistogram
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanRecorder
    from repro.obs.tracer import Tracer


class WriteBehindQueue:
    """Bounded staging buffer + background writer thread(s).

    Parameters
    ----------
    backing:
        The :class:`~repro.core.backing.BackingStore` drained into. Must
        tolerate concurrent writes to *distinct* items (all shipped stores
        do; :class:`FileBackingStore` uses positioned I/O).
    item_shape / dtype:
        Geometry of one vector (staging buffers are preallocated lazily
        and pooled, so steady-state operation allocates nothing).
    depth:
        Maximum number of distinct staged items before ``put`` blocks.
    io_threads:
        Number of writer threads (more than one only helps when the
        backing store overlaps operations, e.g. real disk I/O).
    stats:
        The owning store's :class:`IoStats`; this queue updates only the
        ``writeback_writes`` / ``writeback_bytes`` / ``writeback_stalls``
        counters, always under its own lock.
    """

    def __init__(self, backing: BackingStore, item_shape: tuple[int, ...], dtype: DTypeLike,
                 depth: int = 8, io_threads: int = 1,
                 stats: IoStats | None = None) -> None:
        if depth < 1:
            raise OutOfCoreError(f"write-behind depth must be >= 1, got {depth}")
        if io_threads < 1:
            raise OutOfCoreError(f"need at least one writer thread, got {io_threads}")
        self.backing = backing
        self.item_shape = tuple(item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize
        self.depth = int(depth)
        self.stats = stats if stats is not None else IoStats()
        self.stats.writeback_enabled = True
        # Observability hooks (default off): a Tracer receiving
        # enqueue/drain/stall events, a LogHistogram of drain latencies,
        # a MetricsRegistry fed drain-latency observations, and a
        # SpanRecorder receiving drain/stall intervals. Set by
        # AncestralVectorStore.attach_tracer/attach_metrics and
        # repro.obs.Observer.
        self.tracer: Tracer | None = None
        self.drain_hist: LogHistogram | None = None
        self.metrics: MetricsRegistry | None = None
        self.spans: SpanRecorder | None = None

        # Under REPRO_SANITIZE=race the condition's monitor is a tracked
        # lock and writer threads carry start/join clock edges (zero cost
        # otherwise — see repro.analysis.race).
        self._race = race_detector()
        self._race_scope = ("" if self._race is None
                            else self._race.new_scope("WriteBehindQueue"))
        self._cond = make_condition(make_lock("WriteBehindQueue"))
        self._staged: dict[int, np.ndarray] = {}   # guarded-by: _cond  (item -> newest staged copy)
        self._order: deque[int] = deque()          # guarded-by: _cond  (FIFO awaiting a writer)
        self._writing: set[int] = set()            # guarded-by: _cond  (items a writer holds)
        self._pool: list[np.ndarray] = []          # guarded-by: _cond  (recycled staging buffers)
        self._error: BaseException | None = None   # guarded-by: _cond
        self._stop = False                         # guarded-by: _cond
        self._threads = [
            make_thread(self._writer_loop, daemon=True, name=f"writeback-{i}")
            for i in range(int(io_threads))
        ]
        for t in self._threads:
            t.start()

    # -- producer side (the vector store's eviction path) ----------------------

    def put(self, item: int, data: np.ndarray) -> None:
        """Stage ``data`` for asynchronous write-back of ``item``.

        Copies ``data`` (the caller's slot is reusable immediately) and
        returns once the copy is staged, blocking only under back-pressure.
        """
        item = int(item)
        tr = self.tracer
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.write(self._race_scope, "stats.writeback", "_staged",
                         "_order", "_pool")
                rc.read(self._race_scope, "_stop", "_writing")
            if self._stop:
                raise OutOfCoreError("write-behind queue is closed")
            if item in self._staged and item not in self._writing:
                # Coalesce: the queued (not-yet-popped) copy is superseded.
                np.copyto(self._staged[item], data)
                if tr is not None:
                    tr.emit("writeback_enqueue", item=item)
                return
            stalled = False
            stall_t0 = 0.0
            while (len(self._staged) >= self.depth
                   and item not in self._staged) or item in self._writing:
                # Full buffer, or an older version of this item is mid-write
                # (staging a second concurrent copy of the same item would
                # allow two writers to race on one offset).
                if not stalled:
                    stalled = True
                    stall_t0 = time.perf_counter()
                    self.stats.writeback_stalls += 1
                self._cond.wait()
                if self._stop:
                    raise OutOfCoreError("write-behind queue is closed")
            if stalled:
                stall_dur = time.perf_counter() - stall_t0
                if tr is not None:
                    tr.emit("stall", item=item, dur=stall_dur)
                sp = self.spans
                if sp is not None:
                    sp.complete("writeback_stall", stall_t0, stall_dur,
                                {"item": item})
            if item in self._staged:  # re-check after waiting
                np.copyto(self._staged[item], data)
                if tr is not None:
                    tr.emit("writeback_enqueue", item=item)
                return
            buf = self._pool.pop() if self._pool else np.empty(
                self.item_shape, dtype=self.dtype)
            np.copyto(buf, data)
            self._staged[item] = buf
            self._order.append(item)
            if tr is not None:
                tr.emit("writeback_enqueue", item=item)
            self._cond.notify_all()

    def read_into(self, item: int, out: np.ndarray) -> bool:
        """Copy the staged (newest) version of ``item`` into ``out`` if present.

        Returns ``True`` on a staging hit — the caller must then *not* read
        the backing store, whose copy may be stale.
        """
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_staged")
            buf = self._staged.get(int(item))
            if buf is None:
                return False
            np.copyto(out, buf)
            return True

    def pending(self) -> int:
        """Number of items staged but not yet durable."""
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_staged")
            return len(self._staged)

    def counters_snapshot(self) -> dict[str, int]:
        """The writer-owned counters, read under the queue lock.

        Metrics collection uses this instead of trusting the copies it
        took under the *store* lock — those fields are written under this
        lock, so only this snapshot is race-free and consistent.
        """
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "stats.writeback")
            return {
                "writeback_writes": self.stats.writeback_writes,
                "writeback_bytes": self.stats.writeback_bytes,
                "writeback_stalls": self.stats.writeback_stalls,
            }

    # -- barriers ---------------------------------------------------------------

    def drain(self) -> None:
        """Block until every staged vector is durable; re-raise writer errors."""
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_staged", "_writing")
                rc.write(self._race_scope, "_error")
            self._cond.notify_all()  # wake a writer parked after an error
            while True:
                if self._error is not None:
                    err, self._error = self._error, None
                    raise err
                if not self._staged and not self._writing:
                    return
                self._cond.wait()

    def close(self) -> None:
        """Drain, then stop and join the writer threads."""
        try:
            self.drain()
        finally:
            rc = self._race
            with self._cond:
                if rc is not None:
                    rc.write(self._race_scope, "_stop")
                self._stop = True
                self._cond.notify_all()
            for t in self._threads:
                t.join()

    # -- writer side -------------------------------------------------------------

    def _writer_loop(self) -> None:  # thread: writer
        rc = self._race
        # Feature-detect the async submit/collect hooks once (the backing
        # never changes): against an AsyncBackingStore such as the sharded
        # tier, a writer drains every queued victim as one submitted batch
        # — the per-shard in-flight windows keep all workers busy — and
        # only then collects completions, instead of one synchronous
        # round-trip at a time.
        submit = getattr(self.backing, "submit_write", None)
        if callable(submit):
            self._writer_loop_async(submit)
            return
        while True:
            with self._cond:
                if rc is not None:
                    rc.read(self._race_scope, "_stop", "_staged")
                    rc.write(self._race_scope, "_order", "_writing")
                while not self._order and not self._stop:
                    self._cond.wait()
                if self._stop:
                    # close() drains before stopping, so pending entries can
                    # only remain here after a drain that raised; abandon them.
                    return
                item = self._order.popleft()
                buf = self._staged[item]
                self._writing.add(item)
            tr = self.tracer
            try:
                write_t0 = time.perf_counter()
                self.backing.write(item, buf)
                write_dur = time.perf_counter() - write_t0
            except BaseException as exc:  # noqa: BLE001 - surfaced via drain()
                with self._cond:
                    if rc is not None:
                        rc.write(self._race_scope, "_writing", "_order",
                                 "_error")
                    self._writing.discard(item)
                    self._order.append(item)  # keep the data; retry later
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
                    # Park until new activity so a dead backing store does
                    # not spin the writer; drain()/put() wake us to retry.
                    if not self._stop:
                        self._cond.wait()
                continue
            if self.drain_hist is not None:
                self.drain_hist.record(write_dur)
            if tr is not None:
                tr.emit("writeback_drain", item=item, dur=write_dur)
            mx = self.metrics
            if mx is not None:
                mx.observe("writeback_drain_seconds", write_dur)
            sp = self.spans
            if sp is not None:
                sp.complete("writeback_drain", write_t0, write_dur,
                            {"item": item})
            with self._cond:
                if rc is not None:
                    rc.write(self._race_scope, "_writing", "_staged", "_pool",
                             "stats.writeback")
                self._writing.discard(item)
                self.stats.writeback_writes += 1
                self.stats.writeback_bytes += self.item_bytes
                if self._staged.get(item) is buf:
                    del self._staged[item]
                    if len(self._pool) < self.depth:
                        self._pool.append(buf)
                # else: the item was re-staged while we wrote the old copy;
                # the newer version is still queued and drains after us.
                self._cond.notify_all()

    def _writer_loop_async(
            self, submit: "Callable[[int, np.ndarray], Any]") -> None:  # thread: writer
        """Pipelined drain against an ``AsyncBackingStore``.

        Every queued victim is submitted as soon as it is popped —
        ``submit_write`` serialises the staged copy before returning, so
        the buffers are safe the moment each ticket completes — and
        completions are collected one at a time, oldest first, so the
        loop returns to pick up newly staged victims between waits. The
        submission pipe therefore stays full: while one shard's write is
        in flight, victims routed to other shards keep streaming out,
        which is where a multi-worker backing tier earns its overlap.

        A re-staged item can briefly have two writes in flight; they are
        submitted in staging order and the backing applies same-item
        operations in order (the sharded tier's per-shard FIFO), so the
        newest data wins. Failed items follow the synchronous error
        path: the vector stays staged (still readable), is re-queued for
        retry, the first error is parked for ``drain()`` to surface, and
        once the pipe is empty the writer waits for new activity instead
        of spinning.
        """
        rc = self._race
        # Trace-context injection: when spans are on and the backing can
        # scope submits (the sharded tier), every drain gets a span id
        # that the backing threads through its wire header, chaining the
        # worker-side disk span back to this drain.
        scope = getattr(self.backing, "trace_scope", None)
        inflight: deque[tuple[int, np.ndarray, Any, float, int]] = deque()
        while True:
            stopping = False
            with self._cond:
                if rc is not None:
                    rc.read(self._race_scope, "_stop", "_staged")
                    rc.write(self._race_scope, "_order", "_writing")
                while not self._order and not self._stop and not inflight:
                    self._cond.wait()
                stopping = self._stop
                batch: list[tuple[int, np.ndarray]] = []
                if not stopping:
                    while self._order:
                        queued = self._order.popleft()
                        batch.append((queued, self._staged[queued]))
                        self._writing.add(queued)
            if stopping:
                # close() drains before stopping, so tickets can only
                # remain here after a drain that raised; let them settle
                # (the backing is about to be closed) and abandon the
                # queue like the synchronous path does.
                for _item, _buf, ticket, _t0, _sid in inflight:
                    try:
                        ticket.wait()
                    except BaseException:  # noqa: BLE001 - abandoned on stop
                        pass
                return
            failed: list[tuple[int, BaseException]] = []
            for item, buf in batch:
                t0 = time.perf_counter()
                sid = (next_span_id()
                       if self.spans is not None and scope is not None else 0)
                try:
                    if sid:
                        with scope(sid):
                            ticket = submit(item, buf)
                    else:
                        ticket = submit(item, buf)
                    inflight.append((item, buf, ticket, t0, sid))
                except BaseException as exc:  # noqa: BLE001 - surfaced via drain()
                    failed.append((item, exc))
            if inflight:
                item, buf, ticket, t0, sid = inflight.popleft()
                try:
                    ticket.wait()
                except BaseException as exc:  # noqa: BLE001 - surfaced via drain()
                    failed.append((item, exc))
                else:
                    self._finish_async(item, buf, t0, sid)
            if failed:
                self._park_failed(failed, park=not inflight)

    def _finish_async(self, item: int, buf: np.ndarray, t0: float,
                      sid: int = 0) -> None:  # thread: writer
        """Account one completed asynchronous drain (mirrors the sync path)."""
        rc = self._race
        write_dur = time.perf_counter() - t0
        if self.drain_hist is not None:
            self.drain_hist.record(write_dur)
        tr = self.tracer
        if tr is not None:
            tr.emit("writeback_drain", item=item, dur=write_dur)
        mx = self.metrics
        if mx is not None:
            mx.observe("writeback_drain_seconds", write_dur)
        sp = self.spans
        if sp is not None:
            sp.complete("writeback_drain", t0, write_dur, {"item": item},
                        span_id=sid)
        with self._cond:
            if rc is not None:
                rc.write(self._race_scope, "_writing", "_staged", "_pool",
                         "stats.writeback")
            self._writing.discard(item)
            self.stats.writeback_writes += 1
            self.stats.writeback_bytes += self.item_bytes
            if self._staged.get(item) is buf:
                del self._staged[item]
                if len(self._pool) < self.depth:
                    self._pool.append(buf)
            # else: the item was re-staged while this copy drained; the
            # newer version is still queued and drains after us.
            self._cond.notify_all()

    def _park_failed(self, failed: list[tuple[int, BaseException]],
                     park: bool) -> None:  # thread: writer
        """Re-queue failed drains; optionally park until new activity."""
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.write(self._race_scope, "_writing", "_order", "_error")
            for item, exc in failed:
                self._writing.discard(item)
                self._order.append(item)  # keep the data; retry later
                if self._error is None:
                    self._error = exc
            self._cond.notify_all()
            # Park until new activity so a dead backing store does not
            # spin the writer — but never while tickets are still in
            # flight (their completions must be collected promptly).
            if park and not self._stop:
                self._cond.wait()
