"""Slot replacement strategies (paper §3.3).

When ``getxvector()`` misses and every slot is occupied, one resident
vector must be evicted. The paper implements and compares four strategies:

* **Random** — uniform choice, "minimum overhead (one call to a random
  number generator)";
* **LRU** — evict the vector accessed furthest back in time;
* **LFU** — evict the vector accessed least often;
* **Topological** — evict the vector whose tree node is most distant (in
  nodes along the unique path) from the requested node, the rationale being
  that tree-search locality makes distant vectors the least likely to be
  needed soon.

We add two more for ablations: **FIFO** (classic baseline) and **Belady**
(the clairvoyant optimum, usable only when the future access trace is
known — see :mod:`repro.core.trace`).

A policy never sees pinned items: the store filters the candidate list
first, enforcing the paper's constraint that the up-to-three vectors of the
current pruning step stay resident.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import OutOfCoreError
from repro.utils.rng import as_rng


class ReplacementPolicy:
    """Base class: observation hooks + victim selection.

    Subclasses override :meth:`choose_victim` and any of the ``on_*``
    notification hooks they need for bookkeeping. ``item`` ids are the
    store's logical vector indices (``0 .. num_items-1``).
    """

    name = "base"

    def on_access(self, item: int, write_only: bool) -> None:
        """Called on every request for ``item`` (hit or miss, after load)."""

    def on_load(self, item: int) -> None:
        """Called when ``item`` becomes resident."""

    def on_evict(self, item: int) -> None:
        """Called when ``item`` is evicted from RAM."""

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        """Pick the resident item to evict; ``candidates`` is non-empty."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all bookkeeping (store re-initialization)."""


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim — the paper's cheapest strategy."""

    name = "random"

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = as_rng(seed)

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        return candidates[int(self._rng.integers(len(candidates)))]


class LruPolicy(ReplacementPolicy):
    """Least-Recently-Used: evict the oldest access time-stamp.

    The paper keeps "a list of n time-stamps" and searches only among
    resident vectors; we keep a logical clock per item and take the argmin
    over the candidate list.
    """

    name = "lru"

    def __init__(self) -> None:
        self._clock = 0
        self._stamp: dict[int, int] = {}

    def on_access(self, item: int, write_only: bool) -> None:
        self._clock += 1
        self._stamp[item] = self._clock

    def on_evict(self, item: int) -> None:
        # A non-resident item can never be a victim candidate, and it gets a
        # fresh stamp on reload — dropping the entry bounds the dict at the
        # resident set instead of growing over a whole tree search.
        self._stamp.pop(item, None)

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        return min(candidates, key=lambda it: self._stamp.get(it, -1))

    def reset(self) -> None:
        self._clock = 0
        self._stamp.clear()


class LfuPolicy(ReplacementPolicy):
    """Least-Frequently-Used: evict the smallest access count.

    Ties broken by least-recent access so the policy is deterministic.
    The paper finds LFU clearly worst (Fig. 2): hot root-adjacent vectors
    accumulate huge counts early and then pin themselves in RAM even after
    the search moves elsewhere.

    Frequency counts are *deliberately retained across evictions* — that
    retention is what defines this policy's (poor) behaviour in Fig. 2, so
    pruning them on eviction would change the reproduced results. To keep
    memory bounded over an arbitrarily long tree search anyway, the count
    table is capped at ``max_tracked`` entries; when it overflows, the
    coldest half of the entries is dropped (a dropped item re-enters at
    count 0, exactly like ``_count.get(it, 0)`` already treats unknowns).
    Recency stamps are only a tie-breaker and are refreshed on every
    access, so those *are* pruned on eviction.
    """

    name = "lfu"

    def __init__(self, max_tracked: int = 1 << 20) -> None:
        if max_tracked < 1:
            raise OutOfCoreError(f"max_tracked must be >= 1, got {max_tracked}")
        self.max_tracked = int(max_tracked)
        self._count: dict[int, int] = {}
        self._clock = 0
        self._stamp: dict[int, int] = {}

    def on_access(self, item: int, write_only: bool) -> None:
        self._count[item] = self._count.get(item, 0) + 1
        self._clock += 1
        self._stamp[item] = self._clock
        if len(self._count) > self.max_tracked:
            keep = sorted(self._count, key=self._count.get, reverse=True)
            keep = keep[: max(1, self.max_tracked // 2)]
            self._count = {it: self._count[it] for it in keep}

    def on_evict(self, item: int) -> None:
        self._stamp.pop(item, None)

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        return min(
            candidates,
            key=lambda it: (self._count.get(it, 0), self._stamp.get(it, -1)),
        )

    def reset(self) -> None:
        self._count.clear()
        self._stamp.clear()
        self._clock = 0


class FifoPolicy(ReplacementPolicy):
    """First-In-First-Out: evict the longest-resident vector (ablation)."""

    name = "fifo"

    def __init__(self) -> None:
        self._clock = 0
        self._loaded_at: dict[int, int] = {}

    def on_load(self, item: int) -> None:
        self._clock += 1
        self._loaded_at[item] = self._clock

    def on_evict(self, item: int) -> None:
        self._loaded_at.pop(item, None)

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        return min(candidates, key=lambda it: self._loaded_at.get(it, -1))

    def reset(self) -> None:
        self._clock = 0
        self._loaded_at.clear()


class TopologicalPolicy(ReplacementPolicy):
    """Evict the node most distant in the tree from the requested node (§3.3).

    Needs a *distance provider*: a callable mapping a requested item id to
    an array of hop distances indexed by item id. The likelihood engine
    wires this to :meth:`repro.phylo.tree.Tree.hop_distances_from` on the
    current topology (item ``i`` ↔ inner node ``n_tips + i``). Ties are
    broken by least-recently-used so behaviour is deterministic.
    """

    name = "topological"

    def __init__(self, distance_provider: Callable[[int], np.ndarray] | None = None) -> None:
        self.distance_provider = distance_provider
        self._clock = 0
        self._stamp: dict[int, int] = {}

    def on_access(self, item: int, write_only: bool) -> None:
        self._clock += 1
        self._stamp[item] = self._clock

    def on_evict(self, item: int) -> None:
        self._stamp.pop(item, None)

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        if self.distance_provider is None:
            raise OutOfCoreError(
                "TopologicalPolicy needs a distance_provider bound to the tree"
            )
        dist = self.distance_provider(requested)
        return max(candidates, key=lambda it: (dist[it], -self._stamp.get(it, 0)))

    def reset(self) -> None:
        self._clock = 0
        self._stamp.clear()


class ClockPolicy(ReplacementPolicy):
    """CLOCK (second-chance) — the approximation real OS pagers use.

    Items sit on a circular list with a reference bit set on access; the
    clock hand sweeps, clearing bits and evicting the first unreferenced
    item. O(1) amortized per eviction with near-LRU quality — included
    because the paper's Fig. 5 baseline (the OS pager) effectively runs
    this policy, so it quantifies how much the application-level LRU gains
    over what the kernel could do.
    """

    name = "clock"

    def __init__(self) -> None:
        self._ring: list[int] = []
        self._referenced: dict[int, bool] = {}
        self._hand = 0

    def on_load(self, item: int) -> None:
        self._ring.append(item)
        self._referenced[item] = True

    def on_access(self, item: int, write_only: bool) -> None:
        if item in self._referenced:
            self._referenced[item] = True

    def on_evict(self, item: int) -> None:
        try:
            idx = self._ring.index(item)
        except ValueError:
            return
        self._ring.pop(idx)
        if idx < self._hand:
            self._hand -= 1
        self._referenced.pop(item, None)

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        allowed = set(candidates)
        if not self._ring:
            return candidates[0]
        sweeps = 0
        while sweeps < 2 * len(self._ring) + 1:
            if self._hand >= len(self._ring):
                self._hand = 0
            item = self._ring[self._hand]
            if item in allowed:
                if self._referenced.get(item, False):
                    self._referenced[item] = False  # second chance
                else:
                    return item
            self._hand += 1
            sweeps += 1
        # every allowed item kept its reference bit twice (pins elsewhere):
        # fall back to the hand position among candidates
        for offset in range(len(self._ring)):
            item = self._ring[(self._hand + offset) % len(self._ring)]
            if item in allowed:
                return item
        return candidates[0]

    def reset(self) -> None:
        self._ring.clear()
        self._referenced.clear()
        self._hand = 0


class BeladyPolicy(ReplacementPolicy):
    """Clairvoyant optimal replacement (Belady's MIN) for trace replay.

    Evicts the resident vector whose next use lies furthest in the future
    (never-used-again beats everything). Requires the full future access
    sequence, so it is only usable offline via
    :func:`repro.core.trace.simulate_policy_on_trace`; it provides the lower
    bound the implementable strategies are measured against.
    """

    name = "belady"

    def __init__(self, future_items: Iterable[int] = ()) -> None:
        self.load_future(future_items)

    def load_future(self, future_items: Iterable[int]) -> None:
        """Precompute, for each trace position, every item's next-use index."""
        seq = list(future_items)
        self._next_use: dict[int, list[int]] = {}
        for pos, item in enumerate(seq):
            self._next_use.setdefault(item, []).append(pos)
        self._cursor = 0

    def on_access(self, item: int, write_only: bool) -> None:
        uses = self._next_use.get(item)
        if uses and uses[0] <= self._cursor:
            uses.pop(0)
        self._cursor += 1

    def _next(self, item: int) -> int:
        uses = self._next_use.get(item)
        while uses and uses[0] < self._cursor:
            uses.pop(0)
        return uses[0] if uses else 1 << 60

    def choose_victim(self, candidates: Sequence[int], requested: int) -> int:
        return max(candidates, key=self._next)

    def reset(self) -> None:
        self._cursor = 0


_POLICIES = {
    "random": RandomPolicy,
    "lru": LruPolicy,
    "lfu": LfuPolicy,
    "fifo": FifoPolicy,
    "clock": ClockPolicy,
    "topological": TopologicalPolicy,
    "belady": BeladyPolicy,
}


def make_policy(name: str, **kwargs: Any) -> ReplacementPolicy:
    """Instantiate a policy by name (``random|lru|lfu|fifo|topological|belady``).

    ``kwargs`` are forwarded (e.g. ``seed=`` for random,
    ``distance_provider=`` for topological).
    """
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise OutOfCoreError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(**kwargs)


def policy_names() -> list[str]:
    """All registered policy names."""
    return sorted(_POLICIES)
