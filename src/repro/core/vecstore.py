"""The out-of-core ancestral-vector store — the paper's ``getxvector()``.

:class:`AncestralVectorStore` manages ``n`` logical vectors with only
``m = f·n < n`` RAM *slots* (§3.2). Each slot holds exactly one vector; a
vector is at any moment either resident in a slot or in the backing store
(the paper's single binary file). All bookkeeping mirrors the C structs of
§3.2:

====================  =========================================
paper                 here
====================  =========================================
``itemvector[i]``     ``item_slot[i]`` (-1 ⇒ on disk at offset ``i·w``)
``item_in_mem[s]``    ``slot_item[s]`` (-1 ⇒ slot free)
``getxvector(i,j,k)`` ``get(i, pins=(j, k))``
``skipreads``         ``read_skipping`` constructor flag
``strategy``          a :class:`~repro.core.policies.ReplacementPolicy`
====================  =========================================

Correctness contract (paper §4.1): routing vector accesses through this
store must leave likelihood results **bit-identical** to the all-in-RAM
implementation, for every policy and every ``m ≥ 3``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.backing import BackingStore, MemoryBackingStore
from repro.core.policies import ReplacementPolicy, make_policy
from repro.core.stats import IoStats
from repro.errors import OutOfCoreError, PinnedSlotError

#: Smallest legal slot count: computing one ancestral vector needs it plus
#: its two children resident simultaneously (paper: "we must ensure m ≥ 3").
MIN_SLOTS = 3


class AncestralVectorStore:
    """Fixed-capacity slot arena with transparent swap-in/swap-out.

    Parameters
    ----------
    num_items:
        ``n`` — the number of logical vectors (ancestral nodes).
    item_shape:
        Shape of one vector, e.g. ``(patterns, rates, states)``.
    dtype:
        ``float64`` (paper default) or ``float32`` (the single-precision
        memory halving of Berger & Stamatakis 2010).
    num_slots / fraction:
        Capacity ``m``: either an absolute count or the paper's ``f`` with
        ``m = max(MIN_SLOTS, round(f · n))``. ``fraction=1.0`` (default)
        keeps everything resident — the "standard RAxML" configuration.
    policy:
        A policy name or :class:`ReplacementPolicy` instance.
    backing:
        A :class:`BackingStore`; defaults to an in-RAM backing (suitable
        for miss-rate experiments; use a file store for real spill).
    read_skipping:
        Enable §3.4: a miss with ``write_only=True`` allocates a slot but
        skips the disk read.
    track_dirty:
        Beyond-paper option: skip the write-back of vectors never written
        since load ("clean evictions"). Off by default to match the paper,
        which always swaps the full vector out.
    poison_skipped_reads:
        Debug aid: fill read-skipped slots with NaN so a kernel that
        *reads* a write-only vector is caught immediately by tests.
    """

    def __init__(
        self,
        num_items: int,
        item_shape: tuple[int, ...],
        *,
        dtype=np.float64,
        num_slots: int | None = None,
        fraction: float | None = None,
        policy: str | ReplacementPolicy = "lru",
        backing: BackingStore | None = None,
        read_skipping: bool = True,
        track_dirty: bool = False,
        poison_skipped_reads: bool = False,
        policy_kwargs: dict | None = None,
    ) -> None:
        if num_items < 1:
            raise OutOfCoreError(f"need at least one item, got {num_items}")
        self.num_items = int(num_items)
        self.item_shape = tuple(int(d) for d in item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize

        if num_slots is not None and fraction is not None:
            raise OutOfCoreError("pass either num_slots or fraction, not both")
        if num_slots is None:
            f = 1.0 if fraction is None else float(fraction)
            if not 0.0 < f <= 1.0:
                raise OutOfCoreError(f"fraction must be in (0, 1], got {f}")
            num_slots = int(math.floor(f * self.num_items + 0.5))
        num_slots = min(self.num_items, max(MIN_SLOTS, int(num_slots)))
        if self.num_items < MIN_SLOTS:
            num_slots = self.num_items
        self.num_slots = num_slots

        if isinstance(policy, str):
            policy = make_policy(policy, **(policy_kwargs or {}))
        self.policy = policy
        self.backing = backing if backing is not None else MemoryBackingStore(
            self.num_items, self.item_shape, self.dtype
        )
        self.read_skipping = bool(read_skipping)
        self.track_dirty = bool(track_dirty)
        self.poison_skipped_reads = bool(poison_skipped_reads)
        self.stats = IoStats()

        # Slot arena: one contiguous block, vector i occupies slots[s] whole.
        self._slots = np.zeros((self.num_slots, *self.item_shape), dtype=self.dtype)
        self._slot_item = np.full(self.num_slots, -1, dtype=np.int64)   # item_in_mem
        self._item_slot = np.full(self.num_items, -1, dtype=np.int64)   # itemvector
        self._dirty = np.zeros(self.num_slots, dtype=bool)
        self._free: list[int] = list(range(self.num_slots - 1, -1, -1))
        self._ever_stored = np.zeros(self.num_items, dtype=bool)

    # -- introspection -----------------------------------------------------------

    @property
    def fraction(self) -> float:
        """Effective ``f = m / n``."""
        return self.num_slots / self.num_items

    def is_resident(self, item: int) -> bool:
        self._check_item(item)
        return self._item_slot[item] >= 0

    def resident_items(self) -> list[int]:
        return [int(i) for i in self._slot_item if i >= 0]

    def ram_bytes(self) -> int:
        """Bytes the slot arena occupies — the paper's ``m · w`` budget."""
        return self._slots.nbytes

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.num_items:
            raise OutOfCoreError(f"item {item} out of range [0, {self.num_items})")

    # -- the core access path (paper's getxvector) ----------------------------------

    def get(self, item: int, pins: tuple = (), write_only: bool = False) -> np.ndarray:
        """Return the RAM address (a numpy view) of vector ``item``.

        Mirrors ``getxvector(i, pin_j, pin_k)``: if ``item`` is not
        resident, a victim slot is chosen by the replacement strategy —
        never one holding a pinned item — the victim is swapped out, and
        ``item`` is swapped in (read elided under read skipping when
        ``write_only``). The returned view stays valid only until the next
        ``get`` that may evict it; kernels therefore fetch all operands
        with mutual pins, exactly as the paper prescribes for the
        (parent, left child, right child) triple.
        """
        self._check_item(item)
        for p in pins:
            self._check_item(p)
        self.stats.requests += 1

        slot = self._item_slot[item]
        if slot >= 0:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            slot = self._allocate_slot(item, pins)
            if write_only and self.read_skipping:
                self.stats.read_skips += 1
                if self.poison_skipped_reads:
                    self._slots[slot].fill(np.nan)
            else:
                try:
                    self.backing.read(item, self._slots[slot])
                except Exception:
                    # Return the already-vacated slot to the free list so a
                    # failed swap-in cannot leak capacity (the evicted
                    # victim was written out before the read was attempted).
                    self._free.append(slot)
                    raise
                self.stats.reads += 1
                self.stats.bytes_read += self.item_bytes
            self._slot_item[slot] = item
            self._item_slot[item] = slot
            self._dirty[slot] = False
            self.policy.on_load(item)

        if write_only:
            self._dirty[slot] = True
            self._ever_stored[item] = True
        self.policy.on_access(item, write_only)
        return self._slots[slot]

    def mark_dirty(self, item: int) -> None:
        """Declare that a vector obtained read-mostly was actually modified."""
        self._check_item(item)
        slot = self._item_slot[item]
        if slot < 0:
            raise OutOfCoreError(f"item {item} is not resident")
        self._dirty[slot] = True
        self._ever_stored[item] = True

    def _allocate_slot(self, item: int, pins: tuple) -> int:
        if self._free:
            return self._free.pop()
        pinned = {int(p) for p in pins}
        candidates = [int(i) for i in self._slot_item if i >= 0 and int(i) not in pinned]
        if not candidates:
            raise PinnedSlotError(
                f"all {self.num_slots} slots pinned while requesting item {item} "
                f"(pins={sorted(pinned)}); the store needs at least "
                f"{len(pinned) + 1} slots"
            )
        victim = int(self.policy.choose_victim(candidates, item))
        if victim not in candidates:
            raise OutOfCoreError(
                f"policy {self.policy.name!r} chose non-candidate victim {victim}"
            )
        vslot = int(self._item_slot[victim])
        self._evict(victim, vslot)
        return vslot

    def _evict(self, item: int, slot: int) -> None:
        if self.track_dirty and not self._dirty[slot]:
            self.stats.write_skips += 1
        else:
            self.backing.write(item, self._slots[slot])
            self.stats.writes += 1
            self.stats.bytes_written += self.item_bytes
        self._item_slot[item] = -1
        self._slot_item[slot] = -1
        self._dirty[slot] = False
        self.policy.on_evict(item)

    # -- bulk operations ----------------------------------------------------------

    def flush(self) -> None:
        """Write every resident vector back to the backing store (kept resident)."""
        for slot in range(self.num_slots):
            item = int(self._slot_item[slot])
            if item >= 0:
                self.backing.write(item, self._slots[slot])
                self.stats.writes += 1
                self.stats.bytes_written += self.item_bytes
                self._dirty[slot] = False

    def evict_all(self) -> None:
        """Empty every slot (vectors written back); used between experiment phases."""
        for slot in range(self.num_slots):
            item = int(self._slot_item[slot])
            if item >= 0:
                self._evict(item, slot)
                self._free.append(slot)

    def read_item(self, item: int) -> np.ndarray:
        """Copy of a vector's current contents, resident or not (no stats impact).

        For verification/debugging only — production code uses :meth:`get`.
        """
        self._check_item(item)
        slot = self._item_slot[item]
        if slot >= 0:
            return self._slots[slot].copy()
        out = np.empty(self.item_shape, dtype=self.dtype)
        self.backing.read(item, out)
        return out

    def validate(self) -> None:
        """Internal-consistency check of the two-way slot/item maps."""
        for slot in range(self.num_slots):
            item = int(self._slot_item[slot])
            if item >= 0 and int(self._item_slot[item]) != slot:
                raise OutOfCoreError(f"slot {slot} ↦ item {item} ↦ slot "
                                     f"{int(self._item_slot[item])} mismatch")
        for item in range(self.num_items):
            slot = int(self._item_slot[item])
            if slot >= 0 and int(self._slot_item[slot]) != item:
                raise OutOfCoreError(f"item {item} ↦ slot {slot} ↦ item "
                                     f"{int(self._slot_item[slot])} mismatch")
        resident = sum(1 for i in self._slot_item if i >= 0)
        if resident + len(self._free) != self.num_slots:
            raise OutOfCoreError("free-list/resident accounting mismatch")

    def close(self) -> None:
        self.backing.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AncestralVectorStore(n={self.num_items}, m={self.num_slots}, "
            f"policy={self.policy.name}, w={self.item_bytes}B)"
        )
