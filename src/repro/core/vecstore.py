"""The out-of-core ancestral-vector store — the paper's ``getxvector()``.

:class:`AncestralVectorStore` manages ``n`` logical vectors with only
``m = f·n < n`` RAM *slots* (§3.2). Each slot holds exactly one vector; a
vector is at any moment either resident in a slot or in the backing store
(the paper's single binary file). All bookkeeping mirrors the C structs of
§3.2:

====================  =========================================
paper                 here
====================  =========================================
``itemvector[i]``     ``item_slot[i]`` (-1 ⇒ on disk at offset ``i·w``)
``item_in_mem[s]``    ``slot_item[s]`` (-1 ⇒ slot free)
``getxvector(i,j,k)`` ``get(i, pins=(j, k))``
``skipreads``         ``read_skipping`` constructor flag
``strategy``          a :class:`~repro.core.policies.ReplacementPolicy`
====================  =========================================

Correctness contract (paper §4.1): routing vector accesses through this
store must leave likelihood results **bit-identical** to the all-in-RAM
implementation, for every policy and every ``m ≥ 3`` — including when the
asynchronous I/O pipeline below is active.

Asynchronous I/O pipeline (paper §5 future work)
------------------------------------------------
The store optionally overlaps I/O with likelihood compute:

* **Write-behind** (``writeback_depth > 0``): evictions copy the victim
  slot into a bounded :class:`~repro.core.writebehind.WriteBehindQueue`
  instead of writing synchronously; background writer threads drain it.
  Reads consult the staging buffer first (read-your-writes), ``flush``/
  ``close`` use its ``drain()`` barrier.
* **Prefetch** (:class:`~repro.core.prefetch.ThreadedPrefetcher` or the
  synchronous model in :class:`~repro.core.prefetch.Prefetcher`): upcoming
  read items from the traversal access sequence are loaded ahead of demand
  via :meth:`prefetch_load`, which never steals a slot from pinned,
  in-flight or caller-protected items.

Thread model: one compute thread calls ``get``; at most one prefetch
thread calls ``prefetch_load``; writer threads live inside the write-behind
queue and never take the store lock. All mutable bookkeeping is guarded by
one condition variable (``self._cond``). A slot being filled is *published*
in the maps but marked in-flight: demand requests for it wait on its event,
and eviction never selects in-flight items, so no thread ever reads or
recycles a half-filled slot. Backing-store transfers happen outside the
lock — that is the whole point of the pipeline.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import TYPE_CHECKING, Any, Iterable
import weakref

import numpy as np
from numpy.typing import DTypeLike

from repro.analysis.race import make_condition, make_lock, race_detector
from repro.core.backing import BackingStore, MemoryBackingStore
from repro.core.layout import StorageLayout, WholeVectorLayout
from repro.core.policies import ReplacementPolicy, make_policy
from repro.core.stats import IoStats
from repro.core.writebehind import WriteBehindQueue
from repro.errors import BorrowError, OutOfCoreError, PinnedSlotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

#: Smallest legal slot count: computing one ancestral vector needs it plus
#: its two children resident simultaneously (paper: "we must ensure m ≥ 3").
MIN_SLOTS = 3


def _sanitize_default() -> bool:
    """The slot-borrow sanitizer defaults on when ``REPRO_SANITIZE=1``."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class BorrowedSlotView(np.ndarray):
    """Debug-mode slot view that detects use-after-evict.

    Under the sanitizer every view handed out by
    :meth:`AncestralVectorStore.get` is one of these instead of a plain
    ndarray. The view remembers its slot's generation at issue time; the
    store bumps the per-slot generation on every eviction, so any element
    access, assignment or ufunc touching a view whose slot has since been
    recycled raises :class:`~repro.errors.BorrowError` instead of silently
    reading another vector's data.

    Derived arrays (slices, ufunc results) are downcast to plain ndarray:
    only the originally borrowed view is validity-checked, which keeps the
    numerics bit-identical and the overhead local to the borrow boundary.
    """

    # Class-level defaults so instances numpy creates internally (e.g. via
    # __array_finalize__ during slicing) are inert rather than half-tracked.
    _borrow_generations: np.ndarray | None = None
    _borrow_slot: int = -1
    _borrow_expected: int = -1
    _borrow_item: int = -1

    def _borrow_check(self) -> None:
        gens = self._borrow_generations
        if gens is None:
            return
        # lockfree-ok: single aligned int64 load; the generation is bumped
        # under the store lock strictly before the slot can be reused, so a
        # stale read here only ever delays detection by one access.
        if int(gens[self._borrow_slot]) != self._borrow_expected:
            raise BorrowError(
                f"use-after-evict: view of item {self._borrow_item} "
                f"(slot {self._borrow_slot}) used after the slot was "
                f"recycled; re-fetch the vector with get() or hold a pin"
            )

    def _borrow_plain(self) -> np.ndarray:
        return self.view(np.ndarray)

    def __getitem__(self, key: Any) -> Any:
        self._borrow_check()
        out = super().__getitem__(key)
        if isinstance(out, BorrowedSlotView):
            out = out.view(np.ndarray)
        return out

    def __setitem__(self, key: Any, value: Any) -> None:
        self._borrow_check()
        super().__setitem__(key, value)

    def __array_ufunc__(self, ufunc: Any, method: str,
                        *inputs: Any, **kwargs: Any) -> Any:
        out = kwargs.get("out", ())
        for operand in (*inputs, *out):
            if isinstance(operand, BorrowedSlotView):
                operand._borrow_check()
        inputs = tuple(x._borrow_plain() if isinstance(x, BorrowedSlotView)
                       else x for x in inputs)
        if out:
            kwargs["out"] = tuple(
                x._borrow_plain() if isinstance(x, BorrowedSlotView) else x
                for x in out)
        return getattr(ufunc, method)(*inputs, **kwargs)

    def __array_function__(self, func: Any, types: Any,
                           args: Any, kwargs: Any) -> Any:
        def strip(obj: Any) -> Any:
            if isinstance(obj, BorrowedSlotView):
                obj._borrow_check()
                return obj._borrow_plain()
            if isinstance(obj, (list, tuple)):
                return type(obj)(strip(x) for x in obj)
            return obj

        return func(*strip(args), **{k: strip(v) for k, v in kwargs.items()})


class AncestralVectorStore:
    """Fixed-capacity slot arena with transparent swap-in/swap-out.

    Parameters
    ----------
    num_items:
        ``n`` — the number of paged items. With the default whole-vector
        layout this is the number of logical vectors (ancestral nodes).
    item_shape:
        Shape of one paged item, e.g. ``(patterns, rates, states)``.
    layout:
        Alternative to ``num_items``/``item_shape``: a
        :class:`~repro.core.layout.StorageLayout` from which the item
        geometry is derived. The store itself stays item-granular — the
        layout only fixes the geometry and travels along so consumers
        (engines, policies, traces) can map items back to nodes. When
        omitted, a :class:`~repro.core.layout.WholeVectorLayout` over
        ``num_items × item_shape`` is assumed (the paper's design).
    dtype:
        ``float64`` (paper default) or ``float32`` (the single-precision
        memory halving of Berger & Stamatakis 2010).
    num_slots / fraction:
        Capacity ``m``: either an absolute count or the paper's ``f`` with
        ``m = max(MIN_SLOTS, round(f · n))``. ``fraction=1.0`` (default)
        keeps everything resident — the "standard RAxML" configuration.
    policy:
        A policy name or :class:`ReplacementPolicy` instance.
    backing:
        A :class:`BackingStore`; defaults to an in-RAM backing (suitable
        for miss-rate experiments; use a file store for real spill).
    read_skipping:
        Enable §3.4: a miss with ``write_only=True`` allocates a slot but
        skips the disk read.
    track_dirty:
        Beyond-paper option: skip the write-back of vectors never written
        since load ("clean evictions"). Off by default to match the paper,
        which always swaps the full vector out.
    poison_skipped_reads:
        Debug aid: fill read-skipped slots with NaN so a kernel that
        *reads* a write-only vector is caught immediately by tests.
    writeback_depth:
        ``> 0`` enables asynchronous write-behind with a staging buffer of
        that many vectors; ``0`` (default) keeps the paper's synchronous
        eviction write.
    io_threads:
        Writer threads draining the write-behind queue (ignored when
        write-behind is off).
    sanitize:
        Enable the debug-mode slot-borrow sanitizer: ``get`` returns
        generation-checked :class:`BorrowedSlotView` objects that raise
        :class:`~repro.errors.BorrowError` on use-after-evict. Defaults to
        the ``REPRO_SANITIZE`` environment variable (``1`` = on).
    tracer:
        Optional :class:`repro.obs.tracer.Tracer` receiving one structured
        event per store transition (get/hit/miss/evict/...). Purely
        passive: attaching a tracer changes no allocation, eviction or
        counter decision. ``None`` (default) compiles every emission site
        down to a single ``is None`` test.
    """

    def __init__(
        self,
        num_items: int | None = None,
        item_shape: tuple[int, ...] | None = None,
        *,
        layout: StorageLayout | None = None,
        dtype: DTypeLike = np.float64,
        num_slots: int | None = None,
        fraction: float | None = None,
        policy: str | ReplacementPolicy = "lru",
        backing: BackingStore | None = None,
        read_skipping: bool = True,
        track_dirty: bool = False,
        poison_skipped_reads: bool = False,
        policy_kwargs: dict | None = None,
        writeback_depth: int = 0,
        io_threads: int = 1,
        sanitize: bool | None = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if layout is None:
            if num_items is None or item_shape is None:
                raise OutOfCoreError(
                    "pass num_items and item_shape, or a StorageLayout")
            if num_items < 1:
                raise OutOfCoreError(f"need at least one item, got {num_items}")
            layout = WholeVectorLayout(int(num_items), tuple(item_shape))
        else:
            if num_items is not None and int(num_items) != layout.num_items:
                raise OutOfCoreError(
                    f"num_items={num_items} contradicts layout "
                    f"({layout.num_items} items)")
            if (item_shape is not None
                    and tuple(int(d) for d in item_shape) != layout.item_shape):
                raise OutOfCoreError(
                    f"item_shape={tuple(item_shape)} contradicts layout "
                    f"(items of {layout.item_shape})")
        self.layout = layout
        self.num_items = layout.num_items
        self.item_shape = layout.item_shape
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize

        if num_slots is not None and fraction is not None:
            raise OutOfCoreError("pass either num_slots or fraction, not both")
        if num_slots is None:
            f = 1.0 if fraction is None else float(fraction)
            if not 0.0 < f <= 1.0:
                raise OutOfCoreError(f"fraction must be in (0, 1], got {f}")
            num_slots = int(math.floor(f * self.num_items + 0.5))
        num_slots = min(self.num_items, max(MIN_SLOTS, int(num_slots)))
        if self.num_items < MIN_SLOTS:
            num_slots = self.num_items
        self.num_slots = num_slots

        if isinstance(policy, str):
            policy = make_policy(policy, **(policy_kwargs or {}))
        self.policy = policy
        self.backing = backing if backing is not None else MemoryBackingStore(
            self.num_items, self.item_shape, self.dtype
        )
        self.read_skipping = bool(read_skipping)
        self.track_dirty = bool(track_dirty)
        self.poison_skipped_reads = bool(poison_skipped_reads)
        self.stats = IoStats()
        # Deferred writes (``fill``) that found their item evicted and had
        # to go straight to staging/backing. Diagnostic only — deliberately
        # *not* an IoStats counter, since fills are outside the demand/
        # eviction trace whose parity the counters certify.
        self.fill_spills = 0  # guarded-by: _lock

        # Slot arena: one contiguous block, vector i occupies slots[s] whole.
        # The arena itself is NOT lock-guarded: a slot's data is only touched
        # by the thread that holds it in-flight or by the compute thread while
        # the mapping says so (see the module docstring's thread model).
        self._slots = np.zeros((self.num_slots, *self.item_shape), dtype=self.dtype)
        self._slot_item = np.full(self.num_slots, -1, dtype=np.int64)   # guarded-by: _lock  (item_in_mem)
        self._item_slot = np.full(self.num_items, -1, dtype=np.int64)   # guarded-by: _lock  (itemvector)
        self._dirty = np.zeros(self.num_slots, dtype=bool)  # guarded-by: _lock
        self._free: list[int] = list(range(self.num_slots - 1, -1, -1))  # guarded-by: _lock
        self._ever_stored = np.zeros(self.num_items, dtype=bool)  # guarded-by: _lock

        # Async-pipeline state (see the module docstring's thread model).
        # Under REPRO_SANITIZE=race the factories return vector-clock
        # tracked primitives and the hooks below record every guarded
        # access; otherwise they are plain threading objects and each
        # hook site is one ``is None`` test (pay-for-play, like tracer).
        self._race = race_detector()
        self._race_scope = ("" if self._race is None
                            else self._race.new_scope("AncestralVectorStore"))
        self._lock = make_lock("AncestralVectorStore")
        self._cond = make_condition(self._lock)
        self._inflight: dict[int, threading.Event] = {}  # guarded-by: _lock
        self._prefetched_untouched: set[int] = set()  # guarded-by: _lock
        self._active_pins: set[int] = set()  # guarded-by: _lock
        self._writeback: WriteBehindQueue | None = None

        # Slot-borrow sanitizer (debug mode, REPRO_SANITIZE=1): per-slot
        # generation counters plus weakrefs to every live borrowed view.
        self._sanitize = _sanitize_default() if sanitize is None else bool(sanitize)
        self._slot_generation = np.zeros(self.num_slots, dtype=np.int64)  # guarded-by: _lock
        self._borrows: list[weakref.ref] = []  # guarded-by: _lock
        # Observability hooks (default off). Written only from the compute
        # thread via attach_tracer/attach_metrics; emissions themselves are
        # lock-free (the tracer's ring append is GIL-atomic), so reading
        # the references without the lock from the prefetch path is safe.
        self._tracer: Tracer | None = None
        self._metrics: MetricsRegistry | None = None
        if int(writeback_depth) > 0:
            self._writeback = WriteBehindQueue(
                self.backing, self.item_shape, self.dtype,
                depth=int(writeback_depth), io_threads=int(io_threads),
                stats=self.stats,
            )
        if tracer is not None:
            self.attach_tracer(tracer)

    # -- introspection -----------------------------------------------------------

    @property
    def fraction(self) -> float:
        """Effective ``f = m / n``."""
        return self.num_slots / self.num_items

    @property
    def writeback(self) -> WriteBehindQueue | None:
        """The write-behind queue, or ``None`` when evictions are synchronous."""
        return self._writeback

    @property
    def tracer(self) -> "Tracer | None":
        """The attached event tracer, or ``None`` when tracing is off."""
        return self._tracer

    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Attach (or with ``None`` detach) a structured event tracer.

        Propagates to the write-behind queue so enqueue/drain/stall events
        land in the same ring. Call from the compute thread only, ideally
        before the workload starts.
        """
        self._tracer = tracer
        if self._writeback is not None:
            self._writeback.tracer = tracer

    @property
    def metrics(self) -> "MetricsRegistry | None":
        """The attached metrics registry, or ``None`` when metrics are off."""
        return self._metrics

    def attach_metrics(self, registry: "MetricsRegistry | None") -> None:
        """Attach (or with ``None`` detach) a live metrics registry.

        Registers a pull collector that copies the store's counters and
        slot/queue gauges into the registry at scrape/snapshot time — the
        demand path itself is untouched (passivity) — and propagates the
        registry to the backing store and write-behind queue so
        physical-I/O latency histograms land in the same place. Call from
        the compute thread only, ideally before the workload starts.
        """
        old = self._metrics
        if old is not None:
            old.unregister_collector(self._collect_metrics)
        self._metrics = registry
        backing_any: Any = self.backing
        if hasattr(backing_any, "metrics"):
            backing_any.metrics = registry
        if self._writeback is not None:
            self._writeback.metrics = registry
        if registry is not None:
            registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Pull collector: copy counters and live gauges into the registry.

        Runs on whichever thread scrapes/snapshots. The counter block is
        read under the store lock (one consistent cut); the write-behind
        queue depth is read after releasing it, respecting the
        store-lock → queue-lock order.
        """
        registry = self._metrics
        if registry is None:
            return
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "stats.store", "_free", "_dirty",
                        "_inflight", "_prefetched_untouched")
            counters = dict(self.stats._counters())
            occupied = self.num_slots - len(self._free)
            dirty = int(np.count_nonzero(self._dirty))
            inflight = len(self._inflight)
            untouched = len(self._prefetched_untouched)
        wb = self._writeback
        if wb is not None:
            # The writer-owned counters just read under the store lock are
            # stale/racy snapshots — discard them and re-read under the
            # queue lock (store-lock -> queue-lock order, one clean cut).
            counters.update(wb.counters_snapshot())
        for name, value in counters.items():
            registry.counter_set(name, value)
        registry.gauge_set("slots_total", self.num_slots)
        registry.gauge_set("slots_occupied", occupied)
        registry.gauge_set("slots_dirty", dirty)
        registry.gauge_set("loads_inflight", inflight)
        registry.gauge_set("prefetch_untouched", untouched)
        registry.gauge_set("writeback_queue_depth",
                           wb.pending() if wb is not None else 0)
        tr = self._tracer
        if tr is not None:
            # Ring overwrites would otherwise be silent: a truncated
            # trace export is detectable from any scrape/snapshot even
            # without an Observer attached.
            registry.counter_set("trace_events_emitted", tr.emitted)
            registry.counter_set("trace_events_dropped", tr.dropped)

    def is_resident(self, item: int) -> bool:
        self._check_item(item)
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_item_slot")
            return bool(self._item_slot[item] >= 0)

    def resident_items(self) -> list[int]:
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_slot_item")
            return [int(i) for i in self._slot_item if i >= 0]

    def ram_bytes(self) -> int:
        """Bytes the slot arena occupies — the paper's ``m · w`` budget."""
        return self._slots.nbytes

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.num_items:
            raise OutOfCoreError(f"item {item} out of range [0, {self.num_items})")

    # -- the core access path (paper's getxvector) ----------------------------------

    def get(self, item: int, pins: tuple = (), write_only: bool = False) -> np.ndarray:
        """Return the RAM address (a numpy view) of vector ``item``.

        Mirrors ``getxvector(i, pin_j, pin_k)``: if ``item`` is not
        resident, a victim slot is chosen by the replacement strategy —
        never one holding a pinned or in-flight item — the victim is
        swapped out, and ``item`` is swapped in (read elided under read
        skipping when ``write_only``). The returned view stays valid only
        until the next ``get`` that may evict it; kernels therefore fetch
        all operands with mutual pins, exactly as the paper prescribes for
        the (parent, left child, right child) triple. The pins of the most
        recent ``get`` additionally shield those operands from a concurrent
        prefetcher until the next demand access.
        """
        item = int(item)
        self._check_item(item)
        for p in pins:
            self._check_item(p)
        tr = self._tracer
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.write(self._race_scope, "stats.store", "_active_pins")
            self.stats.requests += 1
            if tr is not None:
                tr.emit("get", item=item)
            self._active_pins = {item, *(int(p) for p in pins)}
            self._cond.notify_all()  # progress signal for a prefetch thread

        while True:
            wait_ev = None
            with self._cond:
                if rc is not None:
                    rc.read(self._race_scope, "_item_slot", "_inflight")
                slot = int(self._item_slot[item])
                ev = self._inflight.get(item)
                if ev is None and slot >= 0:
                    return self._account_hit(item, slot, write_only)
                if ev is not None:
                    wait_ev = ev
                else:
                    self.stats.misses += 1
                    slot = self._allocate_slot(item, pins)
                    if tr is not None:
                        tr.emit("miss", item=item, slot=slot)
                    if write_only and self.read_skipping:
                        self.stats.read_skips += 1
                        if tr is not None:
                            tr.emit("read_skip", item=item, slot=slot)
                        if self.poison_skipped_reads:
                            self._slots[slot].fill(np.nan)
                        self._publish(item, slot)
                        self.policy.on_load(item)
                        return self._finish_load(item, slot, write_only)
                    # Publish the mapping, mark in-flight and read outside
                    # the lock so a prefetch thread can keep working.
                    self._publish(item, slot)
                    if rc is not None:
                        rc.write(self._race_scope, "_inflight")
                    self._inflight[item] = threading.Event()
            if wait_ev is not None:
                # A prefetch load of this exact item is in flight: wait for
                # it, then re-enter — the hit branch accounts it.
                wait_ev.wait()
                continue
            try:
                read_t0 = time.perf_counter() if tr is not None else 0.0
                from_staging = self._read_into_slot(item, slot)
            except Exception:
                # Return the already-vacated slot to the free list so a
                # failed swap-in cannot leak capacity (the evicted victim
                # was staged/written out before the read was attempted).
                with self._cond:
                    if rc is not None:
                        rc.write(self._race_scope, "_item_slot", "_slot_item",
                                 "_free", "_inflight")
                    self._item_slot[item] = -1
                    self._slot_item[slot] = -1
                    self._free.append(slot)
                    done = self._inflight.pop(item, None)
                    if done is not None:
                        done.set()
                    self._cond.notify_all()
                raise
            with self._cond:
                if rc is not None:
                    rc.write(self._race_scope, "stats.store", "_inflight")
                self.stats.reads += 1
                self.stats.bytes_read += self.item_bytes
                if tr is not None:
                    tr.emit("demand_read", item=item, slot=slot,
                            dur=time.perf_counter() - read_t0)
                if from_staging:
                    self.stats.writeback_read_hits += 1
                self.policy.on_load(item)
                done = self._inflight.pop(item, None)
                if done is not None:
                    done.set()
                self._cond.notify_all()
                return self._finish_load(item, slot, write_only)

    def _account_hit(self, item: int, slot: int, write_only: bool) -> np.ndarray:  # holds: _cond
        """Stats + policy bookkeeping for a request that found ``item`` resident.

        A first demand touch of a prefetched slot is charged as the miss
        plus read — or read skip, when write-only under read skipping —
        that it would have been without prefetch (see ``repro.core.stats``),
        so the Fig. 2–4 demand metrics are independent of prefetching.
        """
        tr = self._tracer
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "stats.store", "_prefetched_untouched",
                     "_dirty", "_ever_stored")
        if item in self._prefetched_untouched:
            self._prefetched_untouched.discard(item)
            self.stats.misses += 1
            if tr is not None:
                tr.emit("miss", item=item, slot=slot)
            if write_only and self.read_skipping:
                # Without prefetch this miss would have skipped its read
                # (§3.4) — the prefetched bytes were wasted, not a hit.
                self.stats.read_skips += 1
                self.stats.prefetch_unused += 1
                if tr is not None:
                    tr.emit("read_skip", item=item, slot=slot)
                if self.poison_skipped_reads:
                    self._slots[slot].fill(np.nan)
            else:
                self.stats.reads += 1
                self.stats.bytes_read += self.item_bytes
                self.stats.prefetch_hits += 1
                if tr is not None:
                    # dur=0: the physical read already happened at
                    # prefetch_issue time; this records the demand charge.
                    tr.emit("demand_read", item=item, slot=slot)
                    tr.emit("prefetch_hit", item=item, slot=slot)
        else:
            self.stats.hits += 1
            if tr is not None:
                tr.emit("hit", item=item, slot=slot)
        if write_only:
            self._dirty[slot] = True
            self._ever_stored[item] = True
        self.policy.on_access(item, write_only)
        return self._issue_view(item, slot)

    def _finish_load(self, item: int, slot: int, write_only: bool) -> np.ndarray:  # holds: _cond
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "_dirty", "_ever_stored")
        self._dirty[slot] = False
        if write_only:
            self._dirty[slot] = True
            self._ever_stored[item] = True
        self.policy.on_access(item, write_only)
        return self._issue_view(item, slot)

    def _issue_view(self, item: int, slot: int) -> np.ndarray:  # holds: _cond
        """The ndarray handed back by ``get`` — sanitizer-wrapped in debug mode."""
        rc = self._race
        if rc is not None:
            rc.read(self._race_scope, "_slot_generation")
            rc.write(self._race_scope, "_borrows")
        if not self._sanitize:
            return self._slots[slot]
        view = self._slots[slot].view(BorrowedSlotView)
        view._borrow_generations = self._slot_generation
        view._borrow_slot = slot
        view._borrow_expected = int(self._slot_generation[slot])
        view._borrow_item = item
        self._borrows = [r for r in self._borrows if r() is not None]
        self._borrows.append(weakref.ref(view))
        return view

    def active_borrows(self) -> int:
        """Live sanitizer-tracked views (0 when the sanitizer is off)."""
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.write(self._race_scope, "_borrows")
            self._borrows = [r for r in self._borrows if r() is not None]
            return len(self._borrows)

    def _publish(self, item: int, slot: int) -> None:  # holds: _cond
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "_slot_item", "_item_slot", "_dirty")
        self._slot_item[slot] = item
        self._item_slot[item] = slot
        self._dirty[slot] = False

    def _read_into_slot(self, item: int, slot: int) -> bool:
        """Fill a slot from the staging buffer or the backing store.

        Returns ``True`` when served by the write-behind staging buffer
        (whose copy is newer than the backing store's — read-your-writes).
        """
        if self._writeback is not None and \
                self._writeback.read_into(item, self._slots[slot]):
            return True
        self.backing.read(item, self._slots[slot])
        return False

    def mark_dirty(self, item: int) -> None:
        """Declare that a vector obtained read-mostly was actually modified."""
        self._check_item(item)
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_item_slot")
                rc.write(self._race_scope, "_dirty", "_ever_stored")
            slot = self._item_slot[item]
            if slot < 0:
                raise OutOfCoreError(f"item {item} is not resident")
            self._dirty[slot] = True
            self._ever_stored[item] = True

    def fill(self, item: int, data: np.ndarray) -> None:
        """Out-of-band completion of an earlier write-only ``get``.

        The batched execution path fetches each group member's target
        write-only at its exact position in the access sequence but
        computes the contents only after the whole group's operands are
        stacked; ``fill`` then lands the result wherever the item now
        lives. ``data`` covers the leading ``data.shape[0]`` rows of the
        item (a ragged last block leaves the slot's padding rows as they
        were — exactly what an in-place kernel write would have done).

        This is *not* an access: no counter moves and the replacement
        policy is not consulted, so the demand/eviction parity of the
        surrounding ``get`` sequence is preserved by construction. Three
        cases:

        * resident → copy into the slot (its write-only ``get`` already
          marked it dirty; re-mark anyway in case a racing prefetch
          reloaded it clean);
        * evicted since the write-only ``get`` → the eviction persisted
          stale bytes; write the real ones through the write-behind
          queue (coalescing — newest copy wins) or straight to backing;
        * load in flight (prefetch) → wait for it, then overwrite the
          slot, so a reload of pre-fill bytes can never win the race.
        """
        item = int(item)
        self._check_item(item)
        span = int(data.shape[0])
        staged = False
        rc = self._race
        while True:
            wait_ev = None
            with self._cond:
                if rc is not None:
                    rc.read(self._race_scope, "_inflight", "_item_slot")
                wait_ev = self._inflight.get(item)
                if wait_ev is None:
                    slot = int(self._item_slot[item])
                    if slot >= 0:
                        if rc is not None:
                            rc.write(self._race_scope, "_dirty", "_ever_stored")
                        self._slots[slot][:span] = data
                        self._dirty[slot] = True
                        self._ever_stored[item] = True
                        return
                    if staged:
                        # Persisted below and still non-resident: any get
                        # from here on reads the staged/written copy.
                        return
            if wait_ev is not None:
                wait_ev.wait()
                continue
            # Non-resident: persist a full-size buffer out-of-band, then
            # re-check — a prefetch that raced us and loaded stale bytes
            # is overwritten in-slot on the next pass.
            buf = np.zeros(self.item_shape, dtype=self.dtype)
            buf[:span] = data
            if self._writeback is not None:
                self._writeback.put(item, buf)
            else:
                self.backing.write(item, buf)
            with self._cond:
                if rc is not None:
                    rc.write(self._race_scope, "_ever_stored", "fill_spills")
                self._ever_stored[item] = True
                self.fill_spills += 1
            staged = True

    def _allocate_slot(self, item: int, pins: tuple) -> int:  # holds: _cond
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "_free")
            rc.read(self._race_scope, "_slot_item", "_inflight")
        if self._free:
            return self._free.pop()
        excluded = {int(p) for p in pins} | set(self._inflight)
        candidates = [int(i) for i in self._slot_item
                      if i >= 0 and int(i) not in excluded]
        if not candidates:
            raise PinnedSlotError(
                f"all {self.num_slots} slots pinned while requesting item {item} "
                f"(pins={sorted(excluded)}); the store needs at least "
                f"{len(excluded) + 1} slots"
            )
        victim = int(self.policy.choose_victim(candidates, item))
        if victim not in candidates:
            raise OutOfCoreError(
                f"policy {self.policy.name!r} chose non-candidate victim {victim}"
            )
        vslot = int(self._item_slot[victim])
        self._evict(victim, vslot)
        return vslot

    def _evict(self, item: int, slot: int) -> None:  # holds: _cond
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "_slot_generation", "stats.store",
                     "_prefetched_untouched", "_item_slot", "_slot_item",
                     "_dirty")
        self._slot_generation[slot] += 1  # invalidates outstanding borrows
        if self._tracer is not None:
            self._tracer.emit("evict", item=item, slot=slot)
        if item in self._prefetched_untouched:
            self._prefetched_untouched.discard(item)
            self.stats.prefetch_unused += 1
        if self.track_dirty and not self._dirty[slot]:
            self.stats.write_skips += 1
        else:
            self._write_out(item, slot)
            self.stats.writes += 1
            self.stats.bytes_written += self.item_bytes
        self._item_slot[item] = -1
        self._slot_item[slot] = -1
        self._dirty[slot] = False
        self.policy.on_evict(item)

    def _write_out(self, item: int, slot: int) -> None:
        """Persist one slot — staged asynchronously when write-behind is on."""
        if self._writeback is not None:
            self._writeback.put(item, self._slots[slot])
        else:
            self.backing.write(item, self._slots[slot])

    # -- prefetch support (paper §5) -------------------------------------------------

    def prefetch_load(self, item: int,  # thread: prefetch
                      protect: Iterable[int] = ()) -> bool:
        """Load ``item`` ahead of demand; best-effort, thread-safe.

        Allocates a slot — never stealing from ``protect``, the pins of the
        most recent demand ``get`` or in-flight loads — publishes the
        mapping, and fills the slot from the staging buffer or the backing
        store *outside the lock*. Demand requests arriving mid-load wait on
        the in-flight event. Returns ``False`` (without raising) when the
        item is already resident/in flight, no evictable slot exists, or
        the read fails — prefetching is an optimisation, never an
        obligation. Accounts only ``prefetch_*`` traffic: demand counters
        are charged at first demand touch, as if prefetch were transparent.
        """
        item = int(item)
        self._check_item(item)
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_item_slot", "_inflight")
            if self._item_slot[item] >= 0 or item in self._inflight:
                return False
            slot = self._try_allocate(item, protect)
            if slot is None:
                return False
            self._publish(item, slot)
            ev = threading.Event()
            if rc is not None:
                rc.write(self._race_scope, "_inflight")
            self._inflight[item] = ev
        tr = self._tracer
        try:
            read_t0 = time.perf_counter() if tr is not None else 0.0
            from_staging = self._read_into_slot(item, slot)
        except Exception:
            with self._cond:
                if rc is not None:
                    rc.write(self._race_scope, "_item_slot", "_slot_item",
                             "_free", "_inflight")
                self._item_slot[item] = -1
                self._slot_item[slot] = -1
                self._free.append(slot)
                self._inflight.pop(item, None)
                ev.set()
                self._cond.notify_all()
            return False
        with self._cond:
            if rc is not None:
                rc.write(self._race_scope, "stats.store",
                         "_prefetched_untouched", "_inflight")
            self.stats.prefetch_reads += 1
            self.stats.prefetch_bytes += self.item_bytes
            if tr is not None:
                tr.emit("prefetch_issue", item=item, slot=slot,
                        dur=time.perf_counter() - read_t0)
            if from_staging:
                self.stats.writeback_read_hits += 1
            self._prefetched_untouched.add(item)
            self.policy.on_load(item)
            # Stamp the policy so the freshly prefetched vector is not the
            # immediate next victim (it is needed within the horizon).
            self.policy.on_access(item, False)
            self._inflight.pop(item, None)
            ev.set()
            self._cond.notify_all()
        return True

    def _try_allocate(self, item: int,  # holds: _cond
                      protect: Iterable[int]) -> int | None:
        """Non-raising slot allocation for prefetch (``None`` = no slot)."""
        rc = self._race
        if rc is not None:
            rc.write(self._race_scope, "_free")
            rc.read(self._race_scope, "_slot_item", "_inflight",
                    "_active_pins", "_prefetched_untouched")
        if self._free:
            return self._free.pop()
        excluded = ({int(p) for p in protect} | self._active_pins
                    | set(self._inflight) | self._prefetched_untouched)
        candidates = [int(i) for i in self._slot_item
                      if i >= 0 and int(i) not in excluded]
        if not candidates:
            return None
        victim = int(self.policy.choose_victim(candidates, item))
        if victim not in candidates:
            return None
        vslot = int(self._item_slot[victim])
        self._evict(victim, vslot)
        return vslot

    # -- bulk operations ----------------------------------------------------------

    def flush(self, force: bool = False) -> None:
        """Write resident vectors back to the backing store (kept resident).

        Honours :attr:`track_dirty`: clean residents are skipped (credited
        to ``write_skips``) unless ``force=True`` — the checkpointing
        escape hatch that persists everything regardless. Acts as a full
        barrier: returns only after the write-behind queue (if any) has
        drained, so the backing store is durable and self-consistent.
        """
        rc = self._race
        with self._cond:
            self._settle()
            if rc is not None:
                rc.read(self._race_scope, "_slot_item")
                rc.write(self._race_scope, "stats.store", "_dirty")
            for slot in range(self.num_slots):
                item = int(self._slot_item[slot])
                if item < 0:
                    continue
                if not force and self.track_dirty and not self._dirty[slot]:
                    self.stats.write_skips += 1
                    continue
                self._write_out(item, slot)
                self.stats.writes += 1
                self.stats.bytes_written += self.item_bytes
                self._dirty[slot] = False
        self.drain()
        # Only now is every write actually ON the device, not just handed
        # to the OS: the backing-level flush is the fsync barrier.
        self.backing.flush()

    def drain(self) -> None:
        """Barrier: block until all staged write-behind data is durable."""
        if self._writeback is not None:
            self._writeback.drain()

    def _settle(self) -> None:  # holds: _cond
        """Wait (under the lock) until no load is in flight."""
        rc = self._race
        if rc is not None:
            rc.read(self._race_scope, "_inflight")
        while self._inflight:
            self._cond.wait()

    def evict_all(self) -> None:
        """Empty every slot (vectors written back); used between experiment phases."""
        rc = self._race
        with self._cond:
            self._settle()
            if rc is not None:
                rc.read(self._race_scope, "_slot_item")
                rc.write(self._race_scope, "_free")
            for slot in range(self.num_slots):
                item = int(self._slot_item[slot])
                if item >= 0:
                    self._evict(item, slot)
                    self._free.append(slot)
        self.drain()

    def read_item(self, item: int) -> np.ndarray:
        """Copy of a vector's current contents, resident or not (no stats impact).

        For verification/debugging only — production code uses :meth:`get`.
        Consults, in order: the RAM slot, the write-behind staging buffer,
        the backing store — so it always observes the newest version.
        """
        self._check_item(item)
        rc = self._race
        with self._cond:
            self._settle()
            if rc is not None:
                rc.read(self._race_scope, "_item_slot")
            slot = self._item_slot[item]
            if slot >= 0:
                return self._slots[slot].copy()
        out = np.empty(self.item_shape, dtype=self.dtype)
        if self._writeback is not None and self._writeback.read_into(item, out):
            return out
        self.backing.read(item, out)
        return out

    def validate(self) -> None:
        """Internal-consistency check of the two-way slot/item maps."""
        rc = self._race
        with self._cond:
            if rc is not None:
                rc.read(self._race_scope, "_slot_item", "_item_slot", "_free")
            for slot in range(self.num_slots):
                item = int(self._slot_item[slot])
                if item >= 0 and int(self._item_slot[item]) != slot:
                    raise OutOfCoreError(f"slot {slot} ↦ item {item} ↦ slot "
                                         f"{int(self._item_slot[item])} mismatch")
            for item in range(self.num_items):
                slot = int(self._item_slot[item])
                if slot >= 0 and int(self._slot_item[slot]) != item:
                    raise OutOfCoreError(f"item {item} ↦ slot {slot} ↦ item "
                                         f"{int(self._slot_item[slot])} mismatch")
            resident = sum(1 for i in self._slot_item if i >= 0)
            if resident + len(self._free) != self.num_slots:
                raise OutOfCoreError("free-list/resident accounting mismatch")

    def close(self) -> None:
        """Drain pending write-behind traffic and close the backing store."""
        if self._writeback is not None:
            self._writeback.close()
        self.backing.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AncestralVectorStore(n={self.num_items}, m={self.num_slots}, "
            f"policy={self.policy.name}, w={self.item_bytes}B)"
        )
