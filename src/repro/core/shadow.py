"""Shadow stores: measure many (policy, capacity) points from one live run.

The vector access *sequence* produced by the likelihood engine is completely
independent of the store configuration — the paper relies on this ("given a
fixed starting tree, RAxML is deterministic ... regardless of f and the
selected replacement strategy", §4.1). A :class:`ShadowStore` therefore only
needs the event stream, not the data: it runs the exact slot-allocation
logic of :class:`~repro.core.vecstore.AncestralVectorStore` (free slots
first, then a policy victim among unpinned residents, read skipping for
write-only misses) and accumulates an :class:`~repro.core.stats.IoStats`.

:class:`TeeStore` wraps the primary (real) store and broadcasts every
``get()`` to any number of shadows — so a *single* tree search produces the
full policy × fraction grid of Figures 2–4, including the Topological
strategy, whose distance queries need the live tree at eviction time (a
post-hoc trace replay could not reproduce them faithfully).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.policies import ReplacementPolicy, make_policy
from repro.core.stats import IoStats
from repro.errors import OutOfCoreError, PinnedSlotError


class ShadowStore:
    """Bookkeeping-only replica of the out-of-core slot logic.

    Parameters mirror :class:`AncestralVectorStore`; no data is stored, so
    thousands of shadows cost almost nothing per event.
    """

    def __init__(self, num_items: int, num_slots: int,
                 policy: str | ReplacementPolicy = "lru", *,
                 read_skipping: bool = True, label: str = "",
                 policy_kwargs: dict | None = None) -> None:
        if num_slots < 1:
            raise OutOfCoreError(f"need at least one slot, got {num_slots}")
        self.num_items = int(num_items)
        self.num_slots = min(int(num_slots), self.num_items)
        if isinstance(policy, str):
            policy = make_policy(policy, **(policy_kwargs or {}))
        self.policy = policy
        self.read_skipping = bool(read_skipping)
        self.label = label or f"{policy.name}@m={num_slots}"
        self.stats = IoStats()
        self._resident: set[int] = set()
        self._free = self.num_slots

    @property
    def fraction(self) -> float:
        return self.num_slots / self.num_items

    def access(self, item: int, pins: tuple = (), write_only: bool = False) -> None:
        """Observe one ``get()`` event and update counters."""
        self.stats.requests += 1
        if item in self._resident:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            if self._free > 0:
                self._free -= 1
            else:
                pinned = set(pins)
                candidates = [it for it in self._resident if it not in pinned]
                if not candidates:
                    raise PinnedSlotError(
                        f"shadow {self.label!r}: all {self.num_slots} slots pinned"
                    )
                victim = int(self.policy.choose_victim(candidates, item))
                self._resident.discard(victim)
                self.policy.on_evict(victim)
                self.stats.writes += 1
            if write_only and self.read_skipping:
                self.stats.read_skips += 1
            else:
                self.stats.reads += 1
            self._resident.add(item)
            self.policy.on_load(item)
        self.policy.on_access(item, write_only)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShadowStore({self.label}, {self.stats})"


class TeeStore:
    """A real store plus shadows observing the identical access stream.

    Satisfies the engine's store protocol by forwarding ``get()`` to the
    primary store and replaying the event against every shadow.
    """

    def __init__(self, primary: Any, shadows: list[ShadowStore]) -> None:
        self.primary = primary
        self.shadows = list(shadows)
        for shadow in self.shadows:
            if shadow.num_items != primary.num_items:
                raise OutOfCoreError(
                    f"shadow {shadow.label!r} has {shadow.num_items} items, "
                    f"primary has {primary.num_items}"
                )

    def get(self, item: int, pins: tuple = (),
            write_only: bool = False) -> np.ndarray:
        for shadow in self.shadows:
            shadow.access(item, pins=pins, write_only=write_only)
        return self.primary.get(item, pins=pins, write_only=write_only)

    def results(self) -> dict[str, IoStats]:
        """Shadow label → accumulated stats."""
        return {s.label: s.stats for s in self.shadows}

    def __getattr__(self, name: str) -> Any:
        return getattr(self.primary, name)
