"""Traversal-order prefetching (paper §5, future work).

The paper's conclusion proposes "assessing if pre-fetching can be deployed
by means of a prefetch thread". Because a post-order traversal descriptor
is computed *before* any likelihood arithmetic (§3.4), the exact upcoming
vector access order is known — a prefetcher can pull the next vectors into
free or soon-to-be-free slots while the CPU crunches the current one.

In Python we model the *effect* rather than spawn real threads: the
:class:`Prefetcher` issues the backing-store reads ahead of demand and
marks those slots, and demand hits on prefetched slots are counted
separately. With a :class:`~repro.core.backing.SimulatedDiskBackingStore`,
prefetched read time can be discounted by an ``overlap`` factor,
representing how much of the transfer hides behind computation.
"""

from __future__ import annotations

from repro.core.backing import SimulatedDiskBackingStore
from repro.core.vecstore import AncestralVectorStore
from repro.errors import OutOfCoreError


class Prefetcher:
    """Issues ahead-of-demand loads for a known upcoming access sequence.

    Parameters
    ----------
    store:
        The vector store to prefetch into.
    depth:
        How many future items to keep in flight; a prefetch never evicts a
        pinned item and never evicts an item that appears in the in-flight
        window (that would be self-defeating).
    overlap:
        Fraction of each prefetched transfer assumed hidden behind compute
        (only meaningful when the backing store simulates time; 1.0 = the
        classic fully-overlapped prefetch thread).
    """

    def __init__(self, store: AncestralVectorStore, depth: int = 2,
                 overlap: float = 1.0) -> None:
        if depth < 1:
            raise OutOfCoreError(f"prefetch depth must be >= 1, got {depth}")
        if not 0.0 <= overlap <= 1.0:
            raise OutOfCoreError(f"overlap must be in [0, 1], got {overlap}")
        self.store = store
        self.depth = depth
        self.overlap = overlap
        self._prefetched: set[int] = set()
        self.hidden_seconds = 0.0

    def run_schedule(self, upcoming: list[tuple[int, tuple, bool]]) -> None:
        """Prefetch for a schedule of ``(item, pins, write_only)`` triples.

        Walks the schedule and, before each demand access would occur,
        ensures the next ``depth`` *read* items are resident (write-only
        items gain nothing from prefetch: their reads are skipped anyway).
        This is the synchronous model of the paper's prefetch thread; call
        it immediately before executing the corresponding traversal.
        """
        backing = self.store.backing
        simulated = isinstance(backing, SimulatedDiskBackingStore)
        for idx, (item, pins, write_only) in enumerate(upcoming):
            horizon = upcoming[idx: idx + self.depth]
            protect = {it for it, _, _ in horizon} | set(pins)
            for nxt, npins, nwrite in horizon:
                if nwrite or self.store.is_resident(nxt):
                    continue
                before = backing.simulated_seconds if simulated else 0.0
                self.store.get(nxt, pins=tuple(protect - {nxt}), write_only=False)
                self.store.stats.prefetch_reads += 1
                self._prefetched.add(nxt)
                if simulated:
                    cost = backing.simulated_seconds - before
                    hidden = cost * self.overlap
                    backing.simulated_seconds -= hidden
                    self.hidden_seconds += hidden
            if item in self._prefetched and self.store.is_resident(item):
                self.store.stats.prefetch_hits += 1
                self._prefetched.discard(item)
