"""Traversal-order prefetching (paper §5, future work).

The paper's conclusion proposes "assessing if pre-fetching can be deployed
by means of a prefetch thread". Because a post-order traversal descriptor
is computed *before* any likelihood arithmetic (§3.4), the exact upcoming
vector access order is known — a prefetcher can pull the next vectors into
free or soon-to-be-free slots while the CPU crunches the current one.

Two implementations share the store's :meth:`prefetch_load` entry point,
which accounts ahead-of-demand traffic only in the ``prefetch_*`` counters
so the demand miss/read rates (the Fig. 2–4 metrics) stay untouched:

* :class:`Prefetcher` — the synchronous *model*: it issues the upcoming
  reads inline and, with a
  :class:`~repro.core.backing.SimulatedDiskBackingStore`, discounts an
  ``overlap`` fraction of their cost, representing how much of the
  transfer would hide behind computation.
* :class:`ThreadedPrefetcher` — the real thing: a daemon thread that is
  fed the access sequence (from
  ``LikelihoodEngine.plan_accesses``), tracks demand progress through the
  store's request counter, and keeps the next ``depth`` read items
  resident or in flight while the compute thread works.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.analysis.race import make_thread, race_detector
from repro.core.backing import SimulatedDiskBackingStore
from repro.core.vecstore import AncestralVectorStore
from repro.errors import OutOfCoreError
from repro.obs.spans import next_span_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.spans import SpanRecorder


def _validated_depth(depth: int) -> int:
    if depth < 1:
        raise OutOfCoreError(f"prefetch depth must be >= 1, got {depth}")
    return int(depth)


class Prefetcher:
    """Synchronous model of a prefetch thread for a known access sequence.

    Parameters
    ----------
    store:
        The vector store to prefetch into.
    depth:
        How many future items to keep in flight; a prefetch never evicts a
        pinned item and never evicts an item that appears in the in-flight
        window (that would be self-defeating).
    overlap:
        Fraction of each prefetched transfer assumed hidden behind compute
        (only meaningful when the backing store simulates time; 1.0 = the
        classic fully-overlapped prefetch thread).
    """

    def __init__(self, store: AncestralVectorStore, depth: int = 2,
                 overlap: float = 1.0) -> None:
        self.store = store
        self.depth = _validated_depth(depth)
        if not 0.0 <= overlap <= 1.0:
            raise OutOfCoreError(f"overlap must be in [0, 1], got {overlap}")
        self.overlap = overlap
        self.hidden_seconds = 0.0

    def run_schedule(self, upcoming: list[tuple[int, tuple, bool]]) -> None:
        """Prefetch for a schedule of ``(item, pins, write_only)`` triples.

        Walks the schedule and, before each demand access would occur,
        ensures the next ``depth`` *read* items are resident (write-only
        items gain nothing from prefetch: their reads are skipped anyway).
        Loads go through ``store.prefetch_load``, so only ``prefetch_*``
        counters move — the demand ``requests``/``misses``/``reads`` are
        charged later, by the traversal itself, exactly as they would be
        without prefetching. Call immediately before executing the
        corresponding traversal.
        """
        backing = self.store.backing
        simulated = isinstance(backing, SimulatedDiskBackingStore)
        for idx, (item, pins, write_only) in enumerate(upcoming):
            horizon = upcoming[idx: idx + self.depth]
            protect = {it for it, _, _ in horizon} | {int(p) for p in pins}
            written_first = set()
            for nxt, _npins, nwrite in horizon:
                if nwrite:
                    # A read of this item later in the horizon is satisfied
                    # by the write, not by (stale) backing-store bytes.
                    written_first.add(nxt)
                    continue
                if nxt in written_first or self.store.is_resident(nxt):
                    continue
                before = backing.simulated_seconds if simulated else 0.0
                loaded = self.store.prefetch_load(nxt, protect=protect)
                if simulated and loaded:
                    # The swap-in (and any eviction write it caused) would
                    # run on the prefetch thread: hide `overlap` of it.
                    cost = backing.simulated_seconds - before
                    hidden = cost * self.overlap
                    backing.simulated_seconds -= hidden
                    self.hidden_seconds += hidden


class ThreadedPrefetcher:
    """A real prefetch thread consuming the traversal access sequence.

    Usage::

        pf = ThreadedPrefetcher(store, depth=4)
        pf.feed(engine.plan_accesses(plan))   # before each traversal
        engine.execute_plan(plan)             # compute overlaps the reads
        ...
        pf.stop()                             # at teardown

    The thread measures demand progress as the store's request-counter
    delta since :meth:`feed`, keeps the next ``depth`` read items of the
    schedule resident or in flight, and parks on the store's condition
    variable when there is nothing to do. It never evicts pinned,
    in-flight or in-horizon items, and a load that cannot find a slot is
    deferred until demand progresses (prefetch is best-effort by design).
    """

    def __init__(self, store: AncestralVectorStore, depth: int = 4,
                 workers: int = 1) -> None:
        if workers < 1:
            raise OutOfCoreError(
                f"need at least one prefetch worker, got {workers}")
        self.store = store
        self.depth = _validated_depth(depth)
        self.workers = int(workers)
        # All prefetcher bookkeeping is guarded by the *store's* condition
        # variable — the thread already parks on it, and sharing the lock
        # makes feed()/progress checks atomic with the store's maps.
        self._schedule: list[tuple[int, tuple, bool]] = []  # guarded-by: _cond
        self._base = 0  # guarded-by: _cond
        self._deferred: set[int] = set()  # guarded-by: _cond
        self._last_progress = -1  # guarded-by: _cond
        self._stop = False  # guarded-by: _cond
        # Observability hook (default off): a SpanRecorder receiving one
        # interval per prefetch_load attempt. Set by repro.obs.Observer;
        # recording is lock-free (ring append), read without the lock.
        self.spans: SpanRecorder | None = None
        # Under REPRO_SANITIZE=race the thread carries start/join clock
        # edges (zero cost otherwise — see repro.analysis.race).
        self._race = race_detector()
        self._race_scope = ("" if self._race is None
                            else self._race.new_scope("ThreadedPrefetcher"))
        # More than one worker only helps when the backing overlaps
        # operations (a sharded tier, a real disk): racing picks are
        # benign — the prefetch_load loser returns False and defers.
        # The single-worker thread keeps the historical "prefetcher"
        # name (timelines and span filters key on it).
        self._threads = [
            make_thread(self._run, daemon=True,
                        name="prefetcher" if self.workers == 1
                        else f"prefetcher-{i}")
            for i in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    def feed(self, schedule: list[tuple[int, tuple, bool]]) -> None:
        """Install the upcoming access sequence; prefetching starts at once."""
        store = self.store
        rc = self._race
        with store._cond:
            if rc is not None:
                rc.read(self._race_scope, "_stop")
                rc.write(self._race_scope, "_schedule", "_base", "_deferred",
                         "_last_progress")
                rc.read(store._race_scope, "stats.store")
            if self._stop:
                raise OutOfCoreError("prefetcher is stopped")
            self._schedule = list(schedule)
            self._base = store.stats.requests
            self._deferred.clear()
            self._last_progress = -1
            store._cond.notify_all()

    def idle(self) -> bool:
        """True when the schedule is exhausted (mainly for tests)."""
        store = self.store
        with store._cond:
            return not self._pick_locked()

    def stop(self) -> None:
        """Terminate the prefetch thread (idempotent)."""
        store = self.store
        rc = self._race
        with store._cond:
            if rc is not None:
                rc.write(self._race_scope, "_stop")
            self._stop = True
            store._cond.notify_all()
        for t in self._threads:
            t.join()

    close = stop

    # -- worker ----------------------------------------------------------------

    def _pick_locked(self) -> tuple[int, set[int]] | None:  # holds: _cond
        """Next (item, protect) to load, or None. Caller holds the store lock."""
        rc = self._race
        if rc is not None:
            rc.read(self._race_scope, "_schedule", "_base", "_deferred")
            rc.write(self._race_scope, "_last_progress")
            rc.read(self.store._race_scope, "stats.store", "_item_slot",
                    "_inflight")
        progress = self.store.stats.requests - self._base
        if progress != self._last_progress:
            self._last_progress = progress
            self._deferred.clear()
        window = self._schedule[progress: progress + self.depth]
        if not window:
            return None
        horizon = {it for it, _, _ in window}
        written_first = set()
        for it, _pins, write_only in window:
            if write_only:
                # Its upcoming read (if any) will see this write's data;
                # the backing store's bytes are stale — nothing to fetch.
                written_first.add(it)
                continue
            if it in written_first or it in self._deferred:
                continue
            if self.store._item_slot[it] >= 0 or it in self.store._inflight:
                continue
            return it, horizon
        return None

    def _run(self) -> None:  # thread: prefetch
        store = self.store
        rc = self._race
        # Trace-context injection (see WriteBehindQueue._writer_loop_async):
        # each prefetch load gets a span id the sharded backing threads
        # through its wire header to the worker-side disk span.
        scope = getattr(store.backing, "trace_scope", None)
        while True:
            with store._cond:
                while True:
                    if rc is not None:
                        rc.read(self._race_scope, "_stop")
                    if self._stop:
                        return
                    target = self._pick_locked()
                    if target is not None:
                        break
                    # The timeout is belt-and-braces against a lost notify;
                    # progress signals normally wake us immediately.
                    store._cond.wait(timeout=0.1)
            item, horizon = target
            sp = self.spans
            t0 = time.perf_counter() if sp is not None else 0.0
            sid = next_span_id() if sp is not None and scope is not None else 0
            if sid:
                with scope(sid):
                    loaded = store.prefetch_load(item, protect=horizon)
            else:
                loaded = store.prefetch_load(item, protect=horizon)
            if sp is not None:
                sp.complete("prefetch_load", t0, time.perf_counter() - t0,
                            {"item": item, "loaded": loaded}, span_id=sid)
            if not loaded:
                tr = store._tracer
                if tr is not None:
                    # The prefetch pipeline stalled: no evictable slot (or a
                    # racing demand load) kept this item out of RAM.
                    tr.emit("stall", item=item)
                with store._cond:
                    # No slot (or a racing demand load): retry only after
                    # demand progresses, so we never busy-spin.
                    if rc is not None:
                        rc.write(self._race_scope, "_deferred")
                    self._deferred.add(item)
