"""Storage layouts: how logical CLVs map onto paged store items.

The paper's unit of residency is a whole ancestral probability vector —
one slot holds one full CLV (§3.2). That puts a hard floor under the
memory footprint: a store with ``m`` slots can never use less RAM than
``m`` whole vectors, and a single vector larger than RAM is unrunnable.
Related work computes the PLF over *partial* likelihood structures
(Sumner & Charleston's partial likelihood tensors; Bryant et al.'s
column-wise recomputation), which motivates this layer: the paged unit
becomes configurable.

A :class:`StorageLayout` maps the *node space* (``num_nodes`` logical
CLVs, each of ``node_shape = (patterns, categories, states)``) onto the
*item space* the :class:`~repro.core.vecstore.AncestralVectorStore`
actually pages (``num_items`` blocks of ``item_shape``):

* :class:`WholeVectorLayout` — the identity: one item per node, today's
  (and the paper's) behaviour, bit-for-bit;
* :class:`SiteBlockLayout` — each CLV's pattern axis is split into
  independently resident/evictable/prefetchable *site blocks* of
  ``block_sites`` patterns; the last block is ragged (only its first
  ``patterns - (blocks_per_node-1)·block_sites`` rows are meaningful,
  the tail is padding that is stored but never read by kernels);
* :class:`ConcatenatedLayout` — several per-partition layouts glued
  into one item id space, so one shared store (one global slot budget)
  can serve every partition of a :class:`PartitionedEngine`.

Site blocks are independent because every PLF kernel is per-site: site
``i`` of a parent CLV depends only on site ``i`` of its children, so a
blocked Felsenstein step needs just the three *blocks* of the current
(parent, left, right) triple resident — the store's ``m >= 3`` floor now
bounds *blocks*, not vectors, and a slot budget smaller than one whole
vector becomes expressible.

Item ids are dense integers, so every downstream consumer — replacement
policies, the write-behind queue, the prefetcher, access traces and
:func:`~repro.core.trace.simulate_policy_on_trace` replay, the obs event
stream — operates at block granularity without modification; consumers
that need tree semantics (the Topological policy's distance function)
map an item back to its node through :meth:`StorageLayout.node_of`.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Any, Sequence

import numpy as np

from repro.core.stats import DEMAND_COUNTERS, IoStats
from repro.errors import OutOfCoreError

#: Default site-block size for ``layout="block"`` when none is given.
DEFAULT_BLOCK_SITES = 64


class StorageLayout:
    """Base class: the node-space ⇄ item-space mapping.

    Subclasses populate the geometry attributes in ``__init__`` and
    implement the mapping methods. All layouts shipped here use dense,
    contiguous item ids (``items_of`` returns a :class:`range`), which
    the store's file backing exploits for sequential placement.
    """

    name = "base"

    num_nodes: int
    node_shape: tuple[int, ...]
    num_items: int
    item_shape: tuple[int, ...]
    #: Items per node; uniform because every node shares ``node_shape``.
    blocks_per_node: int

    # -- mapping -----------------------------------------------------------------

    def item_of(self, node: int, block: int) -> int:
        """Item id of site-block ``block`` of logical CLV ``node``."""
        raise NotImplementedError

    def items_of(self, node: int) -> range:
        """All item ids composing logical CLV ``node`` (block order)."""
        raise NotImplementedError

    def node_of(self, item: int) -> int:
        """Logical CLV a paged item belongs to (inverse of ``item_of``)."""
        raise NotImplementedError

    def block_of(self, item: int) -> int:
        """Block index of ``item`` within its node (0-based)."""
        raise NotImplementedError

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Half-open pattern range ``[lo, hi)`` covered by block ``block``.

        ``hi - lo`` is the number of *meaningful* rows in the block's
        slot; a ragged last block additionally stores
        ``item_shape[0] - (hi - lo)`` rows of padding.
        """
        raise NotImplementedError

    def item_sites(self, item: int) -> tuple[int, int]:
        """Pattern range of ``item`` — ``block_bounds(block_of(item))``."""
        return self.block_bounds(self.block_of(item))

    def block_spans(self) -> tuple[tuple[int, int], ...]:
        """``block_bounds`` of every block, in block order.

        The batched scheduler calls this once per plan instead of once
        per (step, block); at most the last entry is ragged.
        """
        return tuple(self.block_bounds(b) for b in range(self.blocks_per_node))

    def store_item_nodes(self) -> np.ndarray:
        """``int64`` array mapping every *store* item id to its node.

        For plain layouts this covers ``num_items`` entries; a
        :class:`PartitionLayoutView` returns its parent's full-store
        array, so policies that receive global item ids (one shared
        store across partitions) can always index it directly.
        """
        raise NotImplementedError

    # -- geometry ----------------------------------------------------------------

    def item_elements(self) -> int:
        """Elements in one paged item (padding included)."""
        return int(np.prod(self.item_shape))

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (recorded in ``BENCH_profile.json``)."""
        return {
            "layout": self.name,
            "num_nodes": self.num_nodes,
            "num_items": self.num_items,
            "blocks_per_node": self.blocks_per_node,
            "block_sites": int(self.item_shape[0]),
        }

    # -- validation helpers ------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise OutOfCoreError(
                f"node {node} out of range [0, {self.num_nodes})")

    def _check_item(self, item: int) -> None:
        if not 0 <= item < self.num_items:
            raise OutOfCoreError(
                f"item {item} out of range [0, {self.num_items})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(nodes={self.num_nodes}, "
                f"items={self.num_items}, item_shape={self.item_shape})")


class WholeVectorLayout(StorageLayout):
    """The identity layout — one item per node, the paper's design.

    Strictly a no-op relative to the pre-layout code: item ids equal
    node ids, ``item_shape == node_shape``, and a single block spans the
    whole pattern axis, so demand/eviction counters, policy decisions
    and log-likelihoods are bit-identical to the unlayered store.
    """

    name = "whole"

    def __init__(self, num_nodes: int, node_shape: tuple[int, ...]) -> None:
        if num_nodes < 1:
            raise OutOfCoreError(f"need at least one node, got {num_nodes}")
        if len(node_shape) < 1 or int(node_shape[0]) < 1:
            raise OutOfCoreError(f"bad node shape {node_shape!r}")
        self.num_nodes = int(num_nodes)
        self.node_shape = tuple(int(d) for d in node_shape)
        self.num_items = self.num_nodes
        self.item_shape = self.node_shape
        self.blocks_per_node = 1

    def item_of(self, node: int, block: int) -> int:
        self._check_node(node)
        if block != 0:
            raise OutOfCoreError(f"whole-vector layout has one block, got {block}")
        return node

    def items_of(self, node: int) -> range:
        self._check_node(node)
        return range(node, node + 1)

    def node_of(self, item: int) -> int:
        self._check_item(item)
        return item

    def block_of(self, item: int) -> int:
        self._check_item(item)
        return 0

    def block_bounds(self, block: int) -> tuple[int, int]:
        if block != 0:
            raise OutOfCoreError(f"whole-vector layout has one block, got {block}")
        return (0, self.node_shape[0])

    def store_item_nodes(self) -> np.ndarray:
        return np.arange(self.num_items, dtype=np.int64)


class SiteBlockLayout(StorageLayout):
    """Pattern axis split into fixed-size site blocks (last one ragged).

    Node ``n``'s block ``b`` is item ``n · blocks_per_node + b`` and
    covers patterns ``[b·B, min(patterns, (b+1)·B))``. Every slot (and
    every backing-store record) holds a full ``(B, categories, states)``
    block; the ragged last block's tail rows are padding — written out
    and read back like data, but never consumed by a kernel, so their
    contents are irrelevant to correctness.
    """

    name = "block"

    def __init__(self, num_nodes: int, node_shape: tuple[int, ...],
                 block_sites: int) -> None:
        if num_nodes < 1:
            raise OutOfCoreError(f"need at least one node, got {num_nodes}")
        if len(node_shape) < 1 or int(node_shape[0]) < 1:
            raise OutOfCoreError(f"bad node shape {node_shape!r}")
        if block_sites < 1:
            raise OutOfCoreError(f"block_sites must be >= 1, got {block_sites}")
        self.num_nodes = int(num_nodes)
        self.node_shape = tuple(int(d) for d in node_shape)
        patterns = self.node_shape[0]
        # Deliberately NOT clamped to the pattern count: a shared
        # (concatenated) store needs every partition to page identically
        # shaped blocks, so a partition with fewer patterns than one block
        # simply gets a single padded block.
        self.block_sites = int(block_sites)
        self.blocks_per_node = -(-patterns // self.block_sites)  # ceil div
        self.num_items = self.num_nodes * self.blocks_per_node
        self.item_shape = (self.block_sites, *self.node_shape[1:])

    def item_of(self, node: int, block: int) -> int:
        self._check_node(node)
        if not 0 <= block < self.blocks_per_node:
            raise OutOfCoreError(
                f"block {block} out of range [0, {self.blocks_per_node})")
        return node * self.blocks_per_node + block

    def items_of(self, node: int) -> range:
        self._check_node(node)
        start = node * self.blocks_per_node
        return range(start, start + self.blocks_per_node)

    def node_of(self, item: int) -> int:
        self._check_item(item)
        return item // self.blocks_per_node

    def block_of(self, item: int) -> int:
        self._check_item(item)
        return item % self.blocks_per_node

    def block_bounds(self, block: int) -> tuple[int, int]:
        if not 0 <= block < self.blocks_per_node:
            raise OutOfCoreError(
                f"block {block} out of range [0, {self.blocks_per_node})")
        lo = block * self.block_sites
        return (lo, min(self.node_shape[0], lo + self.block_sites))

    def store_item_nodes(self) -> np.ndarray:
        return np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                         self.blocks_per_node)


class PartitionLayoutView(StorageLayout):
    """One partition's layout re-addressed into a shared store's item space.

    Wraps a per-partition layout and adds the partition's item offset,
    so an engine holding this view generates *global* item ids directly
    — no translation layer sits on the store's hot path. The node space
    stays partition-local (it is the shared tree's inner-node space,
    identical across partitions).
    """

    name = "partition-view"

    def __init__(self, inner: StorageLayout, offset: int,
                 parent: "ConcatenatedLayout") -> None:
        self.inner = inner
        self.offset = int(offset)
        self.parent = parent
        self.num_nodes = inner.num_nodes
        self.node_shape = inner.node_shape
        self.num_items = parent.num_items
        self.item_shape = inner.item_shape
        self.blocks_per_node = inner.blocks_per_node

    def item_of(self, node: int, block: int) -> int:
        return self.offset + self.inner.item_of(node, block)

    def items_of(self, node: int) -> range:
        local = self.inner.items_of(node)
        return range(self.offset + local.start, self.offset + local.stop)

    def node_of(self, item: int) -> int:
        return self.inner.node_of(item - self.offset)

    def block_of(self, item: int) -> int:
        return self.inner.block_of(item - self.offset)

    def block_bounds(self, block: int) -> tuple[int, int]:
        return self.inner.block_bounds(block)

    def store_item_nodes(self) -> np.ndarray:
        return self.parent.store_item_nodes()


class ConcatenatedLayout(StorageLayout):
    """Several per-partition layouts in one dense item id space.

    All parts must describe the *same* node set (the shared tree's inner
    nodes) and produce the *same* ``item_shape`` — the single slot arena
    has one block geometry. With :class:`SiteBlockLayout` parts sharing
    ``block_sites`` (and models sharing a state/category count) this
    holds even when partitions have different pattern counts, because
    every block is padded to ``block_sites`` rows; whole-vector parts
    concatenate only when their pattern counts happen to be equal.

    Node-level methods (``item_of``/``items_of``/``block_bounds``) are
    ambiguous across partitions and raise; engines address the store
    through a per-partition :meth:`view` instead. Item-level methods
    (``node_of``/``block_of``/``item_sites``) resolve the owning
    partition by offset, so a shared store's policies and traces work on
    global ids.
    """

    name = "concat"

    def __init__(self, parts: Sequence[StorageLayout]) -> None:
        if not parts:
            raise OutOfCoreError("need at least one layout to concatenate")
        first = parts[0]
        for i, part in enumerate(parts):
            if part.item_shape != first.item_shape:
                raise OutOfCoreError(
                    f"partition {i} pages items of shape {part.item_shape}, "
                    f"partition 0 pages {first.item_shape}; a shared store "
                    "needs one block geometry — use a SiteBlockLayout with a "
                    "common block_sites (and matching category/state counts)"
                )
            if part.num_nodes != first.num_nodes:
                raise OutOfCoreError(
                    f"partition {i} has {part.num_nodes} nodes, partition 0 "
                    f"has {first.num_nodes}; all partitions must share one "
                    "tree's inner-node set"
                )
        self.parts = list(parts)
        self.offsets = [0]
        for part in self.parts:
            self.offsets.append(self.offsets[-1] + part.num_items)
        self.num_nodes = first.num_nodes
        self.node_shape = first.node_shape
        self.num_items = self.offsets[-1]
        self.item_shape = first.item_shape
        self.blocks_per_node = first.blocks_per_node

    @property
    def num_partitions(self) -> int:
        return len(self.parts)

    def view(self, partition: int) -> PartitionLayoutView:
        """The globally-addressed layout of one partition."""
        if not 0 <= partition < len(self.parts):
            raise OutOfCoreError(
                f"partition {partition} out of range [0, {len(self.parts)})")
        return PartitionLayoutView(self.parts[partition],
                                   self.offsets[partition], self)

    def partition_of(self, item: int) -> int:
        """Which partition owns global item id ``item``."""
        self._check_item(item)
        return bisect_right(self.offsets, item) - 1

    def item_of(self, node: int, block: int) -> int:
        raise OutOfCoreError(
            "item_of is ambiguous on a concatenated layout; use view(p)")

    def items_of(self, node: int) -> range:
        raise OutOfCoreError(
            "items_of is ambiguous on a concatenated layout; use view(p)")

    def block_bounds(self, block: int) -> tuple[int, int]:
        raise OutOfCoreError(
            "block_bounds is ambiguous on a concatenated layout; use view(p)")

    def node_of(self, item: int) -> int:
        p = self.partition_of(item)
        return self.parts[p].node_of(item - self.offsets[p])

    def block_of(self, item: int) -> int:
        p = self.partition_of(item)
        return self.parts[p].block_of(item - self.offsets[p])

    def item_sites(self, item: int) -> tuple[int, int]:
        p = self.partition_of(item)
        return self.parts[p].item_sites(item - self.offsets[p])

    def store_item_nodes(self) -> np.ndarray:
        return np.concatenate([p.store_item_nodes() for p in self.parts])

    def describe(self) -> dict[str, Any]:
        doc = super().describe()
        doc["partitions"] = [p.describe() for p in self.parts]
        return doc


def make_layout(kind: "str | StorageLayout", num_nodes: int,
                node_shape: tuple[int, ...],
                block_sites: int | None = None) -> StorageLayout:
    """Build (or validate) a layout for a ``num_nodes × node_shape`` CLV set.

    ``kind`` is ``"whole"``, ``"block"`` (with ``block_sites``, default
    :data:`DEFAULT_BLOCK_SITES`) or an existing :class:`StorageLayout`
    instance, which is geometry-checked and returned unchanged.
    """
    if isinstance(kind, StorageLayout):
        if (kind.num_nodes != int(num_nodes)
                or kind.node_shape != tuple(int(d) for d in node_shape)):
            raise OutOfCoreError(
                f"layout {kind!r} describes {kind.num_nodes} nodes of shape "
                f"{kind.node_shape}, need {num_nodes} of {tuple(node_shape)}"
            )
        return kind
    if kind == "whole":
        if block_sites is not None:
            raise OutOfCoreError("block_sites only applies to layout='block'")
        return WholeVectorLayout(num_nodes, node_shape)
    if kind == "block":
        b = DEFAULT_BLOCK_SITES if block_sites is None else int(block_sites)
        return SiteBlockLayout(num_nodes, node_shape, b)
    raise OutOfCoreError(
        f"unknown layout {kind!r}; choose 'whole', 'block' or pass a "
        "StorageLayout instance"
    )


#: Counters a :class:`SharedStoreView` mirrors per partition: the demand
#: stream, which is the only per-partition-attributable traffic (evictions
#: and async I/O are global decisions of the shared store).
MIRRORED_COUNTERS: tuple[str, ...] = tuple(sorted(DEMAND_COUNTERS))


class SharedStoreView:
    """Per-partition front door onto one shared vector store.

    Engines holding a :class:`PartitionLayoutView` already emit *global*
    item ids, so ``get`` forwards verbatim — the view adds exactly two
    things:

    * a per-partition :class:`~repro.core.stats.IoStats` mirror of the
      demand counters (computed as before/after deltas of the shared
      stats around each forwarded ``get``; exact because demand counters
      move only on the calling compute thread), so partitioned runs can
      attribute demand traffic per partition while one global slot
      budget serves everyone;
    * a no-op ``close`` — the shared store is owned and closed once by
      the composer (:class:`~repro.phylo.likelihood.partitioned.PartitionedEngine`),
      not by each partition engine.

    Everything else (``is_resident``, ``policy``, ``drain`` …) resolves
    on the shared store through ``__getattr__``.
    """

    def __init__(self, store: Any, layout: StorageLayout) -> None:
        self._store = store
        self.layout = layout
        self.stats = IoStats()

    def get(self, item: int, pins: tuple = (),
            write_only: bool = False) -> np.ndarray:
        shared = self._store.stats
        before = [getattr(shared, key) for key in MIRRORED_COUNTERS]
        out = self._store.get(item, pins=pins, write_only=write_only)
        mine = self.stats
        for key, base in zip(MIRRORED_COUNTERS, before):
            setattr(mine, key, getattr(mine, key)
                    + getattr(shared, key) - base)
        return out

    @property
    def shared_stats(self) -> IoStats:
        """The shared store's global counters."""
        stats: IoStats = self._store.stats
        return stats

    def close(self) -> None:
        """No-op: the shared store outlives any single partition engine."""

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedStoreView({self._store!r})"


# -- shard placement ---------------------------------------------------------
#
# The layout layer is the single source of shard placement for the sharded
# multi-process backing tier (repro.core.sharded): it already owns the
# node-space -> item-space mapping, and the shard map is simply the next
# stage of the same address translation.  Placement is a pure function of
# the item id, so every process — front-end clients, shard workers, a
# reattaching run after a crash — derives the identical map with no
# coordination and no persisted table.

def shard_of(item: int, num_shards: int) -> int:
    """The shard that owns ``item``: stable ``crc32(item) % num_shards``.

    ``zlib.crc32`` over the decimal item id is the repo's seeded,
    order-independent hashing idiom (cf. :mod:`repro.core.faults`); unlike
    ``item % num_shards`` it decorrelates placement from the layout's
    block-interleaving structure, so consecutive site blocks of one CLV
    spread across shards instead of striping onto one worker.
    """
    if num_shards < 1:
        raise OutOfCoreError(f"need at least 1 shard, got {num_shards}")
    if num_shards == 1:
        return 0
    return zlib.crc32(str(int(item)).encode()) % num_shards


def shard_items(num_items: int, num_shards: int) -> list[list[int]]:
    """Per-shard ascending item lists for a dense ``[0, num_items)`` space.

    Workers address their private stores by *local* index (the rank of the
    item within its shard's list), so each shard file is dense regardless
    of how the hash scatters the global ids.
    """
    groups: list[list[int]] = [[] for _ in range(num_shards)]
    for item in range(int(num_items)):
        groups[shard_of(item, num_shards)].append(item)
    return groups
