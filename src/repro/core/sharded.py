"""Sharded multi-process backing tier addressed by item hash.

The single-process backing stores serialise every transfer through one
file descriptor and one extent lock — fine for one engine, but a ceiling
for the multi-tenant service direction and for datasets far beyond RAM.
This module splits the item space across ``N`` *shard worker processes*:

* Placement is the layout layer's :func:`repro.core.layout.shard_of`
  (stable ``crc32(item) % N``), so clients, workers and a reattaching
  run after a crash all derive the identical map with no coordination.
* Each worker owns a **private** single-process store — a
  :class:`~repro.core.backing.FileBackingStore`,
  :class:`~repro.core.compress.CompressedFileBackingStore` or
  :class:`~repro.core.backing.SimulatedDiskBackingStore` — addressed by
  dense *local* ids (the rank of the item within its shard), behind a
  length-prefixed request/reply protocol over a Unix socket pair.
* The front-end :class:`ShardedBackingStore` implements the plain
  :class:`~repro.core.backing.BackingStore` protocol (``read``/``write``/
  ``flush``/``close``) *and* the async
  :class:`~repro.core.backing.AsyncBackingStore` hooks
  (``submit_read``/``submit_write`` returning a waitable ticket), so the
  write-behind queue and the prefetcher keep all shards busy
  concurrently instead of serialising through one store lock.

Wire protocol (one frame = 17-byte header + optional payload)::

    header  = <u32 req_id> <u8 opcode> <u64 item> <u32 payload_len>
    opcodes = ATTACH (payload: json shard spec — build/reattach the store)
              READ   (reply DATA carries the raw item bytes)
              WRITE  (payload: raw item bytes; reply OK)
              FLUSH  (per-shard durability barrier; reply OK)
              CLOSE  (close the store and exit; reply OK)
    replies = OK / DATA / ERR (payload: json {type, message})

Requests are matched to replies by ``req_id``, so a client may keep up
to ``window`` operations in flight per shard (bounded-window
back-pressure); frames queued together are sent with one vectored
``sendmsg`` (``write_batch``/``read_batch``), and each worker services
its stream strictly in order — which is what makes ``FLUSH`` a
*barrier*: it cannot overtake any write submitted before it.

Failure model: a worker that dies (injected :class:`SimulatedCrash`, a
test ``SIGKILL``, an OS OOM-kill) closes its socket; the client's
receiver thread observes EOF, spawns a fresh worker, replays ``ATTACH``
(the worker store reattaches its shard file — riding the ``"r+b"``
reattach semantics of the file stores) and re-issues every un-acked
request in submission order. Acked writes live in the OS page cache of
the shard file and survive the worker's death; re-issued operations are
idempotent (positioned writes of the same bytes), so a kill-and-restart
resumes bit-identically. Fault injection composes *per shard*: a fault
spec wraps each worker's store in a
:class:`~repro.core.faults.FaultInjectingBackingStore` seeded
``seed + shard``, so the PR 8 fault schedules replay deterministically
per shard; transient errors travel back as typed ``ERR`` frames and a
client-side :class:`~repro.core.faults.RetryingBackingStore` retries
them exactly as it would over a local store.

Lock hierarchy (see DESIGN.md "Concurrency model"): the per-shard
client locks (``_ShardClient._cond``, ``_ShardClient._send``) are
*leaves* — client code never acquires a store or write-behind lock, so
every edge points into this module and no cycle is possible.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import socket
import struct
import time
from typing import TYPE_CHECKING, Any

import numpy as np
from numpy.typing import DTypeLike

from repro.analysis.race import make_condition, make_lock, make_thread
from repro.core.backing import (
    FileBackingStore,
    SimulatedDiskBackingStore,
)
from repro.core.compress import CompressedFileBackingStore, make_codec
from repro.core.faults import FaultInjectingBackingStore, InjectedFault
from repro.core.layout import shard_items
from repro.errors import BackingStoreError
from repro.vm.disk import DiskModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.layout import StorageLayout
    from repro.obs.histogram import BackingProbe
    from repro.obs.metrics import MetricsRegistry

#: Frame header: req_id (u32), opcode (u8), item (u64), payload length (u32).
_HEADER = struct.Struct("<IBQI")

OP_ATTACH = 1
OP_READ = 2
OP_WRITE = 3
OP_FLUSH = 4
OP_CLOSE = 5
OP_OK = 0x80
OP_DATA = 0x81
OP_ERR = 0x82

#: Worker-store kinds a shard spec may name.
WORKER_KINDS = ("file", "compressed", "simulated")

#: Serialises (socketpair -> fork -> close child end) so no forked worker
#: ever inherits a still-open child end of *another* shard's pair — which
#: would defeat EOF-based dead-worker detection for that shard.
_SPAWN_LOCK = make_lock("ShardedSpawn")


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF (peer died or closed)."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            k = sock.recv_into(view[got:])
        except InterruptedError:
            continue
        if k == 0:
            return None
        got += k
    return bytes(buf)


def _sendmsg_all(sock: socket.socket, buffers: list[bytes]) -> None:
    """Vectored send of all buffers (one syscall when the kernel allows)."""
    views = [memoryview(b) for b in buffers if len(b)]
    while views:
        try:
            sent = sock.sendmsg(views)
        except InterruptedError:
            continue
        while sent:
            if sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0


def _frame(req: int, op: int, item: int, payload: bytes) -> list[bytes]:
    return [_HEADER.pack(req, op, item, len(payload)), payload]


def _err_payload(exc: BaseException) -> bytes:
    return json.dumps({"type": type(exc).__name__,
                       "message": str(exc)}).encode()


def _map_error(payload: bytes) -> BackingStoreError:
    """Rehydrate a worker-side error into the client's exception taxonomy.

    ``InjectedFault`` keeps its type so a client-side
    :class:`~repro.core.faults.RetryingBackingStore` treats it as
    transient; everything else is a plain :class:`BackingStoreError`.
    """
    try:
        doc = json.loads(payload.decode())
        kind, message = str(doc["type"]), str(doc["message"])
    except (ValueError, KeyError, UnicodeDecodeError):
        kind, message = "BackingStoreError", payload.decode(errors="replace")
    if kind == "InjectedFault":
        return InjectedFault(message)
    return BackingStoreError(f"shard worker {kind}: {message}")


# -- worker side (runs in the forked child) ----------------------------------


def _build_worker_store(spec: dict[str, Any]) -> Any:
    """Instantiate a shard's private store from its json spec.

    Reattaching is the store constructors' own behaviour: an existing
    shard file is opened ``"r+b"`` with its contents intact, which is
    what makes worker restart transparent.
    """
    kind = spec["kind"]
    n = int(spec["num_items"])
    shape = tuple(int(d) for d in spec["item_shape"])
    dtype = np.dtype(str(spec["dtype"]))
    inner: Any
    if kind == "file":
        inner = FileBackingStore(spec["path"], n, shape, dtype)
    elif kind == "compressed":
        codec = make_codec(str(spec.get("codec") or "zlib:6"))
        inner = CompressedFileBackingStore(spec["path"], n, shape, dtype,
                                           codec=codec)
    elif kind == "simulated":
        disk = spec.get("disk")
        model = (DiskModel(float(disk[0]), float(disk[1]))
                 if disk else DiskModel.hdd())
        inner = SimulatedDiskBackingStore(n, shape, dtype, disk=model,
                                          sleep=bool(spec.get("sleep")))
    else:
        raise BackingStoreError(f"unknown shard worker kind {kind!r}")
    fault = spec.get("fault")
    if fault:
        inner = FaultInjectingBackingStore(inner, **fault)
    return inner


def _shard_worker_main(conn: socket.socket) -> None:
    """Serve one shard's request stream until CLOSE or parent EOF.

    Runs in a forked child. Requests are serviced strictly in arrival
    order (this in-order property is what makes FLUSH a barrier).
    Operation errors become typed ERR replies; a ``SimulatedCrash``
    escapes as a hard ``os._exit`` — modelling SIGKILL, with no flush
    and no index republication — which the parent observes as EOF.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent owns Ctrl-C
    store: Any = None
    # Item geometry comes from the ATTACH spec, not the store object —
    # not every backing implementation exposes shape/dtype attributes.
    shape: tuple[int, ...] = ()
    dtype = np.dtype(np.float64)
    try:
        while True:
            hdr = _recv_exact(conn, _HEADER.size)
            if hdr is None:
                break
            req, op, item, length = _HEADER.unpack(hdr)
            payload = _recv_exact(conn, length) if length else b""
            if payload is None:
                break
            stop = False
            try:
                if op == OP_ATTACH:
                    if store is not None:
                        store.close()
                    spec = json.loads(payload.decode())
                    shape = tuple(int(d) for d in spec["item_shape"])
                    dtype = np.dtype(str(spec["dtype"]))
                    store = _build_worker_store(spec)
                    reply_op, reply = OP_OK, b""
                elif store is None:
                    raise BackingStoreError("shard worker is not attached")
                elif op == OP_READ:
                    out = np.empty(shape, dtype=dtype)
                    store.read(int(item), out)
                    reply_op, reply = OP_DATA, out.tobytes()
                elif op == OP_WRITE:
                    data = np.frombuffer(payload, dtype=dtype).reshape(shape)
                    store.write(int(item), data)
                    reply_op, reply = OP_OK, b""
                elif op == OP_FLUSH:
                    store.flush()
                    reply_op, reply = OP_OK, b""
                elif op == OP_CLOSE:
                    store.close()
                    reply_op, reply = OP_OK, b""
                    stop = True
                else:
                    raise BackingStoreError(f"unknown opcode {op}")
            except Exception as exc:  # noqa: BLE001 - becomes a typed ERR frame
                reply_op, reply = OP_ERR, _err_payload(exc)
            _sendmsg_all(conn, _frame(req, reply_op, item, reply))
            if stop:
                return
    except OSError:
        pass  # parent went away mid-frame; nothing left to reply to
    except BaseException:  # SimulatedCrash: die like SIGKILL, no cleanup
        os._exit(1)
    finally:
        with contextlib.suppress(Exception):
            conn.close()
        if store is not None:
            with contextlib.suppress(Exception):
                store.close()


# -- client side --------------------------------------------------------------


class _Pending:
    """One in-flight request: the re-issue record and the completion cell."""

    __slots__ = ("req", "op", "item", "payload", "out", "done", "error", "t0")

    def __init__(self, req: int, op: int, item: int, payload: bytes,
                 out: np.ndarray | None) -> None:
        self.req = req
        self.op = op
        self.item = item
        self.payload = payload
        self.out = out
        self.done = False                        # set under the owning client's _cond
        self.error: BaseException | None = None  # set under the owning client's _cond
        self.t0 = 0.0


class ShardTicket:
    """Waitable handle for one submitted shard operation."""

    __slots__ = ("_client", "_entry")

    def __init__(self, client: "_ShardClient", entry: _Pending) -> None:
        self._client = client
        self._entry = entry

    def wait(self) -> None:
        """Block until the operation completed; re-raise its error."""
        self._client.wait(self._entry)

    @property
    def done(self) -> bool:
        return self._client.is_done(self._entry)


class _ShardClient:
    """Front-end endpoint for one shard worker process.

    Owns the socket, the worker process handle, the pending-request map
    and a receiver thread that matches replies, fills read buffers, and
    transparently restarts a dead worker (re-ATTACH + re-issue of every
    pending request in submission order).

    Locks (both leaves of the global hierarchy):

    * ``_cond`` — pending map, window accounting, restart/close state;
    * ``_send`` — serialises ``sendmsg`` so frames from concurrent
      submitters never interleave mid-frame. Never held together with
      ``_cond``.
    """

    def __init__(self, owner: "ShardedBackingStore", shard: int,
                 spec: dict[str, Any], window: int) -> None:
        self.owner = owner
        self.shard = int(shard)
        self.spec = dict(spec)
        self.window = int(window)
        self.restarts = 0                           # guarded-by: _cond
        self.reads_completed = 0                    # guarded-by: _cond
        self.writes_completed = 0                   # guarded-by: _cond
        self.bytes_read = 0                         # guarded-by: _cond
        self.bytes_written = 0                      # guarded-by: _cond
        self._cond = make_condition(make_lock("ShardClient"))
        self._send = make_lock("ShardClient.send")
        self._pending: dict[int, _Pending] = {}     # guarded-by: _cond
        self._next_req = 0                          # guarded-by: _cond
        self._restarting = False                    # guarded-by: _cond
        self._closing = False                       # guarded-by: _cond
        self._fatal: BaseException | None = None    # guarded-by: _cond
        self._sock: socket.socket | None = None
        self._proc: multiprocessing.process.BaseProcess | None = None
        self._receiver: Any = None
        self._spawn()
        # The ATTACH handshake doubles as liveness + geometry validation.
        self.wait(self._submit_attach())

    # -- process lifecycle ----------------------------------------------------

    def _spawn(self) -> None:
        ctx = multiprocessing.get_context("fork")
        with _SPAWN_LOCK:
            parent, child = socket.socketpair()
            proc = ctx.Process(target=_shard_worker_main, args=(child,),
                               daemon=True, name=f"shard-worker-{self.shard}")
            proc.start()
            child.close()
        self._sock = parent
        self._proc = proc
        self._receiver = make_thread(
            lambda: self._receiver_loop(parent), daemon=True,
            name=f"shard-recv-{self.shard}")
        self._receiver.start()

    def worker_pid(self) -> int:
        """PID of the current worker process (test/diagnostic use)."""
        proc = self._proc
        if proc is None or proc.pid is None:
            raise BackingStoreError(f"shard {self.shard} has no worker")
        return proc.pid

    def kill_worker(self) -> None:
        """SIGKILL the worker (crash testing); the receiver restarts it."""
        os.kill(self.worker_pid(), signal.SIGKILL)

    # -- submission -----------------------------------------------------------

    def _submit_attach(self) -> _Pending:
        payload = json.dumps(self.spec).encode()
        return self.submit(OP_ATTACH, 0, payload, None)

    def submit(self, op: int, item: int, payload: bytes,
               out: np.ndarray | None) -> _Pending:
        """Register one request and send its frame (bounded-window)."""
        return self.submit_many([(op, item, payload, out)])[0]

    def submit_many(self, ops: list[tuple[int, int, bytes,
                                          np.ndarray | None]]) -> list[_Pending]:
        """Register a batch and send all frames with one vectored call.

        Blocks while the in-flight window is full or a restart is
        replaying the pending map. If the worker dies between
        registration and send, the restart path re-issues the entries
        from the pending map — a duplicate frame is harmless because the
        worker's operations are idempotent and the receiver drops
        replies whose ``req_id`` is no longer pending.
        """
        entries: list[_Pending] = []
        with self._cond:
            for op, item, payload, out in ops:
                while (self._restarting
                       or len(self._pending) >= self.window):
                    if self._fatal is not None:
                        raise BackingStoreError(
                            f"shard {self.shard} worker unrecoverable"
                        ) from self._fatal
                    self._cond.wait()
                if self._fatal is not None:
                    raise BackingStoreError(
                        f"shard {self.shard} worker unrecoverable"
                    ) from self._fatal
                if self._closing:
                    raise BackingStoreError("sharded backing store is closed")
                req = self._next_req
                self._next_req = (self._next_req + 1) % (1 << 32)
                entry = _Pending(req, op, item, payload, out)
                entry.t0 = time.perf_counter()
                self._pending[req] = entry
                entries.append(entry)
            sock = self._sock
        frames: list[bytes] = []
        for entry in entries:
            frames.extend(_frame(entry.req, entry.op, entry.item,
                                 entry.payload))
        try:
            with self._send:
                assert sock is not None
                _sendmsg_all(sock, frames)
        except OSError:
            pass  # worker died mid-send; restart re-issues from _pending
        return entries

    def wait(self, entry: _Pending) -> None:
        with self._cond:
            while not entry.done:
                self._cond.wait()
            if entry.error is not None:
                raise entry.error

    def is_done(self, entry: _Pending) -> bool:
        with self._cond:
            return entry.done

    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- receiver thread ------------------------------------------------------

    def _receiver_loop(self, sock: socket.socket) -> None:  # thread: shard-recv
        try:
            while True:
                hdr = _recv_exact(sock, _HEADER.size)
                if hdr is None:
                    break
                req, op, _item, length = _HEADER.unpack(hdr)
                payload = _recv_exact(sock, length) if length else b""
                if payload is None:
                    break
                self._complete(req, op, payload)
        except OSError:
            pass
        with self._cond:
            if self._closing:
                return
        self._restart(sock)

    def _complete(self, req: int, op: int, payload: bytes) -> None:
        with self._cond:
            entry = self._pending.pop(req, None)
        if entry is None:
            return  # duplicate reply after a restart re-issue
        error: BaseException | None = None
        if op == OP_ERR:
            error = _map_error(payload)
        elif entry.op == OP_READ and entry.out is not None:
            flat = entry.out.reshape(-1).view(np.uint8)
            if len(payload) != flat.size:
                error = BackingStoreError(
                    f"shard {self.shard} returned {len(payload)} bytes "
                    f"for item {entry.item}, expected {flat.size}")
            else:
                flat[:] = np.frombuffer(payload, dtype=np.uint8)
        dt = time.perf_counter() - entry.t0
        if error is None and entry.op in (OP_READ, OP_WRITE):
            self._account(entry.op, dt)
        with self._cond:
            entry.error = error
            entry.done = True
            self._cond.notify_all()

    def _account(self, op: int, dt: float) -> None:
        """Per-shard accounting for one *successful* read/write.

        Only completions count — a faulted attempt that will be retried
        must not inflate the per-shard labels, or their sums stop
        matching the store-level physical I/O counters.
        """
        nbytes = self.owner.item_bytes
        with self._cond:
            if op == OP_READ:
                self.reads_completed += 1
                self.bytes_read += nbytes
            else:
                self.writes_completed += 1
                self.bytes_written += nbytes
        probe, mx = self.owner.probe, self.owner.metrics
        label = {"shard": str(self.shard)}
        if op == OP_READ:
            if probe is not None:
                probe.record_read(dt, nbytes)
            if mx is not None:
                mx.inc_labeled("backing_reads", label)
                mx.inc_labeled("backing_bytes_read", label, nbytes)
                mx.observe("backing_read_seconds", dt)
        else:
            if probe is not None:
                probe.record_write(dt, nbytes)
            if mx is not None:
                mx.inc_labeled("backing_writes", label)
                mx.inc_labeled("backing_bytes_written", label, nbytes)
                mx.observe("backing_write_seconds", dt)

    # -- restart --------------------------------------------------------------

    def _restart(self, dead_sock: socket.socket) -> None:
        """Replace a dead worker and re-issue every pending request."""
        with self._cond:
            if self._closing or self._fatal is not None:
                return
            self._restarting = True
            self.restarts += 1
            pending = list(self._pending.values())  # submission order
        with contextlib.suppress(OSError):
            dead_sock.close()
        old = self._proc
        if old is not None:
            old.join(timeout=5.0)
        try:
            self._spawn()
            attach = json.dumps(self.spec).encode()
            frames = _frame(self._reserve_req(OP_ATTACH), OP_ATTACH, 0, attach)
            for entry in pending:
                frames.extend(_frame(entry.req, entry.op, entry.item,
                                     entry.payload))
            sock = self._sock
            with self._send:
                assert sock is not None
                _sendmsg_all(sock, frames)
        except (OSError, BackingStoreError) as exc:
            with self._cond:
                self._fatal = exc
                for entry in pending:
                    entry.error = exc
                    entry.done = True
                self._pending.clear()
                self._cond.notify_all()
            return
        self.owner._note_restart()
        with self._cond:
            self._restarting = False
            self._cond.notify_all()

    def _reserve_req(self, op: int) -> int:
        """A req id whose reply nobody waits on (restart-time ATTACH)."""
        with self._cond:
            req = self._next_req
            self._next_req = (self._next_req + 1) % (1 << 32)
            entry = _Pending(req, op, 0, b"", None)
            entry.t0 = time.perf_counter()
            self._pending[req] = entry
            return req

    # -- shutdown -------------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
            sock = self._sock
        if sock is not None:
            with contextlib.suppress(OSError), self._send:
                _sendmsg_all(sock, _frame(0xFFFFFFFF, OP_CLOSE, 0, b""))
        proc = self._proc
        if proc is not None:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - stuck-worker safety net
                proc.terminate()
                proc.join(timeout=5.0)
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()
        if self._receiver is not None:
            self._receiver.join(timeout=5.0)


class ShardedBackingStore:
    """Multi-process backing store: items hash-routed to shard workers.

    Parameters
    ----------
    directory:
        Home of the shard files (``shard_<s>.bin`` / ``shard_<s>.czb``).
        Reattaching a directory from a previous run restores every
        previously flushed item (the shard map is a pure function of the
        item id, so placement is reproduced exactly).
    num_items, item_shape, dtype:
        Logical geometry, as for
        :class:`~repro.core.backing.FileBackingStore`.
    num_shards:
        Worker-process count ``N``; placement is
        :func:`repro.core.layout.shard_of`.
    kind:
        Per-worker store: ``"file"``, ``"compressed"`` or ``"simulated"``
        (the latter models a slow device per worker — data is volatile).
    codec:
        Codec spec for ``kind="compressed"`` (default ``zlib:6``).
    disk / sleep:
        For ``kind="simulated"``: ``(access_latency, bandwidth)`` of the
        modelled device and whether transfers block their caller.
    fault:
        Optional fault spec (``FaultInjectingBackingStore`` kwargs minus
        the store). Each worker wraps its store with ``seed + shard`` so
        fault schedules replay deterministically per shard.
    window:
        Bounded in-flight window per shard; ``submit_*`` blocks when a
        shard has this many un-acked operations.
    """

    def __init__(self, directory: str | os.PathLike[str], num_items: int,
                 item_shape: tuple[int, ...], dtype: DTypeLike = np.float64,
                 *, num_shards: int = 4, kind: str = "file",
                 codec: str | None = None,
                 disk: tuple[float, float] | None = None,
                 sleep: bool = False,
                 fault: dict[str, Any] | None = None,
                 window: int = 64) -> None:
        if num_shards < 1:
            raise BackingStoreError(
                f"need at least 1 shard, got {num_shards}")
        if window < 1:
            raise BackingStoreError(
                f"in-flight window must be >= 1, got {window}")
        if kind not in WORKER_KINDS:
            raise BackingStoreError(
                f"unknown shard worker kind {kind!r}; expected one of "
                f"{WORKER_KINDS}")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.num_items = int(num_items)
        self.item_shape = tuple(int(d) for d in item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize
        self.num_shards = int(num_shards)
        self.kind = kind
        # Observability hooks (default off), see MemoryBackingStore.probe.
        # The receiver threads read them per completion, one shard label
        # per receiver (single writer per labelled series).
        self.probe: BackingProbe | None = None
        self.metrics: MetricsRegistry | None = None
        self._closed = False
        self._restart_lock = make_lock("ShardedBackingStore")
        self.total_restarts = 0  # guarded-by: _restart_lock
        groups = shard_items(self.num_items, self.num_shards)
        self._shard = np.zeros(max(self.num_items, 1), dtype=np.int64)
        self._local = np.zeros(max(self.num_items, 1), dtype=np.int64)
        for s, items in enumerate(groups):
            for local, item in enumerate(items):
                self._shard[item] = s
                self._local[item] = local
        ext = "czb" if kind == "compressed" else "bin"
        self._clients: list[_ShardClient] = []
        try:
            for s, items in enumerate(groups):
                spec: dict[str, Any] = {
                    "kind": kind,
                    "path": os.path.join(self.directory, f"shard_{s}.{ext}"),
                    # A worker must be constructible even for an empty
                    # shard (hash skew at tiny num_items).
                    "num_items": max(len(items), 1),
                    "item_shape": list(self.item_shape),
                    "dtype": self.dtype.name,
                }
                if codec is not None:
                    spec["codec"] = codec
                if disk is not None:
                    spec["disk"] = [float(disk[0]), float(disk[1])]
                if sleep:
                    spec["sleep"] = True
                if fault:
                    per_shard = dict(fault)
                    per_shard["seed"] = int(fault.get("seed", 0)) + s
                    spec["fault"] = per_shard
                self._clients.append(_ShardClient(self, s, spec, window))
        except BaseException:
            for client in self._clients:
                with contextlib.suppress(Exception):
                    client.close()
            raise

    @classmethod
    def from_layout(cls, directory: "str | os.PathLike[str]",
                    layout: "StorageLayout", dtype: DTypeLike = np.float64,
                    **kwargs: Any) -> "ShardedBackingStore":
        """Backing sized for a layout's item space (blocks, not nodes)."""
        return cls(directory, layout.num_items, layout.item_shape, dtype,
                   **kwargs)

    # -- placement ------------------------------------------------------------

    def shard_of_item(self, item: int) -> int:
        """The shard serving ``item`` (== ``layout.shard_of(item, N)``)."""
        self._check(item)
        return int(self._shard[item])

    def _check(self, item: int) -> None:
        if self._closed:
            raise BackingStoreError("backing store is closed")
        if not 0 <= item < self.num_items:
            raise BackingStoreError(
                f"item {item} out of range [0, {self.num_items})")

    def _route(self, item: int) -> tuple[_ShardClient, int]:
        self._check(item)
        return self._clients[int(self._shard[item])], int(self._local[item])

    # -- async submit/collect hooks (AsyncBackingStore) ------------------------

    def submit_read(self, item: int, out: np.ndarray) -> ShardTicket:
        """Issue a read without waiting; ``ticket.wait()`` collects it."""
        if out.nbytes != self.item_bytes or not out.flags.c_contiguous:
            raise BackingStoreError(
                f"read buffer mismatch: {out.nbytes} bytes vs item width "
                f"{self.item_bytes}")
        client, local = self._route(item)
        return ShardTicket(client, client.submit(OP_READ, local, b"", out))

    def submit_write(self, item: int, data: np.ndarray) -> ShardTicket:
        """Issue a write without waiting; ``ticket.wait()`` collects it.

        The payload is serialised immediately, so the caller's buffer is
        reusable as soon as this returns (same contract as the
        write-behind staging copy).
        """
        client, local = self._route(item)
        payload = self._payload(item, data)
        return ShardTicket(client, client.submit(OP_WRITE, local, payload,
                                                 None))

    def _payload(self, item: int, data: np.ndarray) -> bytes:
        if data.dtype != self.dtype or not data.flags.c_contiguous:
            data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.nbytes != self.item_bytes:
            raise BackingStoreError(
                f"write buffer mismatch: {data.nbytes} bytes vs item width "
                f"{self.item_bytes}")
        return data.tobytes()

    def read_batch(self, items: list[tuple[int, np.ndarray]]) -> list[ShardTicket]:
        """Submit many reads, one vectored send per shard; returns tickets."""
        return self._batch(OP_READ, [(item, out, b"") for item, out in items])

    def write_batch(self, items: list[tuple[int, np.ndarray]]) -> list[ShardTicket]:
        """Submit many writes, one vectored send per shard; returns tickets."""
        return self._batch(OP_WRITE, [
            (item, None, self._payload(item, data)) for item, data in items])

    def _batch(self, op: int,
               rows: list[tuple[int, np.ndarray | None, bytes]]) -> list[ShardTicket]:
        by_shard: dict[int, list[int]] = {}
        for idx, (item, _out, _payload) in enumerate(rows):
            self._check(item)
            by_shard.setdefault(int(self._shard[item]), []).append(idx)
        tickets: list[ShardTicket | None] = [None] * len(rows)
        for s, idxs in by_shard.items():
            client = self._clients[s]
            ops = [(op, int(self._local[rows[i][0]]), rows[i][2], rows[i][1])
                   for i in idxs]
            for i, entry in zip(idxs, client.submit_many(ops)):
                tickets[i] = ShardTicket(client, entry)
        return [t for t in tickets if t is not None]

    # -- BackingStore interface ------------------------------------------------

    def read(self, item: int, out: np.ndarray) -> None:
        self.submit_read(item, out).wait()

    def write(self, item: int, data: np.ndarray) -> None:
        self.submit_write(item, data).wait()

    def flush(self) -> None:
        """Durability barrier across every shard.

        One FLUSH frame per worker; in-order servicing makes each a
        per-shard barrier behind all previously submitted writes, and
        waiting on all replies makes the whole call a global barrier.
        """
        if self._closed:
            return
        tickets = [ShardTicket(c, c.submit(OP_FLUSH, 0, b"", None))
                   for c in self._clients]
        for t in tickets:
            t.wait()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for client in self._clients:
            client.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()

    # -- failure/diagnostics ---------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one shard worker (crash testing); it restarts itself."""
        self._clients[int(shard)].kill_worker()

    def worker_pids(self) -> list[int]:
        return [c.worker_pid() for c in self._clients]

    def restarts(self) -> int:
        """Total worker restarts performed so far."""
        with self._restart_lock:
            return self.total_restarts

    def _note_restart(self) -> None:
        mx = self.metrics
        with self._restart_lock:
            self.total_restarts += 1
            if mx is not None:
                mx.inc("shard_restarts")

    def per_shard_counts(self) -> dict[str, dict[str, int]]:
        """``{shard: {reads, writes, bytes_read, bytes_written, restarts}}``.

        The authoritative client-side completion counts; the labelled
        registry series mirror these one-to-one.
        """
        snap: dict[str, dict[str, int]] = {}
        for c in self._clients:
            with c._cond:
                snap[str(c.shard)] = {
                    "reads": c.reads_completed,
                    "writes": c.writes_completed,
                    "bytes_read": c.bytes_read,
                    "bytes_written": c.bytes_written,
                    "restarts": c.restarts,
                }
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedBackingStore(n={self.num_items}, "
                f"shards={self.num_shards}, kind={self.kind!r}, "
                f"w={self.item_bytes}B)")
