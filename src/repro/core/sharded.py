"""Sharded multi-process backing tier addressed by item hash.

The single-process backing stores serialise every transfer through one
file descriptor and one extent lock — fine for one engine, but a ceiling
for the multi-tenant service direction and for datasets far beyond RAM.
This module splits the item space across ``N`` *shard worker processes*:

* Placement is the layout layer's :func:`repro.core.layout.shard_of`
  (stable ``crc32(item) % N``), so clients, workers and a reattaching
  run after a crash all derive the identical map with no coordination.
* Each worker owns a **private** single-process store — a
  :class:`~repro.core.backing.FileBackingStore`,
  :class:`~repro.core.compress.CompressedFileBackingStore` or
  :class:`~repro.core.backing.SimulatedDiskBackingStore` — addressed by
  dense *local* ids (the rank of the item within its shard), behind a
  length-prefixed request/reply protocol over a Unix socket pair.
* The front-end :class:`ShardedBackingStore` implements the plain
  :class:`~repro.core.backing.BackingStore` protocol (``read``/``write``/
  ``flush``/``close``) *and* the async
  :class:`~repro.core.backing.AsyncBackingStore` hooks
  (``submit_read``/``submit_write`` returning a waitable ticket), so the
  write-behind queue and the prefetcher keep all shards busy
  concurrently instead of serialising through one store lock.

Wire protocol (one frame = 33-byte header + optional payload)::

    header  = <u32 req_id> <u8 opcode> <u64 item> <u32 payload_len>
              <u64 trace_id> <f64 t_send>
    opcodes = ATTACH (payload: json shard spec — build/reattach the store;
              the OK reply carries {t_recv, t_reply} worker-clock samples
              for NTP-style clock-offset calibration)
              READ   (reply DATA carries the raw item bytes)
              WRITE  (payload: raw item bytes; reply OK)
              FLUSH  (per-shard durability barrier; reply OK)
              CLOSE  (close the store and exit; reply OK)
              TELEMETRY (non-empty payload {"arm", "shard",
              "clock_offset"}: arm/disarm worker-side recording, OK
              reply carries {t_recv, t_reply} for a quiescent
              recalibration of the clock offset; empty payload: the
              DATA reply carries the worker's telemetry delta — probe
              histograms, wire-wait histograms, spans — since the
              previous pull)
    replies = OK / DATA / ERR (payload: json {type, message})

``trace_id`` and ``t_send`` are the request-scoped trace context: the
client stamps every frame with the span id allocated for the request
and its submission timestamp, so an *armed* worker attributes its disk
time to the exact client-side span that caused it (the parent merges
worker spans back as per-process tracks with Chrome flow links) and
measures the queue+wire leg against the client clock, corrected by the
calibrated offset. Unarmed workers never read either field
and record nothing — untraced runs pay only the 16 extra header bytes
per frame (pay-for-play, like every other observability hook).

Requests are matched to replies by ``req_id``, so a client may keep up
to ``window`` operations in flight per shard (bounded-window
back-pressure); frames queued together are sent with one vectored
``sendmsg`` (``write_batch``/``read_batch``), and each worker services
its stream strictly in order — which is what makes ``FLUSH`` a
*barrier*: it cannot overtake any write submitted before it.

Failure model: a worker that dies (injected :class:`SimulatedCrash`, a
test ``SIGKILL``, an OS OOM-kill) closes its socket; the client's
receiver thread observes EOF, spawns a fresh worker, replays ``ATTACH``
(the worker store reattaches its shard file — riding the ``"r+b"``
reattach semantics of the file stores) and re-issues every un-acked
request in submission order. Acked writes live in the OS page cache of
the shard file and survive the worker's death; re-issued operations are
idempotent (positioned writes of the same bytes), so a kill-and-restart
resumes bit-identically. Fault injection composes *per shard*: a fault
spec wraps each worker's store in a
:class:`~repro.core.faults.FaultInjectingBackingStore` seeded
``seed + shard``, so the PR 8 fault schedules replay deterministically
per shard; transient errors travel back as typed ``ERR`` frames and a
client-side :class:`~repro.core.faults.RetryingBackingStore` retries
them exactly as it would over a local store.

Lock hierarchy (see DESIGN.md "Concurrency model"): the per-shard
client locks (``_ShardClient._cond``, ``_ShardClient._send``) are
*leaves* — client code never acquires a store or write-behind lock, so
every edge points into this module and no cycle is possible.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import socket
import struct
import threading
import time
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np
from numpy.typing import DTypeLike

from repro.analysis.race import make_condition, make_lock, make_thread
from repro.core.backing import (
    FileBackingStore,
    SimulatedDiskBackingStore,
)
from repro.core.compress import CompressedFileBackingStore, make_codec
from repro.core.faults import FaultInjectingBackingStore, InjectedFault
from repro.core.layout import shard_items
from repro.errors import BackingStoreError
# The obs primitives are deliberately core-free (see their module
# docstrings), so importing them here cannot cycle.
from repro.obs.histogram import BackingProbe, LogHistogram
from repro.obs.spans import SpanRecord, next_span_id
from repro.vm.disk import DiskModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.layout import StorageLayout
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanRecorder

#: Frame header: req_id (u32), opcode (u8), item (u64), payload length
#: (u32), trace span id (u64), client-clock send timestamp (f64).
_HEADER = struct.Struct("<IBQIQd")

OP_ATTACH = 1
OP_READ = 2
OP_WRITE = 3
OP_FLUSH = 4
OP_CLOSE = 5
OP_TELEMETRY = 6
OP_OK = 0x80
OP_DATA = 0x81
OP_ERR = 0x82

#: Cap on buffered worker-side spans between OP_TELEMETRY pulls: bounds
#: the reply frame; overflow increments ``spans_dropped`` (honest
#: accounting, like the tracer ring).
_WORKER_SPAN_CAP = 8192

#: Worker-store kinds a shard spec may name.
WORKER_KINDS = ("file", "compressed", "simulated")

#: Serialises (socketpair -> fork -> close child end) so no forked worker
#: ever inherits a still-open child end of *another* shard's pair — which
#: would defeat EOF-based dead-worker detection for that shard.
_SPAWN_LOCK = make_lock("ShardedSpawn")


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF (peer died or closed)."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            k = sock.recv_into(view[got:])
        except InterruptedError:
            continue
        if k == 0:
            return None
        got += k
    return bytes(buf)


def _sendmsg_all(sock: socket.socket, buffers: list[bytes]) -> None:
    """Vectored send of all buffers (one syscall when the kernel allows)."""
    views = [memoryview(b) for b in buffers if len(b)]
    while views:
        try:
            sent = sock.sendmsg(views)
        except InterruptedError:
            continue
        while sent:
            if sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0


def _frame(req: int, op: int, item: int, payload: bytes,
           trace: int = 0, t_send: float = 0.0) -> list[bytes]:
    return [_HEADER.pack(req, op, item, len(payload), trace, t_send),
            payload]


def _err_payload(exc: BaseException) -> bytes:
    return json.dumps({"type": type(exc).__name__,
                       "message": str(exc)}).encode()


def _map_error(payload: bytes) -> BackingStoreError:
    """Rehydrate a worker-side error into the client's exception taxonomy.

    ``InjectedFault`` keeps its type so a client-side
    :class:`~repro.core.faults.RetryingBackingStore` treats it as
    transient; everything else is a plain :class:`BackingStoreError`.
    """
    try:
        doc = json.loads(payload.decode())
        kind, message = str(doc["type"]), str(doc["message"])
    except (ValueError, KeyError, UnicodeDecodeError):
        kind, message = "BackingStoreError", payload.decode(errors="replace")
    if kind == "InjectedFault":
        return InjectedFault(message)
    return BackingStoreError(f"shard worker {kind}: {message}")


# -- worker side (runs in the forked child) ----------------------------------


def _build_worker_store(spec: dict[str, Any]) -> Any:
    """Instantiate a shard's private store from its json spec.

    Reattaching is the store constructors' own behaviour: an existing
    shard file is opened ``"r+b"`` with its contents intact, which is
    what makes worker restart transparent.
    """
    kind = spec["kind"]
    n = int(spec["num_items"])
    shape = tuple(int(d) for d in spec["item_shape"])
    dtype = np.dtype(str(spec["dtype"]))
    inner: Any
    if kind == "file":
        inner = FileBackingStore(spec["path"], n, shape, dtype)
    elif kind == "compressed":
        codec = make_codec(str(spec.get("codec") or "zlib:6"))
        inner = CompressedFileBackingStore(spec["path"], n, shape, dtype,
                                           codec=codec)
    elif kind == "simulated":
        disk = spec.get("disk")
        model = (DiskModel(float(disk[0]), float(disk[1]))
                 if disk else DiskModel.hdd())
        inner = SimulatedDiskBackingStore(n, shape, dtype, disk=model,
                                          sleep=bool(spec.get("sleep")))
    else:
        raise BackingStoreError(f"unknown shard worker kind {kind!r}")
    fault = spec.get("fault")
    if fault:
        inner = FaultInjectingBackingStore(inner, **fault)
    return inner


class _WorkerTelemetry:
    """Worker-process-side probe + span state (exists only while armed).

    Lives entirely inside the forked child, so no locking: the worker
    services its stream on one thread. Span ids are allocated from a
    shard-salted range disjoint from the parent's
    :func:`repro.obs.spans.next_span_id` values, so merged timelines
    never alias.
    """

    def __init__(self, shard: int, clock_offset: float) -> None:
        self.probe = BackingProbe()
        self.wire_read = LogHistogram()
        self.wire_write = LogHistogram()
        self.spans: list[list[Any]] = []
        self.spans_dropped = 0
        self.clock_offset = float(clock_offset)
        self._next_span = ((int(shard) + 1) << 40) + 1

    def span(self, name: str, start: float, dur: float, parent: int,
             item: int) -> None:
        if len(self.spans) >= _WORKER_SPAN_CAP:
            self.spans_dropped += 1
            return
        sid = self._next_span
        self._next_span += 1
        self.spans.append([name, start, dur, sid, parent, int(item)])

    def drain(self) -> bytes:
        """The telemetry delta since the previous drain, as a JSON frame."""
        doc = {
            "probe": self.probe.drain_state(),
            "wire_read": self.wire_read.drain_state(),
            "wire_write": self.wire_write.drain_state(),
            "spans": self.spans,
            "spans_dropped": self.spans_dropped,
        }
        self.spans = []
        self.spans_dropped = 0
        return json.dumps(doc).encode()


def _shard_worker_main(conn: socket.socket) -> None:
    """Serve one shard's request stream until CLOSE or parent EOF.

    Runs in a forked child. Requests are serviced strictly in arrival
    order (this in-order property is what makes FLUSH a barrier).
    Operation errors become typed ERR replies; a ``SimulatedCrash``
    escapes as a hard ``os._exit`` — modelling SIGKILL, with no flush
    and no index republication — which the parent observes as EOF.

    Telemetry is recorded only while armed (OP_TELEMETRY control frame)
    and only for *successful* operations, so worker-side histogram
    counts equal client-side completion counts equal the store-level
    physical I/O totals — the bit-exact cross-check ``--attribution``
    and the bench enforce.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent owns Ctrl-C
    store: Any = None
    telemetry: _WorkerTelemetry | None = None
    # Item geometry comes from the ATTACH spec, not the store object —
    # not every backing implementation exposes shape/dtype attributes.
    shape: tuple[int, ...] = ()
    dtype = np.dtype(np.float64)
    try:
        while True:
            hdr = _recv_exact(conn, _HEADER.size)
            if hdr is None:
                break
            req, op, item, length, trace, t_send = _HEADER.unpack(hdr)
            t_recv = (time.perf_counter()
                      if telemetry is not None
                      or op in (OP_ATTACH, OP_TELEMETRY) else 0.0)
            payload = _recv_exact(conn, length) if length else b""
            if payload is None:
                break
            stop = False
            try:
                if op == OP_ATTACH:
                    if store is not None:
                        store.close()
                    spec = json.loads(payload.decode())
                    shape = tuple(int(d) for d in spec["item_shape"])
                    dtype = np.dtype(str(spec["dtype"]))
                    store = _build_worker_store(spec)
                    telemetry = None  # a fresh worker starts disarmed
                    # Handshake: worker-clock samples bracketing the
                    # attach, for NTP-style offset calibration.
                    reply_op = OP_OK
                    reply = json.dumps({
                        "t_recv": t_recv,
                        "t_reply": time.perf_counter(),
                    }).encode()
                elif op == OP_TELEMETRY:
                    if length:
                        ctl = json.loads(payload.decode())
                        if ctl.get("arm"):
                            if telemetry is None:
                                telemetry = _WorkerTelemetry(
                                    int(ctl.get("shard", 0)),
                                    float(ctl.get("clock_offset", 0.0)))
                            else:
                                telemetry.clock_offset = float(
                                    ctl.get("clock_offset", 0.0))
                        else:
                            telemetry = None
                        # Control replies bracket a quiescent exchange —
                        # a far tighter calibration sample than ATTACH,
                        # which races worker startup.
                        reply_op = OP_OK
                        reply = json.dumps({
                            "t_recv": t_recv,
                            "t_reply": time.perf_counter(),
                        }).encode()
                    else:
                        reply_op = OP_DATA
                        reply = (b"{}" if telemetry is None
                                 else telemetry.drain())
                elif store is None:
                    raise BackingStoreError("shard worker is not attached")
                elif op == OP_READ:
                    out = np.empty(shape, dtype=dtype)
                    if telemetry is None:
                        store.read(int(item), out)
                    else:
                        t_op = time.perf_counter()
                        store.read(int(item), out)
                        dt = time.perf_counter() - t_op
                        telemetry.probe.record_read(dt, out.nbytes)
                        telemetry.wire_read.record(
                            t_recv - (t_send + telemetry.clock_offset))
                        telemetry.span("shard_disk_read", t_recv,
                                       time.perf_counter() - t_recv,
                                       trace, item)
                    reply_op, reply = OP_DATA, out.tobytes()
                elif op == OP_WRITE:
                    data = np.frombuffer(payload, dtype=dtype).reshape(shape)
                    if telemetry is None:
                        store.write(int(item), data)
                    else:
                        t_op = time.perf_counter()
                        store.write(int(item), data)
                        dt = time.perf_counter() - t_op
                        telemetry.probe.record_write(dt, len(payload))
                        telemetry.wire_write.record(
                            t_recv - (t_send + telemetry.clock_offset))
                        telemetry.span("shard_disk_write", t_recv,
                                       time.perf_counter() - t_recv,
                                       trace, item)
                    reply_op, reply = OP_OK, b""
                elif op == OP_FLUSH:
                    store.flush()
                    reply_op, reply = OP_OK, b""
                elif op == OP_CLOSE:
                    store.close()
                    reply_op, reply = OP_OK, b""
                    stop = True
                else:
                    raise BackingStoreError(f"unknown opcode {op}")
            except Exception as exc:  # noqa: BLE001 - becomes a typed ERR frame
                reply_op, reply = OP_ERR, _err_payload(exc)
            # Armed replies carry the worker-clock send time, so the
            # client can split off the reply-wire leg.
            t_out = time.perf_counter() if telemetry is not None else 0.0
            _sendmsg_all(conn, _frame(req, reply_op, item, reply, 0, t_out))
            if stop:
                return
    except OSError:
        pass  # parent went away mid-frame; nothing left to reply to
    except BaseException:  # SimulatedCrash: die like SIGKILL, no cleanup
        os._exit(1)
    finally:
        with contextlib.suppress(Exception):
            conn.close()
        if store is not None:
            with contextlib.suppress(Exception):
                store.close()


# -- client side --------------------------------------------------------------


class _Pending:
    """One in-flight request: the re-issue record and the completion cell."""

    __slots__ = ("req", "op", "item", "payload", "out", "done", "error",
                 "t0", "trace", "parent", "result")

    def __init__(self, req: int, op: int, item: int, payload: bytes,
                 out: np.ndarray | None, trace: int = 0,
                 parent: int = 0) -> None:
        self.req = req
        self.op = op
        self.item = item
        self.payload = payload
        self.out = out
        self.done = False                        # set under the owning client's _cond
        self.error: BaseException | None = None  # set under the owning client's _cond
        self.t0 = 0.0
        self.trace = trace   # span id for this request (0 = untraced)
        self.parent = parent  # causing span id (write-behind/prefetch scope)
        self.result: bytes | None = None  # OP_TELEMETRY pull reply payload


class ShardTicket:
    """Waitable handle for one submitted shard operation."""

    __slots__ = ("_client", "_entry")

    def __init__(self, client: "_ShardClient", entry: _Pending) -> None:
        self._client = client
        self._entry = entry

    def wait(self) -> None:
        """Block until the operation completed; re-raise its error."""
        self._client.wait(self._entry)

    @property
    def done(self) -> bool:
        return self._client.is_done(self._entry)


class _ShardClient:
    """Front-end endpoint for one shard worker process.

    Owns the socket, the worker process handle, the pending-request map
    and a receiver thread that matches replies, fills read buffers, and
    transparently restarts a dead worker (re-ATTACH + re-issue of every
    pending request in submission order).

    Locks (both leaves of the global hierarchy):

    * ``_cond`` — pending map, window accounting, restart/close state;
    * ``_send`` — serialises ``sendmsg`` so frames from concurrent
      submitters never interleave mid-frame. Never held together with
      ``_cond``.
    """

    def __init__(self, owner: "ShardedBackingStore", shard: int,
                 spec: dict[str, Any], window: int) -> None:
        self.owner = owner
        self.shard = int(shard)
        self.spec = dict(spec)
        self.window = int(window)
        self.restarts = 0                           # guarded-by: _cond
        self.reads_completed = 0                    # guarded-by: _cond
        self.writes_completed = 0                   # guarded-by: _cond
        self.bytes_read = 0                         # guarded-by: _cond
        self.bytes_written = 0                      # guarded-by: _cond
        # Worker-clock minus client-clock offset, calibrated from the
        # ATTACH handshake and refined by every telemetry-control round
        # trip (single writer: the receiver thread; float reads
        # elsewhere are GIL-atomic).
        self.clock_offset = 0.0
        self._cond = make_condition(make_lock("ShardClient"))
        self._send = make_lock("ShardClient.send")
        self._pending: dict[int, _Pending] = {}     # guarded-by: _cond
        self._next_req = 0                          # guarded-by: _cond
        self._restarting = False                    # guarded-by: _cond
        self._closing = False                       # guarded-by: _cond
        self._fatal: BaseException | None = None    # guarded-by: _cond
        self._sock: socket.socket | None = None
        self._proc: multiprocessing.process.BaseProcess | None = None
        self._receiver: Any = None
        self._spawn()
        # The ATTACH handshake doubles as liveness + geometry validation.
        self.wait(self._submit_attach())

    # -- process lifecycle ----------------------------------------------------

    def _spawn(self) -> None:
        ctx = multiprocessing.get_context("fork")
        with _SPAWN_LOCK:
            parent, child = socket.socketpair()
            proc = ctx.Process(target=_shard_worker_main, args=(child,),
                               daemon=True, name=f"shard-worker-{self.shard}")
            proc.start()
            child.close()
        self._sock = parent
        self._proc = proc
        self._receiver = make_thread(
            lambda: self._receiver_loop(parent), daemon=True,
            name=f"shard-recv-{self.shard}")
        self._receiver.start()

    def worker_pid(self) -> int:
        """PID of the current worker process (test/diagnostic use)."""
        proc = self._proc
        if proc is None or proc.pid is None:
            raise BackingStoreError(f"shard {self.shard} has no worker")
        return proc.pid

    def kill_worker(self) -> None:
        """SIGKILL the worker (crash testing); the receiver restarts it."""
        os.kill(self.worker_pid(), signal.SIGKILL)

    # -- submission -----------------------------------------------------------

    def _submit_attach(self) -> _Pending:
        payload = json.dumps(self.spec).encode()
        return self.submit(OP_ATTACH, 0, payload, None)

    def submit(self, op: int, item: int, payload: bytes,
               out: np.ndarray | None, trace: int = 0,
               parent: int = 0) -> _Pending:
        """Register one request and send its frame (bounded-window)."""
        return self.submit_many([(op, item, payload, out, trace, parent)])[0]

    def submit_many(self, ops: list[tuple[int, int, bytes, np.ndarray | None,
                                          int, int]]) -> list[_Pending]:
        """Register a batch and send all frames with one vectored call.

        Blocks while the in-flight window is full or a restart is
        replaying the pending map. If the worker dies between
        registration and send, the restart path re-issues the entries
        from the pending map — a duplicate frame is harmless because the
        worker's operations are idempotent and the receiver drops
        replies whose ``req_id`` is no longer pending.

        When telemetry is armed, time stalled on the full window is
        measured (it is a stage of end-to-end request latency the
        per-request ``t0`` clock deliberately excludes) and reported to
        the owner after the lock is released.
        """
        entries: list[_Pending] = []
        armed = self.owner._armed
        stall_start = 0.0
        stalled = 0.0
        with self._cond:
            for op, item, payload, out, trace, parent in ops:
                while (self._restarting
                       or len(self._pending) >= self.window):
                    if self._fatal is not None:
                        raise BackingStoreError(
                            f"shard {self.shard} worker unrecoverable"
                        ) from self._fatal
                    t_wait = time.perf_counter() if armed else 0.0
                    self._cond.wait()
                    if armed:
                        if stall_start == 0.0:
                            stall_start = t_wait
                        stalled += time.perf_counter() - t_wait
                if self._fatal is not None:
                    raise BackingStoreError(
                        f"shard {self.shard} worker unrecoverable"
                    ) from self._fatal
                if self._closing:
                    raise BackingStoreError("sharded backing store is closed")
                req = self._next_req
                self._next_req = (self._next_req + 1) % (1 << 32)
                entry = _Pending(req, op, item, payload, out, trace, parent)
                entry.t0 = time.perf_counter()
                self._pending[req] = entry
                entries.append(entry)
            sock = self._sock
        if stalled > 0.0:
            self.owner._note_window_wait(self.shard, stall_start, stalled)
        frames: list[bytes] = []
        for entry in entries:
            # t_send is the registration timestamp already on the entry —
            # the trace context rides along with no extra clock reads.
            frames.extend(_frame(entry.req, entry.op, entry.item,
                                 entry.payload, entry.trace, entry.t0))
        try:
            with self._send:
                assert sock is not None
                _sendmsg_all(sock, frames)
        except OSError:
            pass  # worker died mid-send; restart re-issues from _pending
        return entries

    def wait(self, entry: _Pending) -> None:
        with self._cond:
            while not entry.done:
                self._cond.wait()
            if entry.error is not None:
                raise entry.error

    def is_done(self, entry: _Pending) -> bool:
        with self._cond:
            return entry.done

    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- receiver thread ------------------------------------------------------

    def _receiver_loop(self, sock: socket.socket) -> None:  # thread: shard-recv
        try:
            while True:
                hdr = _recv_exact(sock, _HEADER.size)
                if hdr is None:
                    break
                req, op, _item, length, _trace, t_send = _HEADER.unpack(hdr)
                payload = _recv_exact(sock, length) if length else b""
                if payload is None:
                    break
                self._complete(req, op, payload, t_send)
        except OSError:
            pass
        with self._cond:
            if self._closing:
                return
        self._restart(sock)

    def _complete(self, req: int, op: int, payload: bytes,
                  t_send: float) -> None:
        with self._cond:
            entry = self._pending.pop(req, None)
        if entry is None:
            return  # duplicate reply after a restart re-issue
        error: BaseException | None = None
        if op == OP_ERR:
            error = _map_error(payload)
        elif entry.op == OP_ATTACH and payload:
            self._calibrate(entry, payload)
        elif entry.op == OP_TELEMETRY:
            if entry.payload and payload:
                # Arm/disarm control round trip: its OK reply carries a
                # fresh timestamp bracket — recalibrate on it.
                self._calibrate(entry, payload)
            else:
                entry.result = payload
        elif entry.op == OP_READ and entry.out is not None:
            flat = entry.out.reshape(-1).view(np.uint8)
            if len(payload) != flat.size:
                error = BackingStoreError(
                    f"shard {self.shard} returned {len(payload)} bytes "
                    f"for item {entry.item}, expected {flat.size}")
            else:
                flat[:] = np.frombuffer(payload, dtype=np.uint8)
        t_done = time.perf_counter()
        dt = t_done - entry.t0
        if error is None and entry.op in (OP_READ, OP_WRITE):
            self._account(entry.op, dt)
            if self.owner._armed:
                if t_send > 0.0:
                    # Reply-wire leg: worker send (converted to the
                    # client clock) to this receive.
                    self.owner._record_reply(
                        entry.op, t_done - (t_send - self.clock_offset))
                sp = self.owner._spans
                if sp is not None and entry.trace:
                    sp.complete(
                        "shard_read" if entry.op == OP_READ
                        else "shard_write",
                        entry.t0, dt,
                        {"shard": self.shard, "item": entry.item},
                        span_id=entry.trace, parent=entry.parent)
        with self._cond:
            entry.error = error
            entry.done = True
            self._cond.notify_all()

    def _calibrate(self, entry: _Pending, payload: bytes) -> None:
        """NTP-style clock offset from a timestamped round trip.

        ``offset = worker_mid - client_mid`` where each midpoint halves
        the request/reply bracket on its own clock. On Linux,
        ``perf_counter`` is CLOCK_MONOTONIC and fork-shared, so the
        offset is ~0; the calibration matters on platforms (or future
        spawn-based workers) where the clocks do not share an epoch.
        """
        try:
            doc = json.loads(payload.decode())
            worker_mid = (float(doc["t_recv"]) + float(doc["t_reply"])) / 2.0
        except (ValueError, KeyError, UnicodeDecodeError):
            return
        client_mid = (entry.t0 + time.perf_counter()) / 2.0
        self.clock_offset = worker_mid - client_mid

    # -- telemetry control (parent side) --------------------------------------

    def set_telemetry(self, armed: bool) -> None:
        """Arm or disarm worker-side recording (synchronous round trips).

        Arming takes two round trips: the first reply's timestamp
        bracket recalibrates :attr:`clock_offset` under quiescent
        conditions (the ATTACH-time estimate races worker startup and
        can be off by the whole fork latency), the second ships the
        refined offset to the worker for its wire-leg measurements.
        """
        for _ in range(2 if armed else 1):
            ctl = json.dumps({
                "arm": bool(armed),
                "shard": self.shard,
                "clock_offset": self.clock_offset,
            }).encode()
            self.wait(self.submit(OP_TELEMETRY, 0, ctl, None))

    def pull_telemetry(self) -> dict[str, Any]:
        """Fetch-and-reset the worker's telemetry delta (empty if unarmed)."""
        entry = self.submit(OP_TELEMETRY, 0, b"", None)
        self.wait(entry)
        doc = json.loads((entry.result or b"{}").decode())
        return doc if isinstance(doc, dict) else {}

    def _account(self, op: int, dt: float) -> None:
        """Per-shard accounting for one *successful* read/write.

        Only completions count — a faulted attempt that will be retried
        must not inflate the per-shard labels, or their sums stop
        matching the store-level physical I/O counters.
        """
        nbytes = self.owner.item_bytes
        with self._cond:
            if op == OP_READ:
                self.reads_completed += 1
                self.bytes_read += nbytes
            else:
                self.writes_completed += 1
                self.bytes_written += nbytes
        probe, mx = self.owner.probe, self.owner.metrics
        label = {"shard": str(self.shard)}
        if op == OP_READ:
            if probe is not None:
                probe.record_read(dt, nbytes)
            if mx is not None:
                mx.inc_labeled("backing_reads", label)
                mx.inc_labeled("backing_bytes_read", label, nbytes)
                mx.observe("backing_read_seconds", dt)
        else:
            if probe is not None:
                probe.record_write(dt, nbytes)
            if mx is not None:
                mx.inc_labeled("backing_writes", label)
                mx.inc_labeled("backing_bytes_written", label, nbytes)
                mx.observe("backing_write_seconds", dt)

    # -- restart --------------------------------------------------------------

    def _restart(self, dead_sock: socket.socket) -> None:
        """Replace a dead worker and re-issue every pending request."""
        with self._cond:
            if self._closing or self._fatal is not None:
                return
            self._restarting = True
            self.restarts += 1
            pending = list(self._pending.values())  # submission order
        with contextlib.suppress(OSError):
            dead_sock.close()
        old = self._proc
        if old is not None:
            old.join(timeout=5.0)
        try:
            self._spawn()
            attach = json.dumps(self.spec).encode()
            frames = _frame(self._reserve_req(OP_ATTACH), OP_ATTACH, 0, attach)
            if self.owner._armed:
                # A fresh worker starts disarmed: re-arm before the
                # replay so re-issued operations keep being recorded.
                ctl = json.dumps({"arm": True, "shard": self.shard,
                                  "clock_offset": self.clock_offset}).encode()
                frames.extend(_frame(self._reserve_req(OP_TELEMETRY),
                                     OP_TELEMETRY, 0, ctl))
            for entry in pending:
                frames.extend(_frame(entry.req, entry.op, entry.item,
                                     entry.payload, entry.trace, entry.t0))
            sock = self._sock
            with self._send:
                assert sock is not None
                _sendmsg_all(sock, frames)
        except (OSError, BackingStoreError) as exc:
            with self._cond:
                self._fatal = exc
                for entry in pending:
                    entry.error = exc
                    entry.done = True
                self._pending.clear()
                self._cond.notify_all()
            return
        self.owner._note_restart()
        with self._cond:
            self._restarting = False
            self._cond.notify_all()

    def _reserve_req(self, op: int) -> int:
        """A req id whose reply nobody waits on (restart-time ATTACH)."""
        with self._cond:
            req = self._next_req
            self._next_req = (self._next_req + 1) % (1 << 32)
            entry = _Pending(req, op, 0, b"", None)
            entry.t0 = time.perf_counter()
            self._pending[req] = entry
            return req

    # -- shutdown -------------------------------------------------------------

    def close(self) -> None:
        with self._cond:
            if self._closing:
                return
            self._closing = True
            self._cond.notify_all()
            sock = self._sock
        if sock is not None:
            with contextlib.suppress(OSError), self._send:
                _sendmsg_all(sock, _frame(0xFFFFFFFF, OP_CLOSE, 0, b""))
        proc = self._proc
        if proc is not None:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - stuck-worker safety net
                proc.terminate()
                proc.join(timeout=5.0)
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()
        if self._receiver is not None:
            self._receiver.join(timeout=5.0)


class ShardedBackingStore:
    """Multi-process backing store: items hash-routed to shard workers.

    Parameters
    ----------
    directory:
        Home of the shard files (``shard_<s>.bin`` / ``shard_<s>.czb``).
        Reattaching a directory from a previous run restores every
        previously flushed item (the shard map is a pure function of the
        item id, so placement is reproduced exactly).
    num_items, item_shape, dtype:
        Logical geometry, as for
        :class:`~repro.core.backing.FileBackingStore`.
    num_shards:
        Worker-process count ``N``; placement is
        :func:`repro.core.layout.shard_of`.
    kind:
        Per-worker store: ``"file"``, ``"compressed"`` or ``"simulated"``
        (the latter models a slow device per worker — data is volatile).
    codec:
        Codec spec for ``kind="compressed"`` (default ``zlib:6``).
    disk / sleep:
        For ``kind="simulated"``: ``(access_latency, bandwidth)`` of the
        modelled device and whether transfers block their caller.
    fault:
        Optional fault spec (``FaultInjectingBackingStore`` kwargs minus
        the store). Each worker wraps its store with ``seed + shard`` so
        fault schedules replay deterministically per shard.
    window:
        Bounded in-flight window per shard; ``submit_*`` blocks when a
        shard has this many un-acked operations.
    """

    def __init__(self, directory: str | os.PathLike[str], num_items: int,
                 item_shape: tuple[int, ...], dtype: DTypeLike = np.float64,
                 *, num_shards: int = 4, kind: str = "file",
                 codec: str | None = None,
                 disk: tuple[float, float] | None = None,
                 sleep: bool = False,
                 fault: dict[str, Any] | None = None,
                 window: int = 64) -> None:
        if num_shards < 1:
            raise BackingStoreError(
                f"need at least 1 shard, got {num_shards}")
        if window < 1:
            raise BackingStoreError(
                f"in-flight window must be >= 1, got {window}")
        if kind not in WORKER_KINDS:
            raise BackingStoreError(
                f"unknown shard worker kind {kind!r}; expected one of "
                f"{WORKER_KINDS}")
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.num_items = int(num_items)
        self.item_shape = tuple(int(d) for d in item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize
        self.num_shards = int(num_shards)
        self.kind = kind
        # Observability hooks (default off), see MemoryBackingStore.probe.
        # The receiver threads read them per completion, one shard label
        # per receiver (single writer per labelled series). probe /
        # metrics / spans are properties: assigning any of them arms or
        # disarms worker-side telemetry (see _update_arming).
        self._probe: BackingProbe | None = None
        self._metrics: MetricsRegistry | None = None
        self._spans: SpanRecorder | None = None
        self._armed = False
        # Parent-side sinks for telemetry pulled over OP_TELEMETRY.
        # worker_probe counts successful worker-side ops, so its totals
        # cross-check bit-exactly against client completions / IoStats.
        self.worker_probe = BackingProbe()
        self.wire_read_hist = LogHistogram()
        self.wire_write_hist = LogHistogram()
        self.reply_read_hist = LogHistogram()
        self.reply_write_hist = LogHistogram()
        self.window_hist = LogHistogram()
        self._worker_spans: dict[int, list[SpanRecord]] = {}  # guarded-by: _telemetry_lock
        self._worker_span_drops = 0  # guarded-by: _telemetry_lock
        self._telemetry_lock = make_lock("ShardedTelemetry")
        # Per-thread trace context: the span id of whatever caused the
        # submits issued on this thread (writeback drain, prefetch load).
        self._tls = threading.local()
        self._closed = False
        self._restart_lock = make_lock("ShardedBackingStore")
        self.total_restarts = 0  # guarded-by: _restart_lock
        groups = shard_items(self.num_items, self.num_shards)
        self._shard = np.zeros(max(self.num_items, 1), dtype=np.int64)
        self._local = np.zeros(max(self.num_items, 1), dtype=np.int64)
        for s, items in enumerate(groups):
            for local, item in enumerate(items):
                self._shard[item] = s
                self._local[item] = local
        ext = "czb" if kind == "compressed" else "bin"
        self._clients: list[_ShardClient] = []
        try:
            for s, items in enumerate(groups):
                spec: dict[str, Any] = {
                    "kind": kind,
                    "path": os.path.join(self.directory, f"shard_{s}.{ext}"),
                    # A worker must be constructible even for an empty
                    # shard (hash skew at tiny num_items).
                    "num_items": max(len(items), 1),
                    "item_shape": list(self.item_shape),
                    "dtype": self.dtype.name,
                }
                if codec is not None:
                    spec["codec"] = codec
                if disk is not None:
                    spec["disk"] = [float(disk[0]), float(disk[1])]
                if sleep:
                    spec["sleep"] = True
                if fault:
                    per_shard = dict(fault)
                    per_shard["seed"] = int(fault.get("seed", 0)) + s
                    spec["fault"] = per_shard
                self._clients.append(_ShardClient(self, s, spec, window))
        except BaseException:
            for client in self._clients:
                with contextlib.suppress(Exception):
                    client.close()
            raise

    @classmethod
    def from_layout(cls, directory: "str | os.PathLike[str]",
                    layout: "StorageLayout", dtype: DTypeLike = np.float64,
                    **kwargs: Any) -> "ShardedBackingStore":
        """Backing sized for a layout's item space (blocks, not nodes)."""
        return cls(directory, layout.num_items, layout.item_shape, dtype,
                   **kwargs)

    # -- observability hooks / cross-process telemetry --------------------------

    @property
    def probe(self) -> "BackingProbe | None":
        return self._probe

    @probe.setter
    def probe(self, probe: "BackingProbe | None") -> None:
        self._probe = probe
        self._update_arming()

    @property
    def metrics(self) -> "MetricsRegistry | None":
        return self._metrics

    @metrics.setter
    def metrics(self, registry: "MetricsRegistry | None") -> None:
        old = self._metrics
        if old is not None and old is not registry:
            old.unregister_collector(self._collect)
        self._metrics = registry
        if registry is not None:
            registry.register_collector(self._collect)
        self._update_arming()

    @property
    def spans(self) -> "SpanRecorder | None":
        return self._spans

    @spans.setter
    def spans(self, recorder: "SpanRecorder | None") -> None:
        self._spans = recorder
        self._update_arming()

    def _update_arming(self) -> None:
        """Arm worker-side recording iff any observability sink is set.

        Pay-for-play across the process boundary: with no probe, no
        registry and no span recorder attached, the workers never call
        ``perf_counter`` and never buffer anything.
        """
        want = (self._probe is not None or self._metrics is not None
                or self._spans is not None)
        if want == self._armed:
            return
        self._armed = want
        if self._closed:
            return
        for client in self._clients:
            with contextlib.suppress(BackingStoreError):
                client.set_telemetry(want)

    def _collect(self) -> None:
        """Registry pull collector: live shard gauges + telemetry pull."""
        mx = self._metrics
        if mx is None:
            return
        now = time.perf_counter()
        for c in self._clients:
            with c._cond:
                depth = len(c._pending)
                oldest = min((e.t0 for e in c._pending.values()),
                             default=now)
            label = {"shard": str(c.shard)}
            mx.gauge_set_labeled("shard_inflight", label, depth)
            mx.gauge_set_labeled("shard_oldest_pending_seconds", label,
                                 max(0.0, now - oldest) if depth else 0.0)
        if self._armed and not self._closed:
            self.collect_telemetry()

    def collect_telemetry(self) -> None:
        """Pull every worker's delta and merge it into the parent sinks.

        Safe to call repeatedly (deltas never double-count) and during
        shutdown races (a dying shard is skipped, its data arrives with
        the next pull after restart).
        """
        mx = self._metrics
        for c in self._clients:
            try:
                doc = c.pull_telemetry()
            except BackingStoreError:
                continue
            if not doc:
                continue
            with self._telemetry_lock:
                self.worker_probe.merge_state(doc["probe"])
                self.wire_read_hist.merge_state(doc["wire_read"])
                self.wire_write_hist.merge_state(doc["wire_write"])
                records = self._worker_spans.setdefault(c.shard, [])
                for name, start, dur, sid, parent, item in doc.get(
                        "spans", []):
                    records.append(SpanRecord(
                        str(name), float(start), float(dur),
                        f"shard-worker-{c.shard}", {"item": int(item)},
                        int(sid), int(parent)))
                self._worker_span_drops += int(doc.get("spans_dropped", 0))
            if mx is not None:
                mx.merge_histogram("shard_disk_read_seconds",
                                   doc["probe"]["read"])
                mx.merge_histogram("shard_disk_write_seconds",
                                   doc["probe"]["write"])
                mx.merge_histogram("shard_wire_seconds", doc["wire_read"])
                mx.merge_histogram("shard_wire_seconds", doc["wire_write"])
                mx.inc("shard_telemetry_pulls")

    def export_spans_into(self, recorder: "SpanRecorder") -> int:
        """Attach collected worker spans as per-worker process tracks.

        Returns the number of spans exported. Call after
        :meth:`collect_telemetry` (or after :meth:`close`, which drains);
        each track carries its shard's calibrated clock offset so the
        merged timeline is causally ordered.
        """
        total = 0
        with self._telemetry_lock:
            for shard in sorted(self._worker_spans):
                records = self._worker_spans[shard]
                if not records:
                    continue
                recorder.add_process_track(
                    f"shard-worker-{shard}", records,
                    self._clients[shard].clock_offset)
                total += len(records)
        return total

    def worker_span_drops(self) -> int:
        """Worker spans lost to the bounded per-worker buffer."""
        with self._telemetry_lock:
            return self._worker_span_drops

    @contextlib.contextmanager
    def trace_scope(self, span_id: int) -> Iterator[None]:
        """Make ``span_id`` the parent of submits from this thread.

        The write-behind drain and the prefetcher wrap their submit
        calls in this, so the worker-side disk span chains back through
        the client request span to the drain/load that caused it.
        """
        prev = int(getattr(self._tls, "parent", 0))
        self._tls.parent = int(span_id)
        try:
            yield
        finally:
            self._tls.parent = prev

    def _trace_ids(self) -> tuple[int, int]:
        """(span id, parent id) for one submit; (0, 0) when untraced."""
        if self._spans is None:
            return 0, 0
        return next_span_id(), int(getattr(self._tls, "parent", 0))

    def _note_window_wait(self, shard: int, t0: float,
                          seconds: float) -> None:
        """One submit's cumulative stall on the bounded in-flight window."""
        self.window_hist.record(seconds)
        mx = self._metrics
        if mx is not None:
            mx.observe("shard_window_wait_seconds", seconds)
        sp = self._spans
        if sp is not None:
            sp.complete("shard_window_wait", t0, seconds, {"shard": shard})

    def _record_reply(self, op: int, seconds: float) -> None:
        """Reply-wire latency measured by a shard's receiver thread."""
        hist = (self.reply_read_hist if op == OP_READ
                else self.reply_write_hist)
        hist.record(seconds)
        mx = self._metrics
        if mx is not None:
            mx.observe("shard_reply_seconds", seconds)

    # -- placement ------------------------------------------------------------

    def shard_of_item(self, item: int) -> int:
        """The shard serving ``item`` (== ``layout.shard_of(item, N)``)."""
        self._check(item)
        return int(self._shard[item])

    def _check(self, item: int) -> None:
        if self._closed:
            raise BackingStoreError("backing store is closed")
        if not 0 <= item < self.num_items:
            raise BackingStoreError(
                f"item {item} out of range [0, {self.num_items})")

    def _route(self, item: int) -> tuple[_ShardClient, int]:
        self._check(item)
        return self._clients[int(self._shard[item])], int(self._local[item])

    # -- async submit/collect hooks (AsyncBackingStore) ------------------------

    def submit_read(self, item: int, out: np.ndarray) -> ShardTicket:
        """Issue a read without waiting; ``ticket.wait()`` collects it."""
        if out.nbytes != self.item_bytes or not out.flags.c_contiguous:
            raise BackingStoreError(
                f"read buffer mismatch: {out.nbytes} bytes vs item width "
                f"{self.item_bytes}")
        client, local = self._route(item)
        trace, parent = self._trace_ids()
        return ShardTicket(client, client.submit(OP_READ, local, b"", out,
                                                 trace, parent))

    def submit_write(self, item: int, data: np.ndarray) -> ShardTicket:
        """Issue a write without waiting; ``ticket.wait()`` collects it.

        The payload is serialised immediately, so the caller's buffer is
        reusable as soon as this returns (same contract as the
        write-behind staging copy).
        """
        client, local = self._route(item)
        payload = self._payload(item, data)
        trace, parent = self._trace_ids()
        return ShardTicket(client, client.submit(OP_WRITE, local, payload,
                                                 None, trace, parent))

    def _payload(self, item: int, data: np.ndarray) -> bytes:
        if data.dtype != self.dtype or not data.flags.c_contiguous:
            data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.nbytes != self.item_bytes:
            raise BackingStoreError(
                f"write buffer mismatch: {data.nbytes} bytes vs item width "
                f"{self.item_bytes}")
        return data.tobytes()

    def read_batch(self, items: list[tuple[int, np.ndarray]]) -> list[ShardTicket]:
        """Submit many reads, one vectored send per shard; returns tickets."""
        return self._batch(OP_READ, [(item, out, b"") for item, out in items])

    def write_batch(self, items: list[tuple[int, np.ndarray]]) -> list[ShardTicket]:
        """Submit many writes, one vectored send per shard; returns tickets."""
        return self._batch(OP_WRITE, [
            (item, None, self._payload(item, data)) for item, data in items])

    def _batch(self, op: int,
               rows: list[tuple[int, np.ndarray | None, bytes]]) -> list[ShardTicket]:
        by_shard: dict[int, list[int]] = {}
        for idx, (item, _out, _payload) in enumerate(rows):
            self._check(item)
            by_shard.setdefault(int(self._shard[item]), []).append(idx)
        tickets: list[ShardTicket | None] = [None] * len(rows)
        traced = self._spans is not None
        parent = (int(getattr(self._tls, "parent", 0)) if traced else 0)
        for s, idxs in by_shard.items():
            client = self._clients[s]
            ops = [(op, int(self._local[rows[i][0]]), rows[i][2], rows[i][1],
                    next_span_id() if traced else 0, parent)
                   for i in idxs]
            for i, entry in zip(idxs, client.submit_many(ops)):
                tickets[i] = ShardTicket(client, entry)
        return [t for t in tickets if t is not None]

    # -- BackingStore interface ------------------------------------------------

    def read(self, item: int, out: np.ndarray) -> None:
        self.submit_read(item, out).wait()

    def write(self, item: int, data: np.ndarray) -> None:
        self.submit_write(item, data).wait()

    def flush(self) -> None:
        """Durability barrier across every shard.

        One FLUSH frame per worker; in-order servicing makes each a
        per-shard barrier behind all previously submitted writes, and
        waiting on all replies makes the whole call a global barrier.
        """
        if self._closed:
            return
        tickets = [ShardTicket(c, c.submit(OP_FLUSH, 0, b"", None))
                   for c in self._clients]
        for t in tickets:
            t.wait()

    def close(self) -> None:
        if self._closed:
            return
        if self._armed:
            # Final drain: whatever the workers recorded since the last
            # scrape must land parent-side before the processes exit.
            with contextlib.suppress(BackingStoreError):
                self.collect_telemetry()
        self._closed = True
        for client in self._clients:
            client.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()

    # -- failure/diagnostics ---------------------------------------------------

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one shard worker (crash testing); it restarts itself."""
        self._clients[int(shard)].kill_worker()

    def worker_pids(self) -> list[int]:
        return [c.worker_pid() for c in self._clients]

    def restarts(self) -> int:
        """Total worker restarts performed so far."""
        with self._restart_lock:
            return self.total_restarts

    def _note_restart(self) -> None:
        mx = self.metrics
        with self._restart_lock:
            self.total_restarts += 1
            if mx is not None:
                mx.inc("shard_restarts")

    def per_shard_counts(self) -> dict[str, dict[str, int]]:
        """``{shard: {reads, writes, bytes_read, bytes_written, restarts}}``.

        The authoritative client-side completion counts; the labelled
        registry series mirror these one-to-one.
        """
        snap: dict[str, dict[str, int]] = {}
        for c in self._clients:
            with c._cond:
                snap[str(c.shard)] = {
                    "reads": c.reads_completed,
                    "writes": c.writes_completed,
                    "bytes_read": c.bytes_read,
                    "bytes_written": c.bytes_written,
                    "restarts": c.restarts,
                }
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedBackingStore(n={self.num_items}, "
                f"shards={self.num_shards}, kind={self.kind!r}, "
                f"w={self.item_bytes}B)")
