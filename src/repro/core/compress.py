"""Transparent per-item compression in the backing layer.

Ancestral probability vectors are highly compressible — long runs of
repeated site patterns, saturated clades, padded block tails — so
compressing each item before it hits the device multiplies effective
backing bandwidth and capacity. The paper's fixed-offset addressing
(vector ``i`` at byte ``i*w``) cannot hold once payloads vary in size;
:class:`CompressedFileBackingStore` therefore replaces it with a
per-item *extent table* (offset, stored length, reserved capacity) kept
in memory and persisted as a sidecar index so a store can be reattached.

Framing: the data file is a heap of variable-length records. An item
overwrite reuses its extent when the new payload fits the reserved
capacity, else appends a fresh extent at the end of the heap (the old
extent leaks until a future compaction — crash-safe by construction,
because the index is only republished *after* the payload is durable;
see DESIGN.md "Durability & failure model").

Decompression is exact: CLVs round-trip bit-identically, so likelihoods
are unchanged to the last ulp.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
import zlib
from typing import TYPE_CHECKING, Protocol

import numpy as np
from numpy.typing import DTypeLike

from repro.analysis.race import make_lock
from repro.errors import BackingStoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.layout import StorageLayout
    from repro.obs.histogram import BackingProbe
    from repro.obs.metrics import MetricsRegistry

INDEX_VERSION = 1

#: Extents are rounded up to this granularity so slightly-larger rewrites
#: of the same item reuse their extent instead of leaking heap space.
_CAPACITY_QUANTUM = 64


class Codec(Protocol):
    """Byte-level compression codec (exact round-trip required)."""

    name: str

    def compress(self, data: bytes) -> bytes: ...

    def decompress(self, data: bytes) -> bytes: ...


class ZlibCodec:
    """Stdlib DEFLATE: the default codec (no dependencies, exact)."""

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise BackingStoreError(f"zlib level must be in [0, 9], got {level}")
        self.level = int(level)
        self.name = f"zlib:{self.level}"

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class NullCodec:
    """Identity codec: framing/index machinery without compression."""

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


def make_codec(name: str) -> Codec:
    """Instantiate a codec from its sidecar-index name (``zlib:6``, ``null``)."""
    if name == "null":
        return NullCodec()
    if name == "zlib":
        return ZlibCodec()
    if name.startswith("zlib:"):
        try:
            return ZlibCodec(int(name.split(":", 1)[1]))
        except ValueError as exc:
            raise BackingStoreError(f"bad codec spec {name!r}") from exc
    raise BackingStoreError(f"unknown codec {name!r}")


def _fsync_dir(path: str) -> None:
    """fsync the directory entry so a rename survives a crash."""
    dfd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    try:
        os.fsync(dfd)
    finally:
        os.close(dfd)


class CompressedFileBackingStore:
    """One binary heap file of per-item compressed records + sidecar index.

    Parameters
    ----------
    path:
        The data-heap file. The index lives beside it at ``path + ".idx"``;
        if both exist, the store *reattaches* (geometry and codec are
        verified against the index) with all previously flushed items
        readable.
    num_items, item_shape, dtype:
        Logical geometry, as for
        :class:`~repro.core.backing.FileBackingStore`.
    codec:
        A :class:`Codec`; defaults to :class:`ZlibCodec` level 6.

    Concurrency: extent-table lookups/placements take a leaf lock, the
    positioned I/O itself runs outside it (extents of distinct items are
    disjoint, and the vector store never issues concurrent I/O for one
    item). ``flush()`` is the durability barrier: payload fsync, then the
    index republished via write-to-temp + fsync + atomic rename.
    """

    def __init__(self, path: str | os.PathLike[str], num_items: int,
                 item_shape: tuple[int, ...], dtype: DTypeLike = np.float64,
                 codec: Codec | None = None,
                 compact_threshold: float | None = 0.5) -> None:
        self.path = os.fspath(path)
        self.index_path = self.path + ".idx"
        self.num_items = int(num_items)
        self.item_shape = tuple(item_shape)
        self.dtype = np.dtype(dtype)
        self.item_bytes = int(np.prod(self.item_shape)) * self.dtype.itemsize
        self.codec: Codec = codec if codec is not None else ZlibCodec()
        #: per-item (offset, stored_length, capacity); None = never written
        self._extents: list[tuple[int, int, int] | None]
        self._cursor = 0
        self.raw_bytes = 0      # logical payload bytes moved (both directions)
        self.stored_bytes = 0   # physical compressed bytes moved
        self.raw_bytes_written = 0     # write-side slice of raw_bytes
        self.stored_bytes_written = 0  # write-side slice of stored_bytes
        #: heap capacity stranded by grow-rewrites; reclaimed by compact()
        self.leaked_bytes = 0          # guarded-by: _lock
        self.compactions = 0           # guarded-by: _lock
        #: auto-compact in flush() once leaked/cursor exceeds this (None: off)
        self.compact_threshold = compact_threshold
        self._lock = make_lock("CompressedFileBackingStore")
        self._closed = False
        #: heap handles retired by compact(); a concurrent reader that
        #: captured (fd, extent) before the swap still resolves against
        #: the old inode, so these stay open until close().
        self._retired: list[object] = []  # guarded-by: _lock
        self.probe: BackingProbe | None = None
        self.metrics: MetricsRegistry | None = None
        reattach = os.path.exists(self.path) and os.path.exists(self.index_path)
        if reattach:
            self._load_index()
            self._fh = open(self.path, "r+b", buffering=0)  # noqa: SIM115
        else:
            self._extents = [None] * self.num_items
            self._fh = open(self.path, "w+b", buffering=0)  # noqa: SIM115
        self._fd = self._fh.fileno()

    @classmethod
    def from_layout(cls, path: "str | os.PathLike[str]",
                    layout: "StorageLayout", dtype: DTypeLike = np.float64,
                    codec: Codec | None = None,
                    compact_threshold: float | None = 0.5,
                    ) -> "CompressedFileBackingStore":
        """Backing sized for a layout's item space (blocks, not nodes)."""
        return cls(path, layout.num_items, layout.item_shape, dtype,
                   codec=codec, compact_threshold=compact_threshold)

    # -- sidecar index --------------------------------------------------------

    def _load_index(self) -> None:
        with open(self.index_path) as fh:
            doc = json.load(fh)
        if doc.get("version") != INDEX_VERSION:
            raise BackingStoreError(
                f"unsupported index version {doc.get('version')!r} "
                f"in {self.index_path}")
        if (doc["num_items"] != self.num_items
                or doc["item_bytes"] != self.item_bytes
                or doc["dtype"] != self.dtype.name):
            raise BackingStoreError(
                f"index geometry mismatch in {self.index_path}: "
                f"{doc['num_items']}x{doc['item_bytes']}B ({doc['dtype']}) "
                f"vs {self.num_items}x{self.item_bytes}B ({self.dtype.name})")
        if doc["codec"] != self.codec.name:
            self.codec = make_codec(doc["codec"])
        self._extents = [tuple(e) if e is not None else None  # type: ignore[misc]
                         for e in doc["extents"]]
        self._cursor = int(doc["cursor"])
        self.leaked_bytes = int(doc.get("leaked", 0))  # lockfree-ok: construction-time, no concurrent access yet
        # A crash mid-compact leaves the index naming the freshly built
        # heap ("heap": "<base>.compact") while the canonical path still
        # holds the old one. Finish the interrupted rename here: the
        # published extents are valid only against the compact heap. If
        # the compact file is gone, the rename itself already happened
        # (os.replace is atomic) and the canonical path IS the new heap.
        heap = str(doc.get("heap") or os.path.basename(self.path))
        if heap != os.path.basename(self.path):
            cand = os.path.join(
                os.path.dirname(os.path.abspath(self.path)), heap)
            if os.path.exists(cand):
                os.replace(cand, self.path)
                _fsync_dir(self.path)
            self._publish_index()  # republish with the canonical heap name

    def _index_doc(self, heap: str | None = None) -> dict[str, object]:  # holds: _lock
        return {
            "version": INDEX_VERSION,
            "codec": self.codec.name,
            "num_items": self.num_items,
            "item_bytes": self.item_bytes,
            "dtype": self.dtype.name,
            "cursor": self._cursor,
            "leaked": self.leaked_bytes,
            "heap": heap if heap is not None else os.path.basename(self.path),
            "extents": [list(e) if e is not None else None
                        for e in self._extents],
        }

    def _publish_index_for(self, heap: str) -> None:
        """Publish an index whose extents resolve against ``heap``."""
        tmp = self.index_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self._index_doc(heap), fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.index_path)
        _fsync_dir(self.index_path)

    def _publish_index(self) -> None:
        """Write-to-temp + fsync + atomic rename + directory fsync."""
        self._publish_index_for(os.path.basename(self.path))

    # -- BackingStore interface ----------------------------------------------

    def _check(self, item: int) -> None:
        if self._closed:
            raise BackingStoreError("backing store is closed")
        if not 0 <= item < self.num_items:
            raise BackingStoreError(
                f"item {item} out of range [0, {self.num_items})")

    def read(self, item: int, out: np.ndarray) -> None:
        if out.nbytes != self.item_bytes:
            raise BackingStoreError(
                f"read buffer mismatch: {out.nbytes} bytes vs item width "
                f"{self.item_bytes}")
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        self._check(item)
        with self._lock:
            # The fd must be captured together with the extent: compact()
            # swaps both atomically, and this extent's offsets are only
            # meaningful against the heap generation it was taken from.
            extent = self._extents[item]
            fd = self._fd
        if extent is None:
            out.reshape(-1)[:] = 0  # parity with the preallocated-file zeros
            return
        offset, length, _cap = extent
        payload = bytearray(length)
        view = memoryview(payload)
        done = 0
        while done < length:
            try:
                got = os.preadv(fd, [view[done:]], offset + done)
            except InterruptedError:
                continue
            if got <= 0:
                raise BackingStoreError(
                    f"short read for item {item}: {done}/{length} bytes")
            done += got
        raw = self.codec.decompress(bytes(payload))
        if len(raw) != self.item_bytes:
            raise BackingStoreError(
                f"decompressed item {item} is {len(raw)} bytes, "
                f"expected {self.item_bytes}")
        flat = out.reshape(-1).view(np.uint8)
        flat[:] = np.frombuffer(raw, dtype=np.uint8)
        with self._lock:
            self.raw_bytes += self.item_bytes
            self.stored_bytes += length
            if mx is not None:
                mx.inc("compress_bytes_raw", self.item_bytes)
                mx.inc("compress_bytes_stored", length)
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_read(dt, length)
            if mx is not None:
                mx.observe("backing_read_seconds", dt)

    def write(self, item: int, data: np.ndarray) -> None:
        if data.dtype != self.dtype or not data.flags.c_contiguous:
            data = np.ascontiguousarray(data, dtype=self.dtype)
        if data.nbytes != self.item_bytes:
            raise BackingStoreError(
                f"write buffer mismatch: {data.nbytes} bytes vs item width "
                f"{self.item_bytes}")
        probe, mx = self.probe, self.metrics
        timed = probe is not None or mx is not None
        t0 = time.perf_counter() if timed else 0.0
        self._check(item)
        payload = self.codec.compress(data.tobytes())
        length = len(payload)
        with self._lock:
            extent = self._extents[item]
            if extent is not None and length <= extent[2]:
                offset, capacity = extent[0], extent[2]
            else:
                if extent is not None:
                    # Grow-rewrite: the old extent's reserved capacity is
                    # stranded in the heap until compact() reclaims it.
                    self.leaked_bytes += extent[2]
                capacity = -(-length // _CAPACITY_QUANTUM) * _CAPACITY_QUANTUM
                offset = self._cursor
                self._cursor += capacity
            self._extents[item] = (offset, length, capacity)
            fd = self._fd  # same capture rule as read(): fd + extent together
            self.raw_bytes += self.item_bytes
            self.stored_bytes += length
            self.raw_bytes_written += self.item_bytes
            self.stored_bytes_written += length
            if mx is not None:
                mx.inc("compress_bytes_raw", self.item_bytes)
                mx.inc("compress_bytes_stored", length)
                mx.gauge_set("compress_heap_leaked_bytes", self.leaked_bytes)
        view = memoryview(payload)
        done = 0
        zeros = 0
        while done < length:
            try:
                put = os.pwritev(fd, [view[done:]], offset + done)
            except InterruptedError:
                continue
            if put <= 0:
                zeros += 1
                if zeros >= 16:
                    raise BackingStoreError(
                        f"write for item {item} made no progress: "
                        f"{done}/{length} bytes")
                continue
            zeros = 0
            done += put
        if timed:
            dt = time.perf_counter() - t0
            if probe is not None:
                probe.record_write(dt, length)
            if mx is not None:
                mx.observe("backing_write_seconds", dt)

    @property
    def compression_ratio(self) -> float:
        """Logical/physical byte ratio over all traffic so far (>= 1 is a win)."""
        with self._lock:
            if self.stored_bytes == 0:
                return 1.0
            return self.raw_bytes / self.stored_bytes

    @property
    def leaked_ratio(self) -> float:
        """Fraction of the heap stranded by grow-rewrites (0 = dense)."""
        with self._lock:
            if self._cursor == 0:
                return 0.0
            return self.leaked_bytes / self._cursor

    def compact(self) -> None:
        """Rewrite live extents into a fresh dense heap; reclaim leaks.

        The already-compressed payloads are copied verbatim (no
        recompression), so reads after a compaction are bit-identical.
        Crash-safe by ordering: the new heap is built beside the old one
        and fsynced, the index is atomically republished *pointing at
        the compact file* (``"heap"`` field), only then is the compact
        file renamed over the canonical path and the index republished
        with the canonical name — a crash at any point leaves a
        consistent (heap, index) pair, and ``_load_index`` finishes an
        interrupted rename on reattach.

        Concurrency contract: callers must be quiesced with respect to
        writes (``flush()`` runs it after the write-behind drain
        barrier). Concurrent readers are safe — they capture
        ``(fd, extent)`` atomically and the retired heap handle stays
        open until ``close()``.
        """
        if self._closed:
            raise BackingStoreError("backing store is closed")
        mx = self.metrics
        tmp_path = self.path + ".compact"
        with self._lock:
            new_fh = open(tmp_path, "w+b", buffering=0)  # noqa: SIM115
            new_fd = new_fh.fileno()
            new_extents: list[tuple[int, int, int] | None] = (
                [None] * self.num_items)
            cursor = 0
            for item, extent in enumerate(self._extents):
                if extent is None:
                    continue
                offset, length, _cap = extent
                payload = bytearray(length)
                view = memoryview(payload)
                done = 0
                while done < length:
                    try:
                        got = os.preadv(self._fd, [view[done:]], offset + done)
                    except InterruptedError:
                        continue
                    if got <= 0:
                        raise BackingStoreError(
                            f"short read compacting item {item}: "
                            f"{done}/{length} bytes")
                    done += got
                capacity = -(-length // _CAPACITY_QUANTUM) * _CAPACITY_QUANTUM
                done = 0
                while done < length:
                    try:
                        put = os.pwritev(new_fd, [view[done:]], cursor + done)
                    except InterruptedError:
                        continue
                    if put <= 0:
                        raise BackingStoreError(
                            f"short write compacting item {item}: "
                            f"{done}/{length} bytes")
                    done += put
                new_extents[item] = (cursor, length, capacity)
                cursor += capacity
            os.fsync(new_fd)
            # Swap the in-memory generation, then walk the index through
            # the two-step rename protocol described above.
            self._extents = new_extents
            self._cursor = cursor
            self.leaked_bytes = 0
            self._retired.append(self._fh)
            self._fh, self._fd = new_fh, new_fd
            self._publish_index_for(os.path.basename(tmp_path))
            os.replace(tmp_path, self.path)
            _fsync_dir(self.path)
            self._publish_index()
            self.compactions += 1
            if mx is not None:
                mx.inc("compress_compactions")
                mx.gauge_set("compress_heap_leaked_bytes", 0)

    def flush(self) -> None:
        """Durability barrier: payload fsync, then republish the index.

        Ordering matters — an extent must never be published before the
        bytes it points at are on the device, or a crash between the two
        would leave the index referencing garbage. When the stranded
        fraction of the heap exceeds :attr:`compact_threshold`, the
        barrier also runs :meth:`compact` (flush callers have already
        drained in-flight writes, which is the quiescence compaction
        needs).
        """
        if self._closed:
            return
        os.fsync(self._fd)
        threshold = self.compact_threshold
        with self._lock:
            need_compact = (threshold is not None and self._cursor > 0
                            and self.leaked_bytes / self._cursor > threshold)
            if not need_compact:
                self._publish_index()
        if need_compact:
            self.compact()

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._fh.close()
            retired = self._retired  # lockfree-ok: close is terminal; flush() above was the last concurrent access
            for fh in retired:
                with contextlib.suppress(Exception):
                    fh.close()  # type: ignore[attr-defined]
            self._closed = True

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CompressedFileBackingStore(n={self.num_items}, "
                f"w={self.item_bytes}B, codec={self.codec.name}, "
                f"ratio={self.compression_ratio:.2f})")
