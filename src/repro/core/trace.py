"""Access-trace recording and offline policy replay.

Recording the sequence of ``get()`` calls made by a likelihood computation
lets us (i) replay the same workload against every replacement strategy
without re-running the numerics, and (ii) evaluate the clairvoyant Belady
optimum, which needs the future. This is how the ablation benchmarks
compare the paper's four strategies against the theoretical lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.policies import BeladyPolicy, ReplacementPolicy, make_policy
from repro.core.stats import IoStats
from repro.errors import OutOfCoreError, PinnedSlotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.layout import StorageLayout


@dataclass(frozen=True)
class TraceEvent:
    """One ``get()`` call: requested item, pinned items, write-only flag."""

    item: int
    pins: tuple[int, ...] = ()
    write_only: bool = False


@dataclass
class AccessTrace:
    """An ordered sequence of :class:`TraceEvent` plus the store geometry."""

    num_items: int
    events: list[TraceEvent] = field(default_factory=list)
    #: Layout the recorded item ids live in — block-granular traces carry
    #: their :class:`~repro.core.layout.SiteBlockLayout` so offline analysis
    #: can map items back to nodes/site-ranges. ``None`` for traces recorded
    #: before the layout abstraction (item id == node id). The replay in
    #: :func:`simulate_policy_on_trace` is deliberately layout-agnostic:
    #: item ids are opaque to the allocation logic, so block-granular traces
    #: replay unchanged.
    layout: "StorageLayout | None" = None

    def record(self, item: int, pins: tuple = (), write_only: bool = False) -> None:
        self.events.append(TraceEvent(int(item), tuple(int(p) for p in pins), bool(write_only)))

    def __len__(self) -> int:
        return len(self.events)

    def items(self) -> list[int]:
        return [e.item for e in self.events]

    def unique_items(self) -> set[int]:
        return {e.item for e in self.events}


class RecordingStoreProxy:
    """Wraps an :class:`AncestralVectorStore`-compatible object, logging calls.

    Drop-in for the engine's ``store`` attribute: forwards ``get`` (and
    everything else) to the wrapped store while appending to ``trace``.
    """

    def __init__(self, store: Any, trace: AccessTrace | None = None) -> None:
        self._store = store
        self.trace = trace if trace is not None else AccessTrace(
            store.num_items, layout=getattr(store, "layout", None))

    def get(self, item: int, pins: tuple = (),
            write_only: bool = False) -> np.ndarray:
        self.trace.record(item, pins, write_only)
        return self._store.get(item, pins=pins, write_only=write_only)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


def simulate_policy_on_trace(
    trace: AccessTrace,
    num_slots: int,
    policy: str | ReplacementPolicy,
    *,
    read_skipping: bool = True,
    track_dirty: bool = False,
    policy_kwargs: dict | None = None,
) -> IoStats:
    """Replay a trace against a policy, counting misses/reads — no data moves.

    The replay reproduces the store's allocation logic exactly (free slots
    first, then policy victim among unpinned residents), so its miss/read
    rates match a real run with the same policy; it is simply ~100× faster,
    which lets benchmarks sweep many (policy, m) points on one recorded
    workload. Belady's policy is fed the future item sequence automatically.

    ``track_dirty`` mirrors the store option of the same name: a clean
    victim (never written since its load) is charged to ``write_skips``
    instead of ``writes``, exactly like
    :meth:`AncestralVectorStore._evict`. Without it, *every* eviction
    counts one write — the paper's behaviour, which always swaps the full
    vector out. Counter parity against a live store run with the same
    configuration is asserted in ``tests/test_trace.py``.
    """
    if num_slots < 1:
        raise OutOfCoreError(f"need at least one slot, got {num_slots}")
    if isinstance(policy, str):
        policy = make_policy(policy, **(policy_kwargs or {}))
    if isinstance(policy, BeladyPolicy):
        policy.load_future(trace.items())

    stats = IoStats()
    resident: set[int] = set()
    dirty: set[int] = set()  # residents written since load (track_dirty model)
    free = num_slots
    for ev in trace.events:
        stats.requests += 1
        if ev.item in resident:
            stats.hits += 1
            if ev.write_only:
                dirty.add(ev.item)
        else:
            stats.misses += 1
            if free > 0:
                free -= 1
            else:
                pinned = set(ev.pins)
                candidates = [it for it in resident if it not in pinned]
                if not candidates:
                    raise PinnedSlotError(
                        f"trace replay: all {num_slots} slots pinned at item {ev.item}"
                    )
                victim = int(policy.choose_victim(candidates, ev.item))
                resident.discard(victim)
                if track_dirty and victim not in dirty:
                    stats.write_skips += 1
                else:
                    stats.writes += 1
                dirty.discard(victim)
                policy.on_evict(victim)
            if ev.write_only and read_skipping:
                stats.read_skips += 1
            else:
                stats.reads += 1
            resident.add(ev.item)
            # The store's load path marks a write-only load dirty and any
            # other load clean (_finish_load); mirror that here.
            if ev.write_only:
                dirty.add(ev.item)
            else:
                dirty.discard(ev.item)
            policy.on_load(ev.item)
        policy.on_access(ev.item, ev.write_only)
    return stats


class _FenwickTree:
    """Binary indexed tree over 0-based positions: point add, prefix sum."""

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, pos: int, delta: int) -> None:
        pos += 1
        while pos <= self._size:
            self._tree[pos] += delta
            pos += pos & -pos

    def prefix(self, pos: int) -> int:
        """Sum over positions ``0..pos`` inclusive (0 for ``pos < 0``)."""
        pos += 1
        total = 0
        while pos > 0:
            total += self._tree[pos]
            pos -= pos & -pos
        return total


def reuse_distance_profile(trace: AccessTrace) -> list[int]:
    """LRU stack (reuse) distances of each access; -1 for first touches.

    The classic locality fingerprint: the miss rate of an LRU cache with
    ``m`` slots equals the fraction of accesses with reuse distance ≥ m.
    Used to characterize *why* PLF workloads behave so well (paper §4.2).

    The distance of an access is the number of *distinct* items touched
    since the previous access to the same item. Computed in O(n log n)
    with a Fenwick tree holding one mark at each item's last-access time:
    the distance is then the mark count strictly between the previous
    access and now (Bennett & Kruskal's classic algorithm).
    """
    n = len(trace.events)
    marks = _FenwickTree(n)
    last: dict[int, int] = {}  # item -> time of its most recent access
    out: list[int] = []
    for t, ev in enumerate(trace.events):
        prev = last.get(ev.item)
        if prev is None:
            out.append(-1)
        else:
            out.append(marks.prefix(t - 1) - marks.prefix(prev))
            marks.add(prev, -1)
        marks.add(t, 1)
        last[ev.item] = t
    return out


def lru_miss_curve(trace: AccessTrace, capacities: list[int]) -> dict[int, float]:
    """Exact LRU miss rate at several capacities from one reuse-distance pass."""
    dists = reuse_distance_profile(trace)
    total = len(dists)
    if total == 0:
        return {m: 0.0 for m in capacities}
    out = {}
    for m in capacities:
        misses = sum(1 for d in dists if d < 0 or d >= m)
        out[m] = misses / total
    return out
