"""Access-trace recording and offline policy replay.

Recording the sequence of ``get()`` calls made by a likelihood computation
lets us (i) replay the same workload against every replacement strategy
without re-running the numerics, and (ii) evaluate the clairvoyant Belady
optimum, which needs the future. This is how the ablation benchmarks
compare the paper's four strategies against the theoretical lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.policies import BeladyPolicy, ReplacementPolicy, make_policy
from repro.core.stats import IoStats
from repro.errors import OutOfCoreError, PinnedSlotError


@dataclass(frozen=True)
class TraceEvent:
    """One ``get()`` call: requested item, pinned items, write-only flag."""

    item: int
    pins: tuple[int, ...] = ()
    write_only: bool = False


@dataclass
class AccessTrace:
    """An ordered sequence of :class:`TraceEvent` plus the store geometry."""

    num_items: int
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, item: int, pins: tuple = (), write_only: bool = False) -> None:
        self.events.append(TraceEvent(int(item), tuple(int(p) for p in pins), bool(write_only)))

    def __len__(self) -> int:
        return len(self.events)

    def items(self) -> list[int]:
        return [e.item for e in self.events]

    def unique_items(self) -> set[int]:
        return {e.item for e in self.events}


class RecordingStoreProxy:
    """Wraps an :class:`AncestralVectorStore`-compatible object, logging calls.

    Drop-in for the engine's ``store`` attribute: forwards ``get`` (and
    everything else) to the wrapped store while appending to ``trace``.
    """

    def __init__(self, store: Any, trace: AccessTrace | None = None) -> None:
        self._store = store
        self.trace = trace if trace is not None else AccessTrace(store.num_items)

    def get(self, item: int, pins: tuple = (),
            write_only: bool = False) -> np.ndarray:
        self.trace.record(item, pins, write_only)
        return self._store.get(item, pins=pins, write_only=write_only)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


def simulate_policy_on_trace(
    trace: AccessTrace,
    num_slots: int,
    policy: str | ReplacementPolicy,
    *,
    read_skipping: bool = True,
    policy_kwargs: dict | None = None,
) -> IoStats:
    """Replay a trace against a policy, counting misses/reads — no data moves.

    The replay reproduces the store's allocation logic exactly (free slots
    first, then policy victim among unpinned residents), so its miss/read
    rates match a real run with the same policy; it is simply ~100× faster,
    which lets benchmarks sweep many (policy, m) points on one recorded
    workload. Belady's policy is fed the future item sequence automatically.
    """
    if num_slots < 1:
        raise OutOfCoreError(f"need at least one slot, got {num_slots}")
    if isinstance(policy, str):
        policy = make_policy(policy, **(policy_kwargs or {}))
    if isinstance(policy, BeladyPolicy):
        policy.load_future(trace.items())

    stats = IoStats()
    resident: set[int] = set()
    free = num_slots
    for ev in trace.events:
        stats.requests += 1
        if ev.item in resident:
            stats.hits += 1
        else:
            stats.misses += 1
            if free > 0:
                free -= 1
            else:
                pinned = set(ev.pins)
                candidates = [it for it in resident if it not in pinned]
                if not candidates:
                    raise PinnedSlotError(
                        f"trace replay: all {num_slots} slots pinned at item {ev.item}"
                    )
                victim = int(policy.choose_victim(candidates, ev.item))
                resident.discard(victim)
                policy.on_evict(victim)
                stats.writes += 1
            if ev.write_only and read_skipping:
                stats.read_skips += 1
            else:
                stats.reads += 1
            resident.add(ev.item)
            policy.on_load(ev.item)
        policy.on_access(ev.item, ev.write_only)
    return stats


def reuse_distance_profile(trace: AccessTrace) -> list[int]:
    """LRU stack (reuse) distances of each access; -1 for first touches.

    The classic locality fingerprint: the miss rate of an LRU cache with
    ``m`` slots equals the fraction of accesses with reuse distance ≥ m.
    Used to characterize *why* PLF workloads behave so well (paper §4.2).
    """
    stack: list[int] = []
    out: list[int] = []
    pos: dict[int, int] = {}
    for ev in trace.events:
        if ev.item in pos:
            idx = stack.index(ev.item)  # distance from the top
            depth = len(stack) - 1 - idx
            out.append(depth)
            stack.pop(idx)
        else:
            out.append(-1)
        stack.append(ev.item)
        pos[ev.item] = len(stack) - 1
    return out


def lru_miss_curve(trace: AccessTrace, capacities: list[int]) -> dict[int, float]:
    """Exact LRU miss rate at several capacities from one reuse-distance pass."""
    dists = reuse_distance_profile(trace)
    total = len(dists)
    if total == 0:
        return {m: 0.0 for m in capacities}
    out = {}
    for m in capacities:
        misses = sum(1 for d in dists if d < 0 or d >= m)
        out[m] = misses / total
    return out
