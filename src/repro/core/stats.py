"""I/O accounting for the out-of-core vector store.

The paper's evaluation (§4.1–4.2) reports two ratios per run:

* **miss rate** — vector requests not already resident in RAM, over all
  requests (Figs. 2 and 4);
* **read rate** — requests that caused an *actual disk read*, over all
  requests; lower than the miss rate when read skipping (§3.4) elides
  reads of write-only vectors (Fig. 3).

:class:`IoStats` tracks these plus byte counts and swap counts, supports
named snapshots (so a search phase can be measured independently of the
initial full traversal) and pretty-prints as a table row.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IoStats:
    """Mutable counter block for one :class:`AncestralVectorStore`."""

    requests: int = 0          #: total calls to ``get()``
    hits: int = 0              #: requests satisfied from a RAM slot
    misses: int = 0            #: requests requiring a slot (dis)placement
    reads: int = 0             #: vectors actually read from backing store
    read_skips: int = 0        #: reads elided by the read-skipping rule
    writes: int = 0            #: vectors written back to the backing store
    write_skips: int = 0       #: write-backs elided by clean-eviction tracking
    bytes_read: int = 0
    bytes_written: int = 0
    prefetch_reads: int = 0    #: reads issued ahead of demand by a prefetcher
    prefetch_hits: int = 0     #: demand requests satisfied by a prefetched slot
    _snapshots: dict = field(default_factory=dict, repr=False)

    # -- derived rates (paper's metrics) ----------------------------------------

    @property
    def miss_rate(self) -> float:
        """Fraction of vector requests that missed RAM (Fig. 2/4 metric)."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def read_rate(self) -> float:
        """Fraction of requests that caused a *real* disk read (Fig. 3 metric).

        Equals :attr:`miss_rate` when read skipping is disabled (§3.4).
        """
        return self.reads / self.requests if self.requests else 0.0

    @property
    def swaps(self) -> int:
        """Total vector I/O operations (reads + writes), §3.4's target metric."""
        return self.reads + self.writes

    @property
    def io_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    # -- lifecycle ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter (snapshots are kept)."""
        self.requests = self.hits = self.misses = 0
        self.reads = self.read_skips = self.writes = self.write_skips = 0
        self.bytes_read = self.bytes_written = 0
        self.prefetch_reads = self.prefetch_hits = 0

    def snapshot(self, name: str) -> None:
        """Remember current counters under ``name`` for later :meth:`delta`."""
        self._snapshots[name] = self._counters()

    def delta(self, name: str) -> "IoStats":
        """Counters accumulated since :meth:`snapshot`(name) as a new stats block."""
        base = self._snapshots.get(name)
        if base is None:
            raise KeyError(f"no snapshot named {name!r}")
        cur = self._counters()
        out = IoStats()
        for key, value in cur.items():
            setattr(out, key, value - base[key])
        return out

    def _counters(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "reads": self.reads,
            "read_skips": self.read_skips,
            "writes": self.writes,
            "write_skips": self.write_skips,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "prefetch_reads": self.prefetch_reads,
            "prefetch_hits": self.prefetch_hits,
        }

    def as_row(self) -> dict:
        """Flat dict (counters + rates) for report tables."""
        row = self._counters()
        row["miss_rate"] = self.miss_rate
        row["read_rate"] = self.read_rate
        row["swaps"] = self.swaps
        return row

    def __str__(self) -> str:
        return (
            f"requests={self.requests} miss_rate={self.miss_rate:.4f} "
            f"read_rate={self.read_rate:.4f} reads={self.reads} writes={self.writes} "
            f"skipped_reads={self.read_skips}"
        )
