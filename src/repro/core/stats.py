"""I/O accounting for the out-of-core vector store.

The paper's evaluation (§4.1–4.2) reports two ratios per run:

* **miss rate** — vector requests not already resident in RAM, over all
  requests (Figs. 2 and 4);
* **read rate** — requests that caused a *demand read*, over all
  requests; lower than the miss rate when read skipping (§3.4) elides
  reads of write-only vectors (Fig. 3).

Counter semantics (demand vs. prefetch vs. write-behind)
--------------------------------------------------------
The **demand counters** (``requests``/``hits``/``misses``/``reads``/
``read_skips``/``writes``/``write_skips``/``bytes_read``/``bytes_written``)
describe the *demand access stream as if prefetching and write-behind were
transparent*: they are functions of the access trace and the replacement
policy alone, so the Fig. 2–4 metrics stay comparable whether or not the
asynchronous I/O pipeline is enabled. Concretely:

* a demand request that lands on a slot filled ahead of time by a
  prefetcher counts as a **miss** and a **read** (that is exactly what it
  would have been without prefetch) and additionally as a
  ``prefetch_hits`` event; if that first touch is *write-only* under read
  skipping, it counts as a **miss** and a **read skip** instead, and the
  prefetched bytes are charged to ``prefetch_unused``;
* an eviction that stages its victim into the write-behind queue counts as
  a **write** at eviction time (that is when the synchronous path would
  have written); the physical drain is counted under ``writeback_writes``.

The **prefetch counters** (``prefetch_*``) and **write-behind counters**
(``writeback_*``) record the physical asynchronous traffic:

* ``prefetch_reads``/``prefetch_bytes`` — loads issued ahead of demand;
* ``prefetch_hits`` — demand requests satisfied by a prefetched slot;
* ``prefetch_unused`` — prefetched vectors whose bytes were never
  consumed: evicted before any demand touch, or first touched by a
  write-only request (wasted prefetch I/O either way);
* ``writeback_writes``/``writeback_bytes`` — victims physically drained
  to the backing store by the writer thread(s); lower than ``writes``
  when re-evictions coalesce in the staging buffer;
* ``writeback_stalls`` — evictions that blocked on a full staging buffer
  (back-pressure events);
* ``writeback_read_hits`` — reads (demand or prefetch) served from the
  staging buffer instead of the backing store (read-your-writes).

:class:`IoStats` tracks these plus byte counts and swap counts, supports
named snapshots (so a search phase can be measured independently of the
initial full traversal) and pretty-prints as a table row.

Thread-safety: each counter has a single writer — the demand counters are
only touched by the compute thread, ``prefetch_*`` only by the prefetch
machinery and ``writeback_*`` only under the write-behind queue's lock —
so no additional synchronisation is required.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Thread-ownership taxonomy (enforced by ``python -m repro.analysis``):
#: every :class:`IoStats` counter belongs to exactly one bucket, and code on
#: the writer/prefetch thread paths must never mutate a demand counter.
#:
#: Demand counters move only on the compute thread's ``get()`` path — they
#: describe the access trace as if the async pipeline were transparent.
DEMAND_COUNTERS = frozenset({
    "requests", "hits", "misses", "reads", "read_skips", "bytes_read",
})
#: Eviction counters are charged when a victim leaves RAM; evictions happen
#: on whichever thread allocates the slot (compute *or* prefetch), always
#: under the store lock, so these are legal from the prefetch path.
EVICTION_COUNTERS = frozenset({
    "writes", "write_skips", "bytes_written",
})
#: Physical ahead-of-demand traffic, moved by the prefetch machinery.
PREFETCH_COUNTERS = frozenset({
    "prefetch_reads", "prefetch_bytes", "prefetch_hits", "prefetch_unused",
})
#: Physical write-behind traffic, moved under the staging queue's lock.
WRITEBACK_COUNTERS = frozenset({
    "writeback_writes", "writeback_bytes", "writeback_stalls",
    "writeback_read_hits",
})

#: Event-taxonomy ↔ counter-registry mapping. Every event type emitted by
#: the :class:`repro.obs.tracer.Tracer` instrumentation maps to the counter
#: it mirrors (``None`` for events with no single-counter equivalent:
#: ``evict`` splits into writes/write_skips, ``writeback_enqueue`` is the
#: staging step before the drain, ``stall`` covers both back-pressure
#: blocks and deferred prefetches). ``python -m repro.analysis`` enforces
#: that this mapping, :data:`repro.obs.tracer.EVENT_TYPES` and the counter
#: registry stay in sync (rules EVT001/EVT002).
EVENT_COUNTERS: dict[str, str | None] = {
    "get": "requests",
    "hit": "hits",
    "miss": "misses",
    "demand_read": "reads",
    "read_skip": "read_skips",
    "evict": None,
    "prefetch_issue": "prefetch_reads",
    "prefetch_hit": "prefetch_hits",
    "writeback_enqueue": None,
    "writeback_drain": "writeback_writes",
    "stall": None,
}


@dataclass
class IoStats:
    """Mutable counter block for one :class:`AncestralVectorStore`."""

    requests: int = 0          #: total calls to ``get()``
    hits: int = 0              #: requests satisfied from a RAM slot
    misses: int = 0            #: requests requiring a slot (dis)placement
    reads: int = 0             #: demand reads (as if prefetch were transparent)
    read_skips: int = 0        #: reads elided by the read-skipping rule
    writes: int = 0            #: demand write-backs (at eviction/flush time)
    write_skips: int = 0       #: write-backs elided by clean-eviction tracking
    bytes_read: int = 0
    bytes_written: int = 0
    prefetch_reads: int = 0    #: physical reads issued ahead of demand
    prefetch_bytes: int = 0    #: bytes physically read ahead of demand
    prefetch_hits: int = 0     #: demand requests satisfied by a prefetched slot
    prefetch_unused: int = 0   #: prefetched vectors evicted before any demand use
    writeback_writes: int = 0  #: victims physically drained by the writer thread
    writeback_bytes: int = 0   #: bytes physically drained by the writer thread
    writeback_stalls: int = 0  #: evictions blocked on a full staging buffer
    writeback_read_hits: int = 0  #: reads served from the staging buffer
    #: Set by :class:`~repro.core.writebehind.WriteBehindQueue` on
    #: construction. A flag rather than a counter: :attr:`physical_writes`
    #: must report the drained count for *any* write-behind run — including
    #: one whose drains fully coalesced to zero or have not happened yet —
    #: so it cannot be inferred from ``writeback_writes`` being non-zero.
    writeback_enabled: bool = False
    _snapshots: dict = field(default_factory=dict, repr=False)

    # -- derived rates (paper's metrics) ----------------------------------------

    @property
    def miss_rate(self) -> float:
        """Fraction of vector requests that missed RAM (Fig. 2/4 metric)."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def read_rate(self) -> float:
        """Fraction of requests that caused a *demand* read (Fig. 3 metric).

        Equals :attr:`miss_rate` when read skipping is disabled (§3.4).
        Independent of whether a prefetcher moved the physical read ahead
        of the request (see the module docstring).
        """
        return self.reads / self.requests if self.requests else 0.0

    @property
    def swaps(self) -> int:
        """Total vector I/O operations (reads + writes), §3.4's target metric."""
        return self.reads + self.writes

    @property
    def io_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def physical_reads(self) -> int:
        """Reads that actually hit the backing store.

        Demand reads minus those satisfied by a prefetched slot or the
        write-behind staging buffer, plus the prefetcher's own reads.
        """
        return (self.reads - self.prefetch_hits + self.prefetch_reads
                - self.writeback_read_hits)

    @property
    def physical_writes(self) -> int:
        """Writes that actually hit the backing store.

        Equals :attr:`writes` on the synchronous path; with write-behind it
        is the drained count (coalescing can make it smaller — possibly all
        the way to zero, which is why this keys on :attr:`writeback_enabled`
        rather than on the drain counter being truthy).
        """
        return self.writeback_writes if self.writeback_enabled else self.writes

    # -- lifecycle ------------------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter (snapshots are kept)."""
        self.requests = self.hits = self.misses = 0
        self.reads = self.read_skips = self.writes = self.write_skips = 0
        self.bytes_read = self.bytes_written = 0
        self.prefetch_reads = self.prefetch_bytes = 0
        self.prefetch_hits = self.prefetch_unused = 0
        self.writeback_writes = self.writeback_bytes = 0
        self.writeback_stalls = self.writeback_read_hits = 0

    def snapshot(self, name: str) -> None:
        """Remember current counters under ``name`` for later :meth:`delta`."""
        self._snapshots[name] = self._counters()

    def delta(self, name: str) -> "IoStats":
        """Counters accumulated since :meth:`snapshot`(name) as a new stats block."""
        base = self._snapshots.get(name)
        if base is None:
            raise KeyError(f"no snapshot named {name!r}")
        cur = self._counters()
        out = IoStats()
        for key, value in cur.items():
            setattr(out, key, value - base[key])
        out.writeback_enabled = self.writeback_enabled
        return out

    @staticmethod
    def merged(blocks: "list[IoStats] | tuple[IoStats, ...]") -> "IoStats":
        """Element-wise sum of several stats blocks as a new block.

        Used by :class:`~repro.phylo.likelihood.partitioned.PartitionedEngine`
        to aggregate per-partition traffic; derived rates (miss/read rate)
        then weight each partition by its request volume, exactly as a
        single store serving the union of the traces would.
        """
        out = IoStats()
        for block in blocks:
            for key, value in block._counters().items():
                setattr(out, key, getattr(out, key) + value)
            out.writeback_enabled = out.writeback_enabled or block.writeback_enabled
        return out

    def _counters(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "reads": self.reads,
            "read_skips": self.read_skips,
            "writes": self.writes,
            "write_skips": self.write_skips,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "prefetch_reads": self.prefetch_reads,
            "prefetch_bytes": self.prefetch_bytes,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_unused": self.prefetch_unused,
            "writeback_writes": self.writeback_writes,
            "writeback_bytes": self.writeback_bytes,
            "writeback_stalls": self.writeback_stalls,
            "writeback_read_hits": self.writeback_read_hits,
        }

    def as_row(self) -> dict:
        """Flat dict (counters + rates) for report tables."""
        row = self._counters()
        row["miss_rate"] = self.miss_rate
        row["read_rate"] = self.read_rate
        row["swaps"] = self.swaps
        return row

    def __str__(self) -> str:
        return (
            f"requests={self.requests} miss_rate={self.miss_rate:.4f} "
            f"read_rate={self.read_rate:.4f} reads={self.reads} writes={self.writes} "
            f"skipped_reads={self.read_skips}"
        )
