"""repro — Out-of-core computation of the Phylogenetic Likelihood Function.

A from-scratch Python reproduction of *"Computing the Phylogenetic
Likelihood Function Out-of-Core"* (Izquierdo-Carrasco & Stamatakis, IPPS
2011): a RAxML-style maximum-likelihood phylogenetics engine whose
ancestral probability vectors can live partly on disk behind a transparent
slot/replacement-policy layer.

Quickstart
----------
>>> from repro import (simulate_alignment, yule_tree, GTR, RateModel,
...                    LikelihoodEngine)
>>> tree = yule_tree(16, seed=1)
>>> aln = simulate_alignment(tree, GTR(), 200, seed=2)
>>> incore = LikelihoodEngine(tree.copy(), aln, GTR())
>>> ooc = LikelihoodEngine(tree.copy(), aln, GTR(), fraction=0.25, policy="lru")
>>> incore.loglikelihood() == ooc.loglikelihood()   # paper §4.1: bit-identical
True
>>> ooc.stats.miss_rate > 0
True
"""

from repro.core.backing import (
    FileBackingStore,
    MemoryBackingStore,
    MultiFileBackingStore,
    SimulatedDiskBackingStore,
)
from repro.core.compress import (
    CompressedFileBackingStore,
    NullCodec,
    ZlibCodec,
    make_codec,
)
from repro.core.faults import (
    FaultInjectingBackingStore,
    InjectedFault,
    RetryingBackingStore,
    SimulatedCrash,
)
from repro.core.layout import (
    ConcatenatedLayout,
    SiteBlockLayout,
    StorageLayout,
    WholeVectorLayout,
    make_layout,
)
from repro.core.policies import make_policy, policy_names
from repro.core.prefetch import Prefetcher, ThreadedPrefetcher
from repro.core.shadow import ShadowStore, TeeStore
from repro.core.sharded import ShardedBackingStore, ShardTicket
from repro.core.stats import IoStats
from repro.core.writebehind import WriteBehindQueue
from repro.core.tiered import TieredVectorStore
from repro.core.trace import AccessTrace, RecordingStoreProxy, simulate_policy_on_trace
from repro.core.vecstore import AncestralVectorStore
from repro.errors import ReproError
from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.nj import jc69_distances, neighbor_joining, p_distances
from repro.phylo.alphabet import AMINO_ACID, DNA, Alphabet
from repro.phylo.bayes import McmcChain, Priors
from repro.phylo.bootstrap import bootstrap_support, bootstrap_weights
from repro.phylo.consensus import annotate_support, consensus_tree, split_frequencies
from repro.phylo.draw import ascii_tree
from repro.phylo.likelihood.alrt import alrt_branch_support
from repro.phylo.likelihood.ancestral import (
    marginal_ancestral_distribution,
    marginal_ancestral_states,
)
from repro.phylo.likelihood.branch_opt import optimize_branch, smooth_all_branches
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.likelihood.model_opt import optimize_alpha, optimize_model
from repro.phylo.likelihood.partitioned import PartitionedEngine, split_alignment
from repro.phylo.models import GTR, HKY85, JC69, K80, Poisson, RateModel
from repro.phylo.model_selection import likelihood_ratio_test, select_model
from repro.phylo.msa import Alignment
from repro.phylo.msa_stats import summarize as summarize_alignment
from repro.phylo.newick import parse_newick, write_newick
from repro.phylo.parsimony import alignment_fitch_score, stepwise_addition_tree
from repro.phylo.search import ml_search
from repro.phylo.tree import Tree
from repro.simulate import coalescent_tree, simulate_alignment, yule_tree
from repro.vm.disk import DiskModel
from repro.vm.standardstore import PagedStandardStore

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    # alignment / tree substrate
    "Alphabet", "DNA", "AMINO_ACID", "Alignment", "Tree",
    "parse_newick", "write_newick",
    # models
    "JC69", "K80", "HKY85", "GTR", "Poisson", "RateModel",
    # likelihood
    "LikelihoodEngine", "optimize_branch", "smooth_all_branches",
    "optimize_alpha", "optimize_model", "ml_search",
    "PartitionedEngine", "split_alignment",
    "marginal_ancestral_distribution", "marginal_ancestral_states",
    "McmcChain", "Priors", "bootstrap_support", "bootstrap_weights",
    "consensus_tree", "split_frequencies", "annotate_support",
    "alrt_branch_support", "select_model", "likelihood_ratio_test",
    "summarize_alignment", "ascii_tree",
    "save_checkpoint", "load_checkpoint",
    # parsimony & NJ
    "alignment_fitch_score", "stepwise_addition_tree",
    "p_distances", "jc69_distances", "neighbor_joining",
    # out-of-core layer
    "AncestralVectorStore", "IoStats", "make_policy", "policy_names",
    "StorageLayout", "WholeVectorLayout", "SiteBlockLayout",
    "ConcatenatedLayout", "make_layout",
    "MemoryBackingStore", "FileBackingStore", "MultiFileBackingStore",
    "SimulatedDiskBackingStore", "Prefetcher", "ThreadedPrefetcher",
    "CompressedFileBackingStore", "ZlibCodec", "NullCodec", "make_codec",
    "FaultInjectingBackingStore", "RetryingBackingStore",
    "InjectedFault", "SimulatedCrash",
    "ShardedBackingStore", "ShardTicket",
    "WriteBehindQueue", "TieredVectorStore",
    "ShadowStore", "TeeStore",
    "AccessTrace", "RecordingStoreProxy", "simulate_policy_on_trace",
    # paging baseline & simulation
    "DiskModel", "PagedStandardStore",
    "simulate_alignment", "yule_tree", "coalescent_tree",
    "__version__",
]
