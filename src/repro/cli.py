"""Command-line interface — a RAxML-flavoured front door to the library.

Subcommands mirror how the paper's experiments were driven, including the
two flags its §4.3 text quotes verbatim:

* ``-f z`` — "reading in a given, fixed, tree topology and computing
  [N] full tree traversals" (the ``evaluate`` command's default mode);
* ``-L BYTES`` — "force the program to use less than [BYTES] of RAM for
  ancestral probability vectors" (accepted by every likelihood command).

Examples
--------
::

    python -m repro simulate -n 64 -l 1000 -o data.phy --tree-out true.nwk
    python -m repro evaluate -s data.phy -t true.nwk -f z -N 5 -L 1000000
    python -m repro search   -s data.phy -m GTR+G --policy lru --fraction 0.25
    python -m repro mcmc     -s data.phy -t start.nwk --generations 2000
    python -m repro policies -s data.phy --radius 5
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import __version__
from repro.errors import ReproError
from repro.phylo.alphabet import DNA
from repro.phylo.likelihood.engine import LikelihoodEngine
from repro.phylo.likelihood.model_opt import optimize_alpha
from repro.phylo.models import GTR, HKY85, JC69, K80, Poisson, RateModel
from repro.phylo.msa import Alignment
from repro.phylo.newick import parse_newick, write_newick
from repro.phylo.tree import Tree
from repro.utils.timing import format_bytes, format_seconds

MODELS = {"JC": JC69, "JC69": JC69, "K80": K80, "HKY": HKY85, "HKY85": HKY85,
          "GTR": GTR, "POISSON": Poisson}


def _read_alignment(path: str) -> Alignment:
    text = Path(path).read_text()
    stripped = text.lstrip()
    alphabet = DNA
    aln = (Alignment.from_fasta(text, alphabet) if stripped.startswith(">")
           else Alignment.from_phylip(text, alphabet))
    return aln


def _parse_model(spec: str, alignment: Alignment):
    """Parse ``GTR+G``, ``HKY+G4``, ``JC``, ``GTR+G+FC`` style model strings."""
    parts = spec.upper().split("+")
    base = parts[0]
    if base not in MODELS:
        raise ReproError(f"unknown model {base!r}; choose from {sorted(MODELS)}")
    gamma_cats = 0
    empirical_freqs = False
    for part in parts[1:]:
        if part.startswith("G"):
            gamma_cats = int(part[1:]) if len(part) > 1 else 4
        elif part in ("FC", "F"):
            empirical_freqs = True
        else:
            raise ReproError(f"unknown model suffix {part!r}")
    kwargs = {}
    if empirical_freqs and base in ("GTR", "HKY", "HKY85"):
        kwargs["frequencies"] = tuple(alignment.empirical_frequencies())
    model = MODELS[base](**kwargs)
    rates = RateModel.gamma(1.0, gamma_cats) if gamma_cats else RateModel.uniform()
    return model, rates


def _tree_for(alignment: Alignment, args) -> Tree:
    if getattr(args, "tree", None):
        tree = parse_newick(Path(args.tree).read_text())
        order = {name: i for i, name in enumerate(alignment.names)}
        missing = [n for n in tree.names if n not in order]
        if missing:
            raise ReproError(f"tree taxa absent from alignment: {missing[:5]}")
        return tree
    if getattr(args, "starting_tree", "parsimony") == "random":
        return Tree.random_topology(alignment.num_taxa, seed=args.seed,
                                    names=alignment.names)
    if getattr(args, "starting_tree", "parsimony") == "nj":
        from repro.nj.neighbor_joining import nj_tree
        return nj_tree(alignment)
    from repro.phylo.parsimony import stepwise_addition_tree
    return stepwise_addition_tree(alignment, seed=args.seed)


def _engine_for(alignment: Alignment, tree: Tree, args) -> LikelihoodEngine:
    model, rates = _parse_model(args.model, alignment)
    kwargs = {}
    if args.memory_limit is not None:
        probe = LikelihoodEngine(tree.copy(), alignment, model, rates)
        w = probe.ancestral_vector_bytes()
        kwargs["num_slots"] = max(3, int(args.memory_limit) // w)
        del probe
    elif args.fraction is not None:
        kwargs["fraction"] = args.fraction
    kwargs["policy"] = args.policy
    if args.policy == "random":
        kwargs["policy_kwargs"] = {"seed": args.seed}
    kwargs["writeback_depth"] = args.writeback_depth
    kwargs["io_threads"] = args.io_threads
    kwargs["prefetch_depth"] = args.prefetch_depth
    return LikelihoodEngine(tree, alignment, model, rates, **kwargs)


def _add_common(parser: argparse.ArgumentParser, with_tree=True) -> None:
    parser.add_argument("-s", "--msa", required=True,
                        help="alignment file (FASTA or relaxed PHYLIP)")
    parser.add_argument("-m", "--model", default="GTR+G",
                        help="substitution model, e.g. GTR+G, HKY+G4+FC, JC "
                             "(default: GTR+G)")
    if with_tree:
        parser.add_argument("-t", "--tree", help="Newick tree file")
    parser.add_argument("-L", "--memory-limit", type=int, default=None,
                        help="max bytes of RAM for ancestral probability "
                             "vectors (the paper's -L flag)")
    parser.add_argument("--fraction", type=float, default=None,
                        help="fraction f of vectors held in RAM (paper §3.2)")
    parser.add_argument("--policy", default="lru",
                        choices=["random", "lru", "lfu", "fifo", "clock", "topological"],
                        help="replacement strategy (default: lru)")
    parser.add_argument("--writeback-depth", type=int, default=0,
                        help="staging-buffer depth for asynchronous eviction "
                             "write-behind (0 = synchronous writes, paper §3.2)")
    parser.add_argument("--io-threads", type=int, default=1,
                        help="background writer threads draining the "
                             "write-behind queue (default: 1)")
    parser.add_argument("--prefetch-depth", type=int, default=0,
                        help="traversal look-ahead of the prefetch thread "
                             "(0 = no prefetching, paper §5)")
    parser.add_argument("--seed", type=int, default=42)


def _report_io(engine) -> str:
    s = engine.stats
    line = (f"vector requests {s.requests}, miss rate {s.miss_rate:.2%}, "
            f"read rate {s.read_rate:.2%}, I/O {format_bytes(s.io_bytes)}")
    if s.prefetch_reads:
        line += (f"\nprefetch       : {s.prefetch_reads} reads issued, "
                 f"{s.prefetch_hits} demand hits, {s.prefetch_unused} unused")
    if s.writeback_writes or s.writeback_stalls:
        line += (f"\nwrite-behind   : {s.writeback_writes} drained "
                 f"({s.writes - s.writeback_writes} coalesced), "
                 f"{s.writeback_stalls} stalls, "
                 f"{s.writeback_read_hits} staging read hits")
    return line


# ---------------------------------------------------------------------------
# subcommands


def cmd_evaluate(args) -> int:
    """Fixed-tree likelihood evaluation; ``-f z`` = full traversals (§4.3)."""
    alignment = _read_alignment(args.msa)
    tree = _tree_for(alignment, args)
    engine = _engine_for(alignment, tree, args)
    t0 = time.perf_counter()
    if args.function == "z":
        lnl = engine.full_traversals(args.traversals)
        mode = f"{args.traversals} full tree traversals (-f z)"
    else:
        lnl = engine.loglikelihood()
        mode = "single evaluation"
    dt = time.perf_counter() - t0
    engine.close()  # drain write-behind so the I/O report is final
    print(f"mode           : {mode}")
    print(f"log-likelihood : {lnl:.6f}")
    print(f"time           : {format_seconds(dt)}")
    print(f"vector memory  : {format_bytes(engine.store.num_slots * engine.ancestral_vector_bytes())} "
          f"of {format_bytes(engine.total_ancestral_bytes())} "
          f"({engine.store.num_slots}/{engine.num_inner} slots)")
    print(f"I/O            : {_report_io(engine)}")
    return 0


def cmd_search(args) -> int:
    """Maximum-likelihood tree search (lazy SPR + NNI + model optimization)."""
    from repro.phylo.search import ml_search

    alignment = _read_alignment(args.msa)
    resume_state = None
    if args.checkpoint and args.resume and os.path.exists(args.checkpoint):
        from repro.checkpoint import load_checkpoint

        engine, extra = load_checkpoint(args.checkpoint, alignment)
        resume_state = extra.get("search")
        print(f"resumed        : {args.checkpoint} "
              f"(round {resume_state['rounds'] if resume_state else 0})")
    else:
        tree = _tree_for(alignment, args)
        engine = _engine_for(alignment, tree, args)
    t0 = time.perf_counter()
    result = ml_search(engine, radius=args.radius, max_rounds=args.rounds,
                       checkpoint_path=args.checkpoint,
                       checkpoint_every=args.checkpoint_every,
                       resume_state=resume_state)
    if args.optimize_alpha and engine.rates.alpha is not None:
        alpha = optimize_alpha(engine)
        print(f"alpha          : {alpha:.4f}")
    dt = time.perf_counter() - t0
    lnl = engine.loglikelihood()
    engine.close()
    print(f"log-likelihood : {lnl:.6f}")
    print(f"search         : {result.rounds} rounds, {result.moves_applied} "
          f"moves applied / {result.moves_evaluated} evaluated")
    print(f"time           : {format_seconds(dt)}")
    print(f"I/O            : {_report_io(engine)}")
    newick = write_newick(engine.tree)
    if args.out:
        Path(args.out).write_text(newick + "\n")
        print(f"tree written   : {args.out}")
    else:
        print(newick)
    return 0


def cmd_mcmc(args) -> int:
    """Bayesian MCMC sampling (Metropolis–Hastings)."""
    from repro.phylo.bayes import McmcChain

    alignment = _read_alignment(args.msa)
    tree = _tree_for(alignment, args)
    engine = _engine_for(alignment, tree, args)
    chain = McmcChain(engine, seed=args.seed)
    t0 = time.perf_counter()
    result = chain.run(args.generations, burn_in=args.burn_in,
                       sample_every=args.sample_every)
    dt = time.perf_counter() - t0
    print(f"generations    : {args.generations} "
          f"({len(result.samples)} samples after burn-in {args.burn_in})")
    print(f"final lnL      : {result.final_log_likelihood:.4f}")
    mean_alpha = result.posterior_mean_alpha()
    if mean_alpha is not None:
        print(f"posterior alpha: {mean_alpha:.4f} (mean)")
    for name, stat in sorted(result.move_stats.items()):
        print(f"move {name:>13}: {stat.accepted}/{stat.proposed} accepted "
              f"({stat.acceptance_rate:.1%})")
    print(f"time           : {format_seconds(dt)}")
    print(f"I/O            : {_report_io(engine)}")
    freqs = result.split_frequencies()
    strong = sum(1 for v in freqs.values() if v >= 0.95)
    print(f"splits         : {len(freqs)} sampled, {strong} with ≥95% support")
    return 0


def cmd_simulate(args) -> int:
    """Generate a random tree + simulated alignment (INDELible substitute)."""
    from repro.simulate import simulate_alignment, yule_tree

    tree = yule_tree(args.taxa, seed=args.seed, scale=args.scale)
    base = args.model.upper().split("+")[0]
    if base not in MODELS:
        raise ReproError(f"unknown model {base!r}; choose from {sorted(MODELS)}")
    model = MODELS[base]()
    cats = 4 if "+G" in args.model.upper() else 0
    rates = RateModel.gamma(args.alpha, cats) if cats else RateModel.uniform()
    alignment = simulate_alignment(tree, model, args.length, rates=rates,
                                   seed=args.seed + 1)
    Path(args.out).write_text(alignment.to_phylip())
    print(f"alignment written: {args.out} "
          f"({alignment.num_taxa} taxa x {alignment.num_sites} sites)")
    if args.tree_out:
        Path(args.tree_out).write_text(write_newick(tree) + "\n")
        print(f"true tree written: {args.tree_out}")
    mem = alignment.total_ancestral_bytes()
    print(f"ancestral vectors would need {format_bytes(mem)} "
          "(uncompressed patterns)")
    return 0


def cmd_policies(args) -> int:
    """Compare replacement strategies on a live search (Fig. 2/3 tables)."""
    from repro import AncestralVectorStore, ShadowStore, TeeStore
    from repro.phylo.search import lazy_spr_round

    alignment = _read_alignment(args.msa)
    tree = _tree_for(alignment, args)
    model, rates = _parse_model(args.model, alignment)
    probe = LikelihoodEngine(tree.copy(), alignment, model, rates)
    num_inner, shape = probe.num_inner, probe.clv_shape
    del probe
    fractions = [float(x) for x in args.fractions.split(",")]
    policies = ["random", "lru", "lfu", "topological"]
    shadows = [
        ShadowStore(num_inner, max(3, round(f * num_inner)), p,
                    label=f"{p}:{f}", policy_kwargs={"seed": 1} if p == "random" else None)
        for p in policies for f in fractions
    ]
    engine = LikelihoodEngine(
        tree, alignment, model, rates,
        store=TeeStore(AncestralVectorStore(num_inner, shape), shadows),
    )
    for shadow in shadows:
        if shadow.policy.name == "topological":
            n = engine.tree.num_tips
            shadow.policy.distance_provider = (
                lambda item, t=engine.tree, n=n: t.hop_distances_from(n + item)[n:]
            )
    result = lazy_spr_round(engine, radius=args.radius)
    print(f"search: lnL {result.lnl:.2f}, {engine.stats.requests} vector requests")
    header = f"{'strategy':>12} | " + " | ".join(f"f={f}" for f in fractions)
    for title, attr in (("miss rate", "miss_rate"), ("read rate", "read_rate")):
        print(f"\n{title} (% of total vector requests)")
        print(header)
        for p in policies:
            cells = [getattr(next(s.stats for s in shadows
                                  if s.label == f"{p}:{f}"), attr)
                     for f in fractions]
            print(f"{p:>12} | " + " | ".join(f"{c:6.2%}" for c in cells))
    return 0


def cmd_support(args) -> int:
    """aLRT branch support (+ optional NJ bootstrap) on a given tree."""
    from repro.phylo.consensus import annotate_support
    from repro.phylo.bootstrap import bootstrap_alignment
    from repro.phylo.draw import ascii_tree
    from repro.phylo.likelihood.alrt import alrt_branch_support
    from repro.nj.neighbor_joining import nj_tree
    from repro.utils.rng import as_rng

    alignment = _read_alignment(args.msa)
    tree = _tree_for(alignment, args)
    engine = _engine_for(alignment, tree, args)
    engine.optimize_all_branches(passes=2)
    supports = alrt_branch_support(engine)
    labels = {e: f"aLRT={s.statistic:.1f}" for e, s in supports.items()}
    significant = sum(1 for s in supports.values() if s.supported)
    print(f"aLRT           : {significant}/{len(supports)} internal edges "
          "significant at 5%")
    if args.bootstrap > 0:
        rng = as_rng(args.seed)
        replicate_trees = [nj_tree(bootstrap_alignment(alignment, rng))
                           for _ in range(args.bootstrap)]
        boot = annotate_support(engine.tree, replicate_trees)
        for edge in labels:
            labels[edge] += f" BS={boot.get(edge, 0.0):.0%}"
        print(f"bootstrap      : {args.bootstrap} NJ replicates")
    print(f"log-likelihood : {engine.loglikelihood():.6f}")
    print(f"I/O            : {_report_io(engine)}")
    print()
    print(ascii_tree(engine.tree, edge_labels=labels, max_width=40))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-core phylogenetic likelihood toolkit "
                    "(reproduction of Izquierdo-Carrasco & Stamatakis 2011)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("evaluate", help="fixed-tree likelihood (-f z mode)")
    _add_common(p)
    p.add_argument("-f", "--function", choices=["e", "z"], default="e",
                   help="e: single evaluation; z: full traversals (paper §4.3)")
    p.add_argument("-N", "--traversals", type=int, default=5,
                   help="full traversals for -f z (paper uses 5)")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("search", help="maximum-likelihood tree search")
    _add_common(p)
    p.add_argument("--starting-tree", choices=["parsimony", "nj", "random"],
                   default="parsimony")
    p.add_argument("--radius", type=int, default=5)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--optimize-alpha", action="store_true")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="crash-safe checkpoint file (written during the "
                        "search; see --checkpoint-every / --resume)")
    p.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                   help="write the checkpoint after every N search rounds "
                        "(default 1)")
    p.add_argument("--resume", action="store_true",
                   help="resume from --checkpoint if it exists (tree and "
                        "model are restored from the file)")
    p.add_argument("-o", "--out", help="output Newick file")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser("mcmc", help="Bayesian MCMC sampling")
    _add_common(p)
    p.add_argument("--starting-tree", choices=["parsimony", "nj", "random"],
                   default="parsimony")
    p.add_argument("--generations", type=int, default=1000)
    p.add_argument("--burn-in", type=int, default=100)
    p.add_argument("--sample-every", type=int, default=10)
    p.set_defaults(func=cmd_mcmc)

    p = sub.add_parser("simulate", help="simulate a tree + alignment")
    p.add_argument("-n", "--taxa", type=int, required=True)
    p.add_argument("-l", "--length", type=int, required=True)
    p.add_argument("-o", "--out", required=True, help="output PHYLIP file")
    p.add_argument("--tree-out", help="write the true tree (Newick)")
    p.add_argument("-m", "--model", default="GTR+G")
    p.add_argument("--alpha", type=float, default=1.0)
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("support", help="aLRT (+bootstrap) branch support")
    _add_common(p)
    p.add_argument("--starting-tree", choices=["parsimony", "nj", "random"],
                   default="nj")
    p.add_argument("-b", "--bootstrap", type=int, default=0,
                   help="number of NJ bootstrap replicates (0 = aLRT only)")
    p.set_defaults(func=cmd_support)

    p = sub.add_parser("policies", help="replacement-strategy comparison table")
    _add_common(p)
    p.add_argument("--starting-tree", choices=["parsimony", "nj", "random"],
                   default="random")
    p.add_argument("--radius", type=int, default=5)
    p.add_argument("--fractions", default="0.25,0.5,0.75")
    p.set_defaults(func=cmd_policies)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
