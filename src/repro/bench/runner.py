"""``python -m repro.bench`` — the regression-tracking benchmark runner.

Drives one small instance of each paper evaluation workload — Fig. 2
miss rates (LRU vs random, whole-vector and site-block layouts), Fig. 3
read skipping on/off, Fig. 5 runtime under a simulated HDD (out-of-core
vs OS paging), and the §4.3 lazy SPR search — and writes a versioned
``BENCH_results.json`` (:mod:`repro.bench.schema`).

The Fig. 5 workloads also run under the batched kernel schedule
(``--batch``, :mod:`repro.phylo.likelihood.schedule`); the runner fails
unless each batched entry reproduces its unbatched partner's likelihood
and I/O counters bit-for-bit, and it records the wall-time speedup as a
derived metric so ``--baseline`` tracks kernel regressions.

Every out-of-core workload runs with a live metrics registry attached;
the reported counters come from the engine's :class:`IoStats` and are
cross-checked against the registry snapshot, so a bench run doubles as
an end-to-end test of the telemetry path. ``--baseline FILE`` compares
against a stored document and exits nonzero on regression; CI's
``bench-smoke`` job runs ``--quick`` and uploads the artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.schema import (
    RESULT_METRICS,
    RESULTS_SCHEMA,
    compare_results,
    validate_results,
)
from repro.errors import ReproError
from repro.obs import Observer

#: Cache fraction shared by all out-of-core workloads (a paper midpoint).
FRACTION = 0.25


def _dataset(taxa: int, sites: int, seed: int):
    from repro.phylo.models import GTR
    from repro.phylo.models.rates import RateModel
    from repro.simulate import simulate_alignment, yule_tree

    tree = yule_tree(taxa, seed=seed, scale=0.1)
    model = GTR()
    rates = RateModel.gamma(1.0, 4)
    alignment = simulate_alignment(tree, model, sites, seed=seed + 1)
    return tree, alignment, model, rates


def _geometry(ctx):
    """(num_inner, clv_shape) probed once per run."""
    from repro.phylo.likelihood.engine import LikelihoodEngine

    tree, alignment, model, rates = ctx["dataset"]
    probe = LikelihoodEngine(tree.copy(), alignment, model, rates)
    geom = (probe.num_inner, probe.clv_shape)
    probe.close()
    return geom


def _build_engine(ctx, *, layout="whole", policy="lru", read_skipping=True,
                  backing_kind="memory", store=None, batch=None,
                  kernel_threads=1, writeback_depth=0, io_threads=1,
                  shards=None):
    from repro.core.backing import SimulatedDiskBackingStore
    from repro.core.layout import make_layout
    from repro.phylo.likelihood.engine import LikelihoodEngine
    from repro.vm.disk import DiskModel

    tree, alignment, model, rates = ctx["dataset"]
    if store is not None:
        return LikelihoodEngine(tree.copy(), alignment, model, rates,
                                store=store)
    num_inner, clv_shape = ctx["geometry"]
    block_sites = ctx["block_sites"] if layout == "block" else None
    lay = make_layout(layout, num_inner, clv_shape, block_sites=block_sites)
    backing = None
    if backing_kind == "simulated":
        backing = SimulatedDiskBackingStore.from_layout(
            lay, np.float64, disk=DiskModel.hdd())
    elif backing_kind == "compressed":
        from repro.core.compress import CompressedFileBackingStore

        # Real (temp-dir) file I/O: the compression-ratio numbers must
        # come from actual on-disk records, not a model. The directory
        # lives until run_bench's cleanup (ctx["tmpdirs"]).
        td = tempfile.TemporaryDirectory(prefix="repro-bench-czb-")
        ctx.setdefault("tmpdirs", []).append(td)
        backing = CompressedFileBackingStore.from_layout(
            os.path.join(td.name, "vectors.czb"), lay, np.float64)
    elif backing_kind in ("sharded", "sharded-hdd"):
        from repro.core.sharded import ShardedBackingStore

        td = tempfile.TemporaryDirectory(prefix="repro-bench-shard-")
        ctx.setdefault("tmpdirs", []).append(td)
        n = int(shards) if shards is not None else ctx["shards"]
        if backing_kind == "sharded":
            # Real per-shard files: exercises the full wire protocol and
            # the labelled-metrics aggregation against actual disk I/O.
            backing = ShardedBackingStore.from_layout(
                td.name, lay, np.float64, num_shards=n)
        else:
            # Sleeping simulated-HDD workers: each shard charges real wall
            # time for its transfers, so overlapping the write-behind
            # drain across N worker processes shows up as a measurable
            # speedup over the same store with one shard.
            hdd = DiskModel.hdd()
            backing = ShardedBackingStore.from_layout(
                td.name, lay, np.float64, num_shards=n, kind="simulated",
                disk=(hdd.access_latency, hdd.bandwidth), sleep=True)
    policy_kwargs = {"seed": ctx["seed"]} if policy == "random" else None
    return LikelihoodEngine(
        tree.copy(), alignment, model, rates,
        layout=lay, fraction=FRACTION, policy=policy,
        policy_kwargs=policy_kwargs, backing=backing,
        read_skipping=read_skipping,
        writeback_depth=writeback_depth, io_threads=io_threads,
        batch=batch, kernel_threads=kernel_threads,
    )


def _run_entry(ctx, figure, engine, run, config, *, use_registry=True):
    """Execute one workload and build its result entry.

    With ``use_registry`` the run happens under a live
    :class:`MetricsRegistry` and the reported counters are cross-checked
    against its snapshot — any disagreement is a telemetry bug and
    aborts the bench.
    """
    obs = Observer(metrics=True) if use_registry else None
    if obs is not None:
        obs.attach(engine)
    try:
        t0 = time.perf_counter()
        lnl = run(engine)
        drain = getattr(engine.store, "drain", None)
        if drain is not None:
            drain()
        wall = time.perf_counter() - t0
        stats = engine.stats
        row = stats.as_row()
        counters = {key: int(row[key]) for key in RESULT_METRICS}
        derived = {"miss_rate": float(stats.miss_rate),
                   "read_rate": float(stats.read_rate)}
        if obs is not None:
            snapshot = obs.metrics.snapshot()
            snap = snapshot["counters"]
            for key in RESULT_METRICS:
                if snap.get(key) != counters[key]:
                    raise ReproError(
                        f"metrics registry disagrees with IoStats on "
                        f"{key!r}: {snap.get(key)} vs {counters[key]}")
            backing = getattr(engine.store, "backing", None)
            if getattr(backing, "num_shards", 0):
                # Sharded tier: the per-shard labelled series must
                # aggregate to the same physical totals the unsharded
                # registry check would see — summing over labels is the
                # sharded extension of the IoStats cross-check above.
                labeled = snapshot["labeled"]
                expect = {
                    "backing_reads": stats.physical_reads,
                    "backing_writes": stats.physical_writes,
                    "backing_bytes_read":
                        stats.physical_reads * backing.item_bytes,
                    "backing_bytes_written":
                        stats.physical_writes * backing.item_bytes,
                }
                for key, want in expect.items():
                    got = sum(labeled.get(key, {}).values())
                    if got != want:
                        raise ReproError(
                            f"per-shard {key!r} labels sum to {got}, but "
                            f"IoStats says {want} physical: shard "
                            "accounting lost operations")
                # Cross-process telemetry gate: pull the workers' own
                # histograms over OP_TELEMETRY and require their op counts
                # to equal the parent's IoStats totals bit-exactly — both
                # sides count each successful physical op exactly once.
                backing.collect_telemetry()
                for op, want in (("read", stats.physical_reads),
                                 ("write", stats.physical_writes)):
                    hist = getattr(backing.worker_probe, f"{op}_hist")
                    if hist.count != want:
                        raise ReproError(
                            f"worker-side {op} histogram counted "
                            f"{hist.count} ops, but IoStats says {want} "
                            f"physical_{op}s: cross-process telemetry "
                            "lost or double-counted operations")
    finally:
        if obs is not None:
            obs.detach(engine)
        engine.close()
    entry = {
        "figure": figure,
        "config": config,
        "wall_seconds": wall,
        "log_likelihood": float(lnl),
        "metrics": counters,
        "derived": derived,
        "registry_checked": use_registry,
    }
    if obs is not None:
        # Per-op latency percentiles from the backing probe attached for
        # this (instrumented) repeat; --baseline tracks them as timing
        # figures, and run_bench carries the block onto the best-of-N
        # entry when a bare repeat wins on wall time.
        entry["latency"] = {
            op: {"count": hist.count,
                 "p50": hist.percentile(50.0) if hist.count else 0.0,
                 "p95": hist.percentile(95.0) if hist.count else 0.0}
            for op, hist in (("read", obs.probe.read_hist),
                             ("write", obs.probe.write_hist))
        }
    return entry


def _run_full(traversals):
    return lambda engine: engine.full_traversals(traversals)


def _run_search(radius):
    def run(engine):
        from repro.phylo.search.spr import lazy_spr_round
        return lazy_spr_round(engine, radius=radius).lnl
    return run


def _workloads(ctx):
    """Yield ``(name, figure, build, run, config)`` for every workload."""
    traversals, radius = ctx["traversals"], ctx["radius"]
    full, search = _run_full(traversals), _run_search(radius)

    def cfg(**kw):
        base = {"fraction": FRACTION, "traversals": traversals}
        base.update(kw)
        return base

    yield ("fig2_lru_whole", "fig2",
           lambda: _build_engine(ctx, policy="lru"),
           full, cfg(policy="lru", layout="whole"))
    yield ("fig2_random_whole", "fig2",
           lambda: _build_engine(ctx, policy="random"),
           full, cfg(policy="random", layout="whole"))
    yield ("fig2_lru_block", "fig2",
           lambda: _build_engine(ctx, policy="lru", layout="block"),
           full, cfg(policy="lru", layout="block",
                     block_sites=ctx["block_sites"]))
    yield ("fig3_skip", "fig3",
           lambda: _build_engine(ctx, read_skipping=True),
           full, cfg(policy="lru", layout="whole", read_skipping=True))
    yield ("fig3_noskip", "fig3",
           lambda: _build_engine(ctx, read_skipping=False),
           full, cfg(policy="lru", layout="whole", read_skipping=False))
    yield ("fig5_ooc_whole", "fig5",
           lambda: _build_engine(ctx, backing_kind="simulated"),
           full, cfg(policy="lru", layout="whole", backing="simulated-hdd"))
    yield ("fig5_ooc_block", "fig5",
           lambda: _build_engine(ctx, backing_kind="simulated",
                                 layout="block"),
           full, cfg(policy="lru", layout="block",
                     block_sites=ctx["block_sites"], backing="simulated-hdd"))
    yield ("fig5_ooc_whole_batch", "fig5",
           lambda: _build_engine(ctx, backing_kind="simulated",
                                 batch=ctx["batch"],
                                 kernel_threads=ctx["kernel_threads"]),
           full, cfg(policy="lru", layout="whole", backing="simulated-hdd",
                     batch=ctx["batch"],
                     kernel_threads=ctx["kernel_threads"]))
    yield ("fig5_ooc_block_batch", "fig5",
           lambda: _build_engine(ctx, backing_kind="simulated",
                                 layout="block", batch=ctx["batch"],
                                 kernel_threads=ctx["kernel_threads"]),
           full, cfg(policy="lru", layout="block",
                     block_sites=ctx["block_sites"], backing="simulated-hdd",
                     batch=ctx["batch"],
                     kernel_threads=ctx["kernel_threads"]))
    yield ("fig5_paging", "fig5",
           lambda: _build_engine(ctx, store=_paging_store(ctx)),
           full, cfg(policy=None, layout="paged", backing="simulated-hdd"))
    yield ("fig5_ooc_compressed", "fig5",
           lambda: _build_engine(ctx, backing_kind="compressed"),
           full, cfg(policy="lru", layout="whole", backing="compressed-zlib"))
    shards = ctx["shards"]
    yield ("fig5_ooc_sharded", "fig5",
           lambda: _build_engine(ctx, backing_kind="sharded",
                                 writeback_depth=8),
           full, cfg(policy="lru", layout="whole", backing="sharded-file",
                     shards=shards, writeback_depth=8))
    yield ("fig5_ooc_sharded_hdd", "fig5",
           lambda: _build_engine(ctx, backing_kind="sharded-hdd",
                                 writeback_depth=8),
           full, cfg(policy="lru", layout="whole", backing="sharded-hdd",
                     shards=shards, writeback_depth=8))
    yield ("fig5_ooc_sharded_hdd1", "fig5",
           lambda: _build_engine(ctx, backing_kind="sharded-hdd",
                                 writeback_depth=8, shards=1),
           full, cfg(policy="lru", layout="whole", backing="sharded-hdd",
                     shards=1, writeback_depth=8))
    yield ("spr_search_whole", "spr",
           lambda: _build_engine(ctx, policy="lru"),
           search, cfg(policy="lru", layout="whole", radius=radius,
                       workload="search"))
    yield ("spr_search_block", "spr",
           lambda: _build_engine(ctx, policy="lru", layout="block"),
           search, cfg(policy="lru", layout="block",
                       block_sites=ctx["block_sites"], radius=radius,
                       workload="search"))


def _warm_kernels(ctx):
    """One throwaway traversal per execution path before anything is timed.

    The first numpy contraction in a process pays one-off setup (BLAS
    initialisation, einsum path search, allocator growth) that would
    otherwise be charged to whichever workload happens to run first and
    skew the batched-vs-unbatched speedup both ways.
    """
    for batch in (None, 2):
        engine = _build_engine(ctx, batch=batch)
        try:
            engine.full_traversals(1)
        finally:
            engine.close()


def _paging_store(ctx):
    from repro.vm.disk import DiskModel
    from repro.vm.standardstore import PagedStandardStore

    num_inner, clv_shape = ctx["geometry"]
    item_bytes = int(np.prod(clv_shape)) * 8
    ram = max(4096, int(FRACTION * num_inner * item_bytes))
    return PagedStandardStore(num_inner, clv_shape, ram_bytes=ram,
                              disk=DiskModel.hdd())


def run_bench(args) -> int:
    ctx = {
        "dataset": _dataset(args.taxa, args.sites, args.seed),
        "seed": args.seed,
        "traversals": args.traversals,
        "radius": args.radius,
        "block_sites": args.block_sites,
        "batch": args.batch,
        "kernel_threads": args.kernel_threads,
        "shards": args.shards,
    }
    ctx["geometry"] = _geometry(ctx)
    _warm_kernels(ctx)

    workloads = {}
    for name, figure, build, run, config in _workloads(ctx):
        # Best-of-N wall time: single cold runs of these millisecond-scale
        # workloads are dominated by scheduler noise, which would swamp the
        # batched-vs-unbatched speedup.  Likelihoods and counters are
        # deterministic, so repeat runs must agree bit-for-bit — N repeats
        # double as a determinism check.  The SPR searches are seconds-long
        # (noise-insensitive) and run once.
        repeats = max(1, args.repeats) if config.get("workload") != "search" \
            else 1
        entry = None
        checked = False
        for r in range(repeats):
            engine = build()
            store = engine.store
            # The registry cross-check instruments every store call; doing
            # it on the first repeat only keeps the timed repeats bare (the
            # bit-for-bit agreement assertion below extends its verdict to
            # them).
            use_registry = r == 0 and hasattr(store, "attach_metrics")
            checked = checked or use_registry
            rep = _run_entry(ctx, figure, engine, run, config,
                             use_registry=use_registry)
            if name == "fig5_paging":
                rep["simulated_io_seconds"] = float(store.simulated_seconds)
                rep["faults"] = int(store.faults)
            elif name == "fig5_ooc_compressed":
                backing = store.backing
                rep["compression_ratio"] = float(backing.compression_ratio)
                rep["backing_bytes_written"] = int(
                    backing.stored_bytes_written)
            elif name.startswith("fig5_ooc_sharded"):
                # The workers' clocks (and any simulated-disk seconds)
                # live in the child processes; report topology instead.
                rep["shards"] = int(store.backing.num_shards)
                rep["shard_restarts"] = int(store.backing.restarts())
            elif figure == "fig5":
                rep["simulated_io_seconds"] = float(
                    store.backing.simulated_seconds)
            if entry is None:
                entry = rep
            else:
                if (rep["log_likelihood"] != entry["log_likelihood"]
                        or rep["metrics"] != entry["metrics"]):
                    raise ReproError(
                        f"{name}: repeat runs disagree on likelihood or "
                        "I/O counters — workload is nondeterministic")
                if rep["wall_seconds"] < entry["wall_seconds"]:
                    # Latency percentiles only exist on the instrumented
                    # first repeat; keep them when a bare repeat wins.
                    if "latency" in entry and "latency" not in rep:
                        rep["latency"] = entry["latency"]
                    entry = rep
        entry["repeats"] = repeats
        entry["registry_checked"] = checked
        workloads[name] = entry
        print(f"{name:>18}: lnL {entry['log_likelihood']:.4f}  "
              f"{entry['wall_seconds']:.3f}s  "
              f"miss {entry['derived']['miss_rate']:.2%}  "
              f"read {entry['derived']['read_rate']:.2%}")

    # The batched fig5 entries must be bit-identical to their unbatched
    # partners — same lnL, same demand/eviction counters — or the batched
    # execution path is broken.  A bench run therefore doubles as the
    # batching correctness gate; the speedup lands in ``derived`` so a
    # --baseline comparison tracks it like any other timing figure.
    batch_pairs = (("fig5_ooc_whole", "fig5_ooc_whole_batch"),
                   ("fig5_ooc_block", "fig5_ooc_block_batch"))
    for plain_name, batch_name in batch_pairs:
        plain, batched = workloads[plain_name], workloads[batch_name]
        if batched["log_likelihood"] != plain["log_likelihood"]:
            raise ReproError(
                f"{batch_name} lnL {batched['log_likelihood']!r} differs "
                f"from {plain_name} {plain['log_likelihood']!r}: batched "
                "schedule is not bit-identical")
        diff = [k for k in RESULT_METRICS
                if batched["metrics"][k] != plain["metrics"][k]]
        if diff:
            raise ReproError(
                f"{batch_name} counters differ from {plain_name} on "
                f"{diff}: batched schedule broke access-sequence parity")
        speedup = plain["wall_seconds"] / max(batched["wall_seconds"], 1e-9)
        batched["derived"]["speedup_vs_unbatched"] = float(speedup)
        print(f"{batch_name:>24}: {speedup:.2f}x vs {plain_name} "
              "(lnL + counters bit-identical)")

    # Compressed-backing gate: same LRU/whole-vector workload as
    # fig5_ooc_whole, so the likelihood and demand counters must match
    # bit-for-bit (CLVs round-trip exactly through the codec), while the
    # physical bytes on disk must come in BELOW the logical write traffic
    # — otherwise compression is costing I/O instead of saving it.
    comp = workloads["fig5_ooc_compressed"]
    plain = workloads["fig5_ooc_whole"]
    if comp["log_likelihood"] != plain["log_likelihood"]:
        raise ReproError(
            f"fig5_ooc_compressed lnL {comp['log_likelihood']!r} differs "
            f"from fig5_ooc_whole {plain['log_likelihood']!r}: compressed "
            "backing broke CLV round-trip")
    diff = [k for k in RESULT_METRICS
            if comp["metrics"][k] != plain["metrics"][k]]
    if diff:
        raise ReproError(
            f"fig5_ooc_compressed counters differ from fig5_ooc_whole on "
            f"{diff}: compression must be transparent to the store")
    if comp["backing_bytes_written"] >= comp["metrics"]["bytes_written"]:
        raise ReproError(
            f"compressed backing wrote {comp['backing_bytes_written']} "
            f"physical bytes >= {comp['metrics']['bytes_written']} logical "
            "bytes: compression is not reducing I/O")
    comp["derived"]["compression_ratio"] = comp["compression_ratio"]
    print(f"{'fig5_ooc_compressed':>24}: ratio "
          f"{comp['compression_ratio']:.2f}x, "
          f"{comp['backing_bytes_written']}/{comp['metrics']['bytes_written']}"
          " physical/logical bytes written (lnL bit-identical)")

    # Sharded-backing gate: routing items across N worker processes (and
    # draining evictions through the asynchronous write-behind batch path)
    # must be invisible to the paper's metrics — same likelihood, same
    # demand/eviction counters as the single-file fig5 workload.  The
    # demand counters are backing- and writeback-invariant by design, so
    # the comparison is exact.
    for sharded_name in ("fig5_ooc_sharded", "fig5_ooc_sharded_hdd",
                         "fig5_ooc_sharded_hdd1"):
        shd = workloads[sharded_name]
        if shd["log_likelihood"] != plain["log_likelihood"]:
            raise ReproError(
                f"{sharded_name} lnL {shd['log_likelihood']!r} differs "
                f"from fig5_ooc_whole {plain['log_likelihood']!r}: sharded "
                "backing broke CLV round-trip")
        diff = [k for k in RESULT_METRICS
                if shd["metrics"][k] != plain["metrics"][k]]
        if diff:
            raise ReproError(
                f"{sharded_name} counters differ from fig5_ooc_whole on "
                f"{diff}: sharding must be transparent to the store")
    print(f"{'fig5_ooc_sharded':>24}: lnL + counters bit-identical to "
          "fig5_ooc_whole across "
          f"{workloads['fig5_ooc_sharded']['shards']} shards")

    # Shard scaling: the same sleeping simulated-HDD workload with N
    # worker processes vs one.  The write-behind drain overlaps transfers
    # across shards, so N shards should beat one; the ratio lands in
    # ``derived`` so --baseline (and the optional --min-shard-speedup
    # gate) track it.
    hdd = workloads["fig5_ooc_sharded_hdd"]
    one = workloads["fig5_ooc_sharded_hdd1"]
    shard_speedup = one["wall_seconds"] / max(hdd["wall_seconds"], 1e-9)
    hdd["derived"]["speedup_vs_one_shard"] = float(shard_speedup)
    print(f"{'fig5_ooc_sharded_hdd':>24}: {shard_speedup:.2f}x vs one shard "
          f"({hdd['shards']} sleeping HDD workers)")

    for td in ctx.get("tmpdirs", []):
        td.cleanup()

    doc = {
        "schema": RESULTS_SCHEMA,
        "quick": bool(args.quick),
        "config": {
            "taxa": args.taxa,
            "sites": args.sites,
            "seed": args.seed,
            "traversals": args.traversals,
            "radius": args.radius,
            "block_sites": args.block_sites,
            "fraction": FRACTION,
        },
        "workloads": workloads,
    }
    problems = validate_results(doc)
    if problems:  # a bug in this module, not in the caller's input
        for p in problems:
            print(f"internal schema violation: {p}", file=sys.stderr)
        return 1

    out = Path(args.out)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"results written : {out} ({len(workloads)} workloads)")

    if args.min_batch_speedup is not None:
        got = workloads["fig5_ooc_block_batch"]["derived"][
            "speedup_vs_unbatched"]
        if got < args.min_batch_speedup:
            print(f"REGRESSION: fig5_ooc_block_batch speedup {got:.2f}x < "
                  f"required {args.min_batch_speedup:.2f}x", file=sys.stderr)
            return 1
        print(f"batch speedup   : {got:.2f}x "
              f">= {args.min_batch_speedup:.2f}x required")

    if args.min_shard_speedup is not None:
        got = workloads["fig5_ooc_sharded_hdd"]["derived"][
            "speedup_vs_one_shard"]
        if got < args.min_shard_speedup:
            print(f"REGRESSION: fig5_ooc_sharded_hdd speedup {got:.2f}x < "
                  f"required {args.min_shard_speedup:.2f}x", file=sys.stderr)
            return 1
        print(f"shard speedup   : {got:.2f}x "
              f">= {args.min_shard_speedup:.2f}x required")

    if args.baseline:
        try:
            baseline = json.loads(Path(args.baseline).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        regressions, notes = compare_results(
            doc, baseline,
            time_tolerance=args.time_tolerance,
            rate_tolerance=args.rate_tolerance,
            counter_tolerance=args.counter_tolerance,
        )
        for note in notes:
            print(f"note: {note}")
        if regressions:
            for r in regressions:
                print(f"REGRESSION: {r}", file=sys.stderr)
            print(f"{len(regressions)} regression(s) vs {args.baseline}",
                  file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline}")
    return 0


def run_validate(path: str) -> int:
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    problems = validate_results(doc)
    if problems:
        for p in problems:
            print(f"{path}: {p}", file=sys.stderr)
        return 1
    print(f"{path}: valid {RESULTS_SCHEMA} results")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the paper-evaluation benchmark suite and write "
                    "BENCH_results.json; optionally compare against a "
                    "stored baseline and fail on regression.",
    )
    parser.add_argument("--validate", metavar="PATH",
                        help="validate an existing results file and exit")
    parser.add_argument("--quick", action="store_true",
                        help="small geometry for CI smoke runs "
                             "(12 taxa, 120 sites, 2 traversals, radius 2)")
    parser.add_argument("--taxa", type=int, default=None,
                        help="simulated taxa (default 24; 12 with --quick)")
    parser.add_argument("--sites", type=int, default=None,
                        help="alignment length (default 300; 120 with "
                             "--quick)")
    parser.add_argument("--traversals", type=int, default=None,
                        help="full traversals per workload (default 3; "
                             "2 with --quick)")
    parser.add_argument("--radius", type=int, default=None,
                        help="SPR rearrangement radius (default 3; 2 with "
                             "--quick)")
    parser.add_argument("--block-sites", type=int, default=64,
                        help="sites per block for the block-layout "
                             "workloads (default 64)")
    parser.add_argument("--batch", type=int, default=-1,
                        help="group cap for the *_batch workloads: -1 = "
                             "auto (num_slots // 3), N > 0 = explicit cap "
                             "(default -1)")
    parser.add_argument("--kernel-threads", type=int, default=1,
                        help="kernel/gather overlap threads for the "
                             "*_batch workloads (default 1 = off)")
    parser.add_argument("--min-batch-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless fig5_ooc_block_batch is at least "
                             "X times faster than fig5_ooc_block (off by "
                             "default; timing gates need a quiet machine)")
    parser.add_argument("--shards", type=int, default=4,
                        help="worker processes for the fig5_ooc_sharded* "
                             "workloads (default 4)")
    parser.add_argument("--min-shard-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless fig5_ooc_sharded_hdd is at least "
                             "X times faster than the same workload with "
                             "one shard (off by default)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N wall time for the traversal "
                             "workloads; repeat runs must reproduce the "
                             "same likelihood and counters bit-for-bit "
                             "(searches always run once; default 3)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare against this results file; exit 1 on "
                             "regression")
    parser.add_argument("--time-tolerance", type=float, default=1.0,
                        help="relative slowdown tolerated on timing "
                             "figures (default 1.0 = 2x)")
    parser.add_argument("--rate-tolerance", type=float, default=0.02,
                        help="absolute increase tolerated on miss/read "
                             "rates (default 0.02)")
    parser.add_argument("--counter-tolerance", type=float, default=0.0,
                        help="relative increase tolerated on deterministic "
                             "I/O counters (default 0 = exact)")
    parser.add_argument("-o", "--out", default="BENCH_results.json",
                        help="output path (default BENCH_results.json)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.validate:
        return run_validate(args.validate)
    defaults = (12, 120, 2, 2) if args.quick else (24, 300, 3, 3)
    args.taxa = args.taxa if args.taxa is not None else defaults[0]
    args.sites = args.sites if args.sites is not None else defaults[1]
    args.traversals = (args.traversals if args.traversals is not None
                       else defaults[2])
    args.radius = args.radius if args.radius is not None else defaults[3]
    return run_bench(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
