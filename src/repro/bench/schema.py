"""Schema and baseline comparison for ``BENCH_results.json``.

``python -m repro.bench`` emits one versioned document per run:

* :data:`RESULTS_SCHEMA` — the layout version tag;
* :func:`validate_results` — the hand-rolled validator (same no-jsonschema
  discipline as :func:`repro.obs.exporters.validate_profile`);
* :func:`compare_results` — the regression check behind ``--baseline``:
  deterministic I/O counters are compared exactly, timing and rate
  figures with configurable noise tolerances, and workloads whose
  configuration changed between the two documents are skipped with a
  note instead of producing false alarms.

The per-workload counter names in :data:`RESULT_METRICS` are a subset of
the metrics catalogue (:data:`repro.obs.metrics.METRIC_NAMES`); analysis
rule MET002 keeps the two in sync.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import METRIC_NAMES

#: Version tag of the ``BENCH_results.json`` document layout.
RESULTS_SCHEMA = "repro-bench/1"

#: Per-workload counters every result entry must report — the §4
#: evaluation metrics, named exactly as in the metrics catalogue.
RESULT_METRICS = (
    "requests", "hits", "misses", "reads", "read_skips",
    "writes", "write_skips", "bytes_read", "bytes_written",
)

#: Counters where a larger current value is a regression. ``requests``
#: and ``hits`` are excluded: request totals are workload shape, and
#: more hits is an improvement.
LOWER_IS_BETTER_COUNTERS = (
    "misses", "reads", "writes", "bytes_read", "bytes_written",
)

#: Timing figures compared with relative ``time_tolerance`` (noisy).
TIME_KEYS = ("wall_seconds", "simulated_io_seconds")

#: Derived rates compared with absolute ``rate_tolerance``.
RATE_KEYS = ("miss_rate", "read_rate")

#: Required top-level document keys.
_REQUIRED_TOP = ("schema", "quick", "config", "workloads")

#: Required keys of each workload entry.
_ENTRY_KEYS = ("figure", "config", "wall_seconds", "log_likelihood",
               "metrics", "derived")

#: Required keys of each per-op latency summary (an optional per-workload
#: ``latency`` block recorded from the instrumented repeat's probe).
_LATENCY_KEYS = ("count", "p50", "p95")

assert set(RESULT_METRICS) <= METRIC_NAMES, \
    "RESULT_METRICS must use catalogue names (analysis rule MET002)"


def _type_name(obj: Any) -> str:
    return type(obj).__name__


def validate_results(doc: Any) -> list[str]:
    """Validate a ``BENCH_results.json`` document; returns problem strings.

    An empty list means the document conforms to :data:`RESULTS_SCHEMA`.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {_type_name(doc)}"]
    for key in _REQUIRED_TOP:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    if doc["schema"] != RESULTS_SCHEMA:
        problems.append(
            f"schema is {doc['schema']!r}, expected {RESULTS_SCHEMA!r}")
    if not isinstance(doc["quick"], bool):
        problems.append("quick must be a boolean")
    if not isinstance(doc["config"], dict):
        problems.append("config must be an object")

    workloads = doc["workloads"]
    if not isinstance(workloads, dict) or not workloads:
        return [*problems, "workloads must be a non-empty object"]
    for name, entry in workloads.items():
        if not isinstance(entry, dict):
            problems.append(f"workload {name!r} must be an object")
            continue
        for key in _ENTRY_KEYS:
            if key not in entry:
                problems.append(f"workload {name!r} missing {key!r}")
        if not isinstance(entry.get("config"), dict):
            problems.append(f"workload {name!r} config must be an object")
        for key in ("wall_seconds", "log_likelihood"):
            if key in entry and not isinstance(entry[key], (int, float)):
                problems.append(f"workload {name!r} {key!r} must be numeric")
        if isinstance(entry.get("wall_seconds"), (int, float)) \
                and entry["wall_seconds"] < 0:
            problems.append(f"workload {name!r} wall_seconds must be >= 0")

        metrics = entry.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"workload {name!r} metrics must be an object")
        else:
            for key in RESULT_METRICS:
                if not isinstance(metrics.get(key), int):
                    problems.append(
                        f"workload {name!r} metrics missing integer {key!r}")

        derived = entry.get("derived")
        if not isinstance(derived, dict):
            problems.append(f"workload {name!r} derived must be an object")
        else:
            for key in RATE_KEYS:
                value = derived.get(key)
                if not isinstance(value, (int, float)):
                    problems.append(
                        f"workload {name!r} derived missing numeric {key!r}")
                elif not 0.0 <= value <= 1.0:
                    problems.append(
                        f"workload {name!r} derived {key!r}={value} "
                        "outside [0, 1]")
        if "simulated_io_seconds" in entry and not isinstance(
                entry["simulated_io_seconds"], (int, float)):
            problems.append(
                f"workload {name!r} simulated_io_seconds must be numeric")

        latency = entry.get("latency")
        if latency is not None:
            if not isinstance(latency, dict):
                problems.append(f"workload {name!r} latency must be an object")
            else:
                for op in ("read", "write"):
                    summary = latency.get(op)
                    if not isinstance(summary, dict):
                        problems.append(
                            f"workload {name!r} latency.{op} must be an "
                            "object")
                        continue
                    if not isinstance(summary.get("count"), int):
                        problems.append(
                            f"workload {name!r} latency.{op} missing "
                            "integer 'count'")
                    for key in _LATENCY_KEYS[1:]:
                        if not isinstance(summary.get(key), (int, float)):
                            problems.append(
                                f"workload {name!r} latency.{op} missing "
                                f"numeric {key!r}")
    return problems


def compare_results(
    current: dict,
    baseline: dict,
    *,
    time_tolerance: float = 1.0,
    rate_tolerance: float = 0.02,
    counter_tolerance: float = 0.0,
    time_floor: float = 0.25,
) -> tuple[list[str], list[str]]:
    """Compare a fresh result document against a stored baseline.

    Returns ``(regressions, notes)``. Regressions are things that should
    fail CI: a timing figure more than ``time_tolerance`` (relative)
    above baseline *and* more than ``time_floor`` seconds above it
    (sub-second quick runs are dominated by scheduler noise, so the
    deterministic counters and rates are the primary surface), a
    rate more than ``rate_tolerance`` (absolute) above baseline, a
    lower-is-better counter above ``baseline * (1 + counter_tolerance)``,
    or a baseline workload missing from the current run. Improvements
    never regress. Workloads whose recorded config differs (or whose
    request totals differ, meaning the workload shape itself changed)
    are skipped with a note — a resized benchmark is not a regression.
    """
    regressions: list[str] = []
    notes: list[str] = []
    base_problems = validate_results(baseline)
    if base_problems:
        return ([f"baseline invalid: {p}" for p in base_problems], notes)
    cur_problems = validate_results(current)
    if cur_problems:
        return ([f"current results invalid: {p}" for p in cur_problems],
                notes)

    cur_wl, base_wl = current["workloads"], baseline["workloads"]
    for name in sorted(set(base_wl) - set(cur_wl)):
        regressions.append(f"{name}: workload present in baseline but "
                           "missing from current results")
    for name in sorted(set(cur_wl) - set(base_wl)):
        notes.append(f"{name}: new workload, no baseline to compare")

    for name in sorted(set(cur_wl) & set(base_wl)):
        cur, base = cur_wl[name], base_wl[name]
        if cur["config"] != base["config"]:
            notes.append(f"{name}: config changed, comparison skipped")
            continue

        for key in TIME_KEYS:
            if key not in cur or key not in base:
                continue
            c, b = cur[key], base[key]
            if c > b * (1.0 + time_tolerance) and c - b > time_floor:
                regressions.append(
                    f"{name}: {key} regressed {b:.4f}s -> {c:.4f}s "
                    f"(+{(c - b) / b:.0%}, tolerance {time_tolerance:.0%})")

        for key in RATE_KEYS:
            c, b = cur["derived"][key], base["derived"][key]
            if c > b + rate_tolerance:
                regressions.append(
                    f"{name}: {key} regressed {b:.4f} -> {c:.4f} "
                    f"(tolerance +{rate_tolerance})")

        if cur["metrics"]["requests"] != base["metrics"]["requests"]:
            notes.append(
                f"{name}: request totals differ "
                f"({base['metrics']['requests']} -> "
                f"{cur['metrics']['requests']}), counter comparison skipped")
            continue
        for key in LOWER_IS_BETTER_COUNTERS:
            c, b = cur["metrics"][key], base["metrics"][key]
            if c > b * (1.0 + counter_tolerance):
                regressions.append(
                    f"{name}: counter {key} regressed {b} -> {c}")
    return regressions, notes
