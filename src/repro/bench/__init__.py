"""Regression-tracking benchmark runner (``python -m repro.bench``).

Drives one instance of each paper evaluation workload (Fig. 2 / Fig. 3 /
Fig. 5 plus the §4.3 lazy SPR search, over whole-vector and site-block
layouts), emits a versioned ``BENCH_results.json`` and can compare it
against a stored baseline with noise-tolerant thresholds. See
:mod:`repro.bench.runner` for the CLI and :mod:`repro.bench.schema` for
the document layout.
"""

from repro.bench.schema import (
    LOWER_IS_BETTER_COUNTERS,
    RESULT_METRICS,
    RESULTS_SCHEMA,
    compare_results,
    validate_results,
)

__all__ = [
    "LOWER_IS_BETTER_COUNTERS",
    "RESULTS_SCHEMA",
    "RESULT_METRICS",
    "compare_results",
    "validate_results",
]
