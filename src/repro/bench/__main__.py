"""Entry point: ``python -m repro.bench``."""

from repro.bench.runner import main

raise SystemExit(main())
