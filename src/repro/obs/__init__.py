"""Observability for the out-of-core pipeline (always available, default off).

The paper's whole evaluation is counter-driven — miss rate (Fig. 2/4),
read rate (Fig. 3), end-to-end runtime (Fig. 5) — but counters alone
cannot say *where time goes* inside a run. This package adds the missing
substrate:

* :class:`~repro.obs.tracer.Tracer` — a lock-cheap ring buffer of typed
  event records (``perf_counter`` timestamps) emitted from the store, the
  write-behind queue, the prefetcher and the backing stores;
* :class:`~repro.obs.histogram.LogHistogram` /
  :class:`~repro.obs.histogram.BackingProbe` — log-bucketed latency
  histograms for physical backing-store reads/writes and write-behind
  drains;
* per-phase timers (plan / kernel / store-wait) in
  :class:`~repro.phylo.likelihood.engine.LikelihoodEngine`, built on
  :class:`repro.utils.timing.Stopwatch`;
* exporters (:mod:`repro.obs.exporters`) — JSONL event dumps, a
  slot-occupancy timeline and the ``BENCH_profile.json`` summary driven
  by ``python -m repro.profile``;
* :class:`~repro.obs.metrics.MetricsRegistry` — typed counters, gauges
  and histograms over a frozen name catalogue, readable programmatically
  or as Prometheus text via :class:`~repro.obs.server.MetricsServer`
  (``--metrics-port``);
* :class:`~repro.obs.spans.SpanRecorder` — nested begin/end intervals
  across the compute/writeback/prefetch threads, exported as Chrome
  trace-event JSON (``--spans-out``, Perfetto-loadable).

Everything is **passive**: attaching an :class:`Observer` never changes
which slots are allocated, which victims are evicted, or any
:class:`~repro.core.stats.IoStats` counter — the demand counters of a
traced run are bit-identical to the same run untraced (enforced by
``python -m repro.profile --check-parity`` and ``tests/test_obs.py``).
The event taxonomy is kept in sync with the counter registry by
``python -m repro.analysis`` (rules EVT001/EVT002).
"""

from __future__ import annotations

from typing import Any

from repro.obs.exporters import (
    PROFILE_SCHEMA,
    records_to_jsonl,
    slot_timeline,
    validate_profile,
)
from repro.obs.histogram import BackingProbe, LogHistogram
from repro.obs.metrics import METRIC_EXPOSITION, METRIC_NAMES, MetricsRegistry
from repro.obs.server import MetricsServer
from repro.obs.spans import SpanRecord, SpanRecorder
from repro.obs.tracer import EVENT_TYPES, TraceRecord, Tracer
from repro.utils.timing import Stopwatch

#: Engine phase names measured by the per-phase timers.
ENGINE_PHASES = ("plan", "kernel", "store_wait")

__all__ = [
    "ENGINE_PHASES",
    "EVENT_TYPES",
    "METRIC_EXPOSITION",
    "METRIC_NAMES",
    "BackingProbe",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsServer",
    "Observer",
    "PROFILE_SCHEMA",
    "SpanRecord",
    "SpanRecorder",
    "TraceRecord",
    "Tracer",
    "records_to_jsonl",
    "slot_timeline",
    "validate_profile",
]


class Observer:
    """One bundle of tracer + latency histograms + phase timers.

    Build one, :meth:`attach` it to a :class:`LikelihoodEngine` (or call
    the store-level hooks yourself), run the workload, then read
    :attr:`tracer` / :attr:`probe` / :attr:`drain_hist` / :attr:`timers`
    or export everything with :meth:`summary`. Attachment is duck-typed
    so it works through store wrappers (``RecordingStoreProxy`` etc.)
    and degrades gracefully when a component is absent.
    """

    def __init__(self, capacity: int = 1 << 16,
                 metrics: "MetricsRegistry | bool | None" = None,
                 spans: "SpanRecorder | bool | None" = None) -> None:
        self.tracer = Tracer(capacity)
        self.probe = BackingProbe()
        self.drain_hist = LogHistogram()
        self.timers = Stopwatch()
        # metrics / spans are opt-in: pass True to construct a fresh
        # registry/recorder, an existing instance to share one, or leave
        # None/False to keep that subsystem fully off.
        self.metrics: MetricsRegistry | None
        if metrics is True:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = metrics if isinstance(metrics, MetricsRegistry) else None
        self.spans: SpanRecorder | None
        if spans is True:
            self.spans = SpanRecorder()
        else:
            self.spans = spans if isinstance(spans, SpanRecorder) else None

    def attach(self, engine: Any) -> "Observer":
        """Wire this observer into ``engine``'s store / queue / backing."""
        engine.timers = self.timers
        if hasattr(engine, "spans"):
            engine.spans = self.spans
        if hasattr(engine, "metrics"):
            engine.metrics = self.metrics
        store = engine.store
        attach_tracer = getattr(store, "attach_tracer", None)
        if attach_tracer is not None:
            attach_tracer(self.tracer)
        if self.metrics is not None:
            attach_metrics = getattr(store, "attach_metrics", None)
            if attach_metrics is not None:
                attach_metrics(self.metrics)
            self.metrics.register_collector(self._collect_engine)
        backing = getattr(store, "backing", None)
        if backing is not None and hasattr(backing, "probe"):
            backing.probe = self.probe
        if backing is not None and hasattr(backing, "spans"):
            # Cross-process backings (the sharded tier) also take a span
            # recorder: worker spans merge back as per-process tracks.
            backing.spans = self.spans
        writeback = getattr(store, "writeback", None)
        if writeback is not None:
            writeback.drain_hist = self.drain_hist
            writeback.spans = self.spans
        prefetcher = getattr(engine, "prefetcher", None)
        if prefetcher is not None and hasattr(prefetcher, "spans"):
            prefetcher.spans = self.spans
        return self

    def detach(self, engine: Any) -> None:
        """Undo :meth:`attach` (collected data is kept)."""
        engine.timers = None
        if hasattr(engine, "spans"):
            engine.spans = None
        if hasattr(engine, "metrics"):
            engine.metrics = None
        store = engine.store
        attach_tracer = getattr(store, "attach_tracer", None)
        if attach_tracer is not None:
            attach_tracer(None)
        if self.metrics is not None:
            attach_metrics = getattr(store, "attach_metrics", None)
            if attach_metrics is not None:
                attach_metrics(None)
            self.metrics.unregister_collector(self._collect_engine)
        backing = getattr(store, "backing", None)
        if backing is not None and hasattr(backing, "probe"):
            backing.probe = None
        if backing is not None and hasattr(backing, "spans"):
            backing.spans = None
        writeback = getattr(store, "writeback", None)
        if writeback is not None:
            writeback.drain_hist = None
            writeback.spans = None
        prefetcher = getattr(engine, "prefetcher", None)
        if prefetcher is not None and hasattr(prefetcher, "spans"):
            prefetcher.spans = None

    def _collect_engine(self) -> None:
        """Pull collector: engine phase totals + tracer ring accounting.

        Registered with the metrics registry at :meth:`attach`; the
        store's own collector covers the ``IoStats`` counters and slot
        gauges, this one covers what only the observer can see.
        """
        mx = self.metrics
        if mx is None:
            return
        tm = self.timers
        mx.counter_set("phase_plan_seconds", tm.total("plan"))
        mx.counter_set("phase_plan_calls", tm.count("plan"))
        mx.counter_set("phase_kernel_seconds", tm.total("kernel"))
        mx.counter_set("phase_kernel_calls", tm.count("kernel"))
        mx.counter_set("phase_store_wait_seconds", tm.total("store_wait"))
        mx.counter_set("phase_store_wait_calls", tm.count("store_wait"))
        mx.counter_set("trace_events_emitted", self.tracer.emitted)
        mx.counter_set("trace_events_dropped", self.tracer.dropped)

    # -- summaries --------------------------------------------------------------

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """``{phase: {"seconds": s, "calls": n}}`` for the engine phases."""
        return {
            phase: {"seconds": self.timers.total(phase),
                    "calls": self.timers.count(phase)}
            for phase in ENGINE_PHASES
        }

    def histograms(self) -> dict[str, dict[str, Any]]:
        """JSON-ready latency histograms (reads, writes, drains)."""
        return {
            "backing_read": self.probe.read_hist.to_dict(),
            "backing_write": self.probe.write_hist.to_dict(),
            "writeback_drain": self.drain_hist.to_dict(),
        }

    def event_summary(self) -> dict[str, Any]:
        """Emission totals, ring-buffer drop count and per-type counts."""
        return {
            "emitted": self.tracer.emitted,
            "captured": len(self.tracer),
            "dropped": self.tracer.dropped,
            "by_type": self.tracer.by_type(),
        }
