"""Opt-in Prometheus scrape endpoint over the stdlib ``http.server``.

``MetricsServer`` binds a :class:`~repro.obs.metrics.MetricsRegistry` to
``GET /metrics`` on a daemon thread. Nothing in the pipeline starts one
implicitly — it exists only when the profile CLI is given
``--metrics-port`` or a test/driver constructs it — so the default cost
is exactly zero. Scrapes run collectors on the server thread; the
compute/writer/prefetch threads are never blocked by a scrape.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import TracebackType
from typing import Any

from repro.analysis.race import make_thread
from repro.obs.metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves /metrics from the registry attached to the server."""

    server: "MetricsServer"  # narrowed for attribute access

    def do_GET(self) -> None:  # noqa: N802 - http.server API name
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            # Liveness only: no collector runs, no registry traffic — a
            # health check must answer even if a collector wedges.
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if path not in ("/", "/metrics"):
            self.send_error(404, "only /metrics and /healthz are served")
            return
        body = self.server.registry.to_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging."""


class MetricsServer(ThreadingHTTPServer):
    """A daemon-threaded scrape endpoint for one registry.

    ``port=0`` binds an ephemeral port; read the resolved one from
    :attr:`port`. Use as a context manager or call :meth:`start` /
    :meth:`close` explicitly.
    """

    daemon_threads = True

    def __init__(self, registry: MetricsRegistry,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        super().__init__((host, port), _MetricsHandler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (resolved when ``port=0`` was requested)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Begin serving on a daemon thread (idempotent)."""
        if self._thread is None:
            # Tracked under REPRO_SANITIZE=race so scrape-thread collector
            # runs are ordered after everything registered before start().
            self._thread = make_thread(self.serve_forever,
                                       name="metrics-server")
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent).

        The listening socket closes *before* the serve thread is joined:
        a scrape racing shutdown is either already accepted (and served
        by its own daemon handler thread) or refused outright — it can
        never hold the accept loop open past the join deadline.
        """
        thread = self._thread
        self._thread = None
        if thread is not None:
            self.shutdown()
        self.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.close()
