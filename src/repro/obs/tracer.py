"""A lock-cheap structured event tracer (bounded ring of typed records).

Every interesting transition in the out-of-core pipeline — demand
requests, hits, misses, evictions, demand reads, elided reads, prefetch
issues and hits, write-behind staging/drains, and stalls — can emit one
:class:`TraceRecord` into a :class:`Tracer`. Emission is designed to be
cheap enough to leave compiled into the hot path behind a single
``is None`` check:

* the ring is a ``collections.deque(maxlen=capacity)`` — ``append`` is
  a single GIL-atomic operation, so compute, prefetch and writer threads
  emit concurrently without taking any lock;
* records are plain ``NamedTuple`` rows stamped with
  ``time.perf_counter()``;
* **overflow semantics**: when more than ``capacity`` records are
  emitted, the *oldest* records are silently discarded — the ring always
  holds the newest ``capacity`` events. :attr:`Tracer.dropped` reports
  how many were lost. The :attr:`Tracer.emitted` total is maintained
  with an unlocked increment and may undercount by a few events under
  heavy cross-thread contention; that is the price of never stalling
  the I/O pipeline for its own instrumentation.

The event taxonomy is the closed set :data:`EVENT_TYPES`. Its sync with
the :class:`~repro.core.stats.IoStats` counter registry (via
``repro.core.stats.EVENT_COUNTERS``) is enforced by
``python -m repro.analysis`` rules EVT001/EVT002, exactly like the
counter registry itself.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import NamedTuple

from repro.errors import OutOfCoreError

#: The closed event taxonomy. Every ``Tracer.emit`` call site must use one
#: of these literals (analysis rule EVT001), and every entry must have an
#: ``EVENT_COUNTERS`` mapping in ``repro.core.stats`` (rule EVT002).
EVENT_TYPES = frozenset({
    "get",                # demand request entered the store
    "hit",                # request satisfied by a resident (demand-touched) slot
    "miss",               # request required a slot placement (demand semantics)
    "evict",              # a victim left RAM (slot recycled)
    "demand_read",        # demand-charged read (dur > 0 when physically read now)
    "read_skip",          # read elided by the write-only rule (paper §3.4)
    "prefetch_issue",     # physical ahead-of-demand load completed
    "prefetch_hit",       # demand request landed on a prefetched slot
    "writeback_enqueue",  # eviction staged into the write-behind buffer
    "writeback_drain",    # staged vector made durable by a writer thread
    "stall",              # back-pressure block or deferred prefetch
})


class TraceRecord(NamedTuple):
    """One traced event: timestamp, type, subject and duration."""

    ts: float      #: ``time.perf_counter()`` at emission
    etype: str     #: one of :data:`EVENT_TYPES`
    item: int      #: logical vector id (-1 when not applicable)
    slot: int      #: RAM slot id (-1 when not applicable)
    dur: float     #: seconds attributed to the event (0.0 for instants)
    thread: str    #: emitting thread's name


class Tracer:
    """Bounded, thread-tolerant ring buffer of :class:`TraceRecord`.

    Default-off by construction: components hold ``tracer = None`` until
    one is attached, and every emission site is guarded by a single
    ``is None`` test, so an untraced run pays one pointer comparison.
    """

    def __init__(self, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise OutOfCoreError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque[TraceRecord] = deque(maxlen=self.capacity)
        self._emitted = 0

    def emit(self, etype: str, item: int = -1, slot: int = -1,
             dur: float = 0.0) -> None:
        """Append one record; never blocks, never raises on overflow."""
        self._emitted += 1
        self._ring.append(TraceRecord(
            time.perf_counter(), etype, item, slot, dur,
            threading.current_thread().name,
        ))

    # -- inspection -------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total records emitted since construction (or :meth:`clear`)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Records lost to ring overflow (oldest-first discard)."""
        return max(0, self._emitted - len(self._ring))

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> list[TraceRecord]:
        """Snapshot of the retained records, oldest first."""
        return list(self._ring)

    def by_type(self) -> dict[str, int]:
        """Retained-record counts per event type (sorted by type name)."""
        counts = Counter(rec.etype for rec in self._ring)
        return {etype: counts[etype] for etype in sorted(counts)}

    def clear(self) -> None:
        """Drop all records and reset the emission/overflow counters."""
        self._ring.clear()
        self._emitted = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Tracer(capacity={self.capacity}, captured={len(self)}, "
                f"dropped={self.dropped})")
