"""Span timelines: nested begin/end intervals exported as Chrome trace JSON.

Where the :class:`~repro.obs.tracer.Tracer` records point events and the
Stopwatch records per-phase totals, spans keep *intervals with identity*:
which thread was inside which phase when, so kernel/store_wait overlap
with writeback drains and prefetch loads is finally visible on a
timeline. The export target is the Chrome trace-event format (``ph: "X"``
complete events), which loads directly into Perfetto / ``chrome://tracing``.

Recording is lock-cheap by the same argument as the tracer: one
``deque(maxlen=...)`` ring whose ``append`` is GIL-atomic, emit sites pay
one ``is None`` test plus two ``perf_counter()`` calls, and overflow
drops the oldest spans while the ``emitted`` counter keeps honest
accounting. This module must stay importable without :mod:`repro.core`.

Spans carry optional *identity*: a ``span_id`` (allocate one with
:func:`next_span_id`) and a ``parent`` pointing at the span that caused
this one. The sharded backing tier threads these ids through its wire
header, so a shard worker's disk span can name the client-side request
span that triggered it; :meth:`SpanRecorder.to_chrome_trace` turns
cross-process parent links into Chrome flow events (``ph: "s"/"f"``),
and :meth:`SpanRecorder.add_process_track` renders each worker as its
own ``pid`` track (with a per-worker clock offset applied at export).
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, NamedTuple

#: Process-wide span-id allocator. ``next()`` on an ``itertools.count``
#: is GIL-atomic, so concurrent allocations never collide; worker
#: processes allocate from a disjoint (shard-salted) range instead.
_SPAN_IDS = itertools.count(1)


def next_span_id() -> int:
    """A process-unique positive span id (0 means "no identity")."""
    return next(_SPAN_IDS)


class SpanRecord(NamedTuple):
    """One completed interval on one thread."""

    name: str  #: span name, e.g. "kernel", "writeback_drain"
    start: float  #: time.perf_counter() at entry
    dur: float  #: duration in seconds
    thread: str  #: threading.current_thread().name at completion
    args: dict[str, Any] | None  #: optional payload (item ids etc.)
    span_id: int = 0  #: identity for causal linking (0 = anonymous)
    parent: int = 0  #: span_id of the causing span (0 = no parent)


class SpanRecorder:
    """Bounded ring buffer of completed spans.

    Like the tracer: writers never block, the ring evicts oldest-first on
    overflow, and :attr:`dropped` exposes how many spans were lost so an
    exported timeline can never silently pretend to be complete.
    """

    def __init__(self, capacity: int = 1 << 18) -> None:
        if capacity <= 0:
            raise ValueError("SpanRecorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._emitted = 0
        # Extra per-process tracks (e.g. shard workers) merged in at
        # export time: (process name, records, clock offset) where
        # ``offset`` maps the track's clock into this process's
        # perf_counter domain (t_here = t_track - offset).
        self._tracks: list[tuple[str, list[SpanRecord], float]] = []

    # -- recording (any thread) -------------------------------------------------

    def complete(self, name: str, start: float, dur: float,
                 args: dict[str, Any] | None = None, *,
                 span_id: int = 0, parent: int = 0) -> None:
        """Record an interval that just finished (GIL-atomic append)."""
        self._emitted += 1
        self._ring.append(SpanRecord(
            name, start, dur, threading.current_thread().name, args,
            span_id, parent))

    @contextmanager
    def span(self, name: str,
             args: dict[str, Any] | None = None) -> Iterator[None]:
        """Context manager recording the enclosed block as one span."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.complete(name, t0, time.perf_counter() - t0, args)

    # -- accounting --------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total spans recorded, including any since evicted."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Spans lost to ring overflow."""
        return max(0, self._emitted - len(self._ring))

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> list[SpanRecord]:
        """Snapshot of retained spans in completion order."""
        return list(self._ring)

    def by_name(self) -> dict[str, int]:
        """Retained span counts keyed by span name."""
        out: dict[str, int] = {}
        for rec in self._ring:
            out[rec.name] = out.get(rec.name, 0) + 1
        return out

    def clear(self) -> None:
        self._ring.clear()
        self._emitted = 0
        self._tracks.clear()

    # -- merged per-process tracks ----------------------------------------------

    def add_process_track(self, name: str, records: list[SpanRecord],
                          clock_offset: float = 0.0) -> None:
        """Attach a foreign process's spans as a separate export track.

        ``records`` keep their *own* clock; ``clock_offset`` is the
        calibrated offset such that ``t_local = t_track - clock_offset``
        (the sharded tier measures it via the ATTACH handshake timestamp
        exchange). The track appears as its own ``pid`` in
        :meth:`to_chrome_trace`, and any record whose ``parent`` names a
        span in another track becomes a Chrome flow arrow.
        """
        self._tracks.append((name, list(records), float(clock_offset)))

    def tracks(self) -> list[tuple[str, list[SpanRecord], float]]:
        """The attached per-process tracks (name, records, clock offset)."""
        return list(self._tracks)

    # -- export ------------------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """Render retained spans as a Chrome trace-event document.

        Each thread name gets a stable integer ``tid`` (first-appearance
        order) plus a ``thread_name`` metadata record, so Perfetto shows
        one labelled track per thread ("MainThread", "writeback-0",
        "prefetcher", ...). Tracks added via :meth:`add_process_track`
        render as additional processes (``pid`` 2, 3, ...) with their
        clock offsets applied, and every cross-process ``parent`` link
        becomes a flow-event pair (``ph: "s"`` at the parent, ``ph: "f"``
        at the child), so Perfetto draws an arrow from the client-side
        request span into the worker-side disk span it caused.
        Timestamps are microseconds relative to the earliest span.
        """
        # (pid, process name, records already shifted into local clock)
        groups: list[tuple[int, str, list[SpanRecord]]] = [
            (1, "repro out-of-core", self.records())]
        for idx, (name, records, offset) in enumerate(self._tracks):
            shifted = [rec._replace(start=rec.start - offset)
                       for rec in records]
            groups.append((2 + idx, name, shifted))
        t_zero = min((r.start for _pid, _name, recs in groups for r in recs),
                     default=0.0)

        events: list[dict[str, Any]] = []
        meta: list[dict[str, Any]] = []
        # span_id -> (pid, tid, ts_us) of the span that carries it, for
        # resolving cross-process parent links into flow arrows.
        by_id: dict[int, tuple[int, int, float]] = {}
        linked: list[tuple[int, int, float, int]] = []  # (pid, tid, ts, parent)
        for pid, pname, records in groups:
            tids: dict[str, int] = {}
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": pname}})
            for rec in records:
                tid = tids.setdefault(rec.thread, len(tids) + 1)
                ts = round((rec.start - t_zero) * 1e6, 3)
                event: dict[str, Any] = {
                    "name": rec.name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": ts,
                    "dur": round(rec.dur * 1e6, 3),
                }
                args = dict(rec.args) if rec.args else {}
                if rec.span_id:
                    args["span_id"] = rec.span_id
                    by_id[rec.span_id] = (pid, tid, ts)
                if rec.parent:
                    args["parent"] = rec.parent
                    linked.append((pid, tid, ts, rec.parent))
                if args:
                    event["args"] = args
                events.append(event)
            meta.extend({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": thread},
            } for thread, tid in tids.items())
        flow_id = 0
        for pid, tid, ts, parent in linked:
            src = by_id.get(parent)
            if src is None or src[0] == pid:
                continue  # unresolved (ring overflow) or same-process nesting
            flow_id += 1
            events.append({"name": "causal", "cat": "backing", "ph": "s",
                           "pid": src[0], "tid": src[1], "ts": src[2],
                           "id": flow_id})
            events.append({"name": "causal", "cat": "backing", "ph": "f",
                           "bp": "e", "pid": pid, "tid": tid, "ts": ts,
                           "id": flow_id})
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "emitted": self.emitted,
                "dropped": self.dropped,
                "tracks": len(self._tracks),
            },
        }

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")
