"""Span timelines: nested begin/end intervals exported as Chrome trace JSON.

Where the :class:`~repro.obs.tracer.Tracer` records point events and the
Stopwatch records per-phase totals, spans keep *intervals with identity*:
which thread was inside which phase when, so kernel/store_wait overlap
with writeback drains and prefetch loads is finally visible on a
timeline. The export target is the Chrome trace-event format (``ph: "X"``
complete events), which loads directly into Perfetto / ``chrome://tracing``.

Recording is lock-cheap by the same argument as the tracer: one
``deque(maxlen=...)`` ring whose ``append`` is GIL-atomic, emit sites pay
one ``is None`` test plus two ``perf_counter()`` calls, and overflow
drops the oldest spans while the ``emitted`` counter keeps honest
accounting. This module must stay importable without :mod:`repro.core`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, NamedTuple


class SpanRecord(NamedTuple):
    """One completed interval on one thread."""

    name: str  #: span name, e.g. "kernel", "writeback_drain"
    start: float  #: time.perf_counter() at entry
    dur: float  #: duration in seconds
    thread: str  #: threading.current_thread().name at completion
    args: dict[str, Any] | None  #: optional payload (item ids etc.)


class SpanRecorder:
    """Bounded ring buffer of completed spans.

    Like the tracer: writers never block, the ring evicts oldest-first on
    overflow, and :attr:`dropped` exposes how many spans were lost so an
    exported timeline can never silently pretend to be complete.
    """

    def __init__(self, capacity: int = 1 << 18) -> None:
        if capacity <= 0:
            raise ValueError("SpanRecorder capacity must be positive")
        self.capacity = capacity
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._emitted = 0

    # -- recording (any thread) -------------------------------------------------

    def complete(self, name: str, start: float, dur: float,
                 args: dict[str, Any] | None = None) -> None:
        """Record an interval that just finished (GIL-atomic append)."""
        self._emitted += 1
        self._ring.append(SpanRecord(
            name, start, dur, threading.current_thread().name, args))

    @contextmanager
    def span(self, name: str,
             args: dict[str, Any] | None = None) -> Iterator[None]:
        """Context manager recording the enclosed block as one span."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.complete(name, t0, time.perf_counter() - t0, args)

    # -- accounting --------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total spans recorded, including any since evicted."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Spans lost to ring overflow."""
        return max(0, self._emitted - len(self._ring))

    def __len__(self) -> int:
        return len(self._ring)

    def records(self) -> list[SpanRecord]:
        """Snapshot of retained spans in completion order."""
        return list(self._ring)

    def by_name(self) -> dict[str, int]:
        """Retained span counts keyed by span name."""
        out: dict[str, int] = {}
        for rec in self._ring:
            out[rec.name] = out.get(rec.name, 0) + 1
        return out

    def clear(self) -> None:
        self._ring.clear()
        self._emitted = 0

    # -- export ------------------------------------------------------------------

    def to_chrome_trace(self) -> dict[str, Any]:
        """Render retained spans as a Chrome trace-event document.

        Each thread name gets a stable integer ``tid`` (first-appearance
        order) plus a ``thread_name`` metadata record, so Perfetto shows
        one labelled track per thread ("MainThread", "writeback-0",
        "prefetcher", ...). Timestamps are microseconds relative to the
        earliest retained span.
        """
        records = self.records()
        events: list[dict[str, Any]] = []
        tids: dict[str, int] = {}
        t_zero = min((r.start for r in records), default=0.0)
        for rec in records:
            tid = tids.setdefault(rec.thread, len(tids) + 1)
            event: dict[str, Any] = {
                "name": rec.name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": round((rec.start - t_zero) * 1e6, 3),
                "dur": round(rec.dur * 1e6, 3),
            }
            if rec.args:
                event["args"] = rec.args
            events.append(event)
        meta: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 1,
            "args": {"name": "repro out-of-core"},
        }]
        meta.extend({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "args": {"name": thread},
        } for thread, tid in tids.items())
        return {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "emitted": self.emitted,
                "dropped": self.dropped,
            },
        }

    def write_chrome_trace(self, path: str) -> None:
        """Write :meth:`to_chrome_trace` as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
            fh.write("\n")
