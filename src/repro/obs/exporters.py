"""Exporters for traced runs: JSONL dumps, slot timelines, profile schema.

Three consumers of :class:`~repro.obs.tracer.Tracer` output:

* :func:`records_to_jsonl` — the raw event stream, one JSON object per
  line, for ad-hoc analysis with ``jq``/pandas;
* :func:`slot_timeline` — a slot-occupancy Gantt view reconstructed from
  ``miss``/``prefetch_issue``/``evict`` events: which vector occupied
  which slot over which interval;
* :data:`PROFILE_SCHEMA` + :func:`validate_profile` — the versioned
  ``BENCH_profile.json`` document emitted by ``python -m repro.profile``
  and the hand-rolled validator the CI smoke job runs against it (no
  third-party jsonschema dependency).

This module must stay importable without :mod:`repro.core` — it consumes
records and plain dicts only, so ``repro.obs`` never participates in an
import cycle with the store it observes.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

#: Version tag of the ``BENCH_profile.json`` document layout.
#: ``/2`` added the ``metrics`` block (a full registry snapshot) and the
#: counter/registry consistency requirements below. ``/3`` adds the
#: ``attribution`` block: per-op latency percentiles decomposed into
#: pipeline stages (window wait, wire, worker disk, reply) from merged
#: cross-process histograms.
PROFILE_SCHEMA = "repro-profile/3"

#: Top-level keys every profile document must carry.
_REQUIRED_TOP = (
    "schema", "workload", "config", "phases", "counters", "histograms",
    "events", "metrics", "attribution",
)
#: Required sub-keys of each per-phase timing entry.
_PHASE_KEYS = ("seconds", "calls")
#: Required sub-keys of each latency histogram.
_HIST_KEYS = ("unit", "count", "sum", "buckets")
#: Histogram blocks every profile must include.
_HIST_NAMES = ("backing_read", "backing_write", "writeback_drain")
#: Counters the §4 evaluation metrics are computed from; the profile's
#: counter block must contain at least these.
_COUNTER_KEYS = (
    "requests", "hits", "misses", "reads", "read_skips",
    "writes", "write_skips", "bytes_read", "bytes_written",
)
#: Required sub-keys of the event summary block.
_EVENT_KEYS = ("emitted", "captured", "dropped", "by_type")
#: Required sub-keys of the metrics registry snapshot block.
_METRICS_KEYS = ("counters", "gauges", "histograms")
#: Required numeric keys of every attribution stage summary.
_ATTR_SUMMARY_KEYS = ("count", "sum", "p50", "p95", "p99")
#: Per-op entries the attribution block must decompose.
_ATTR_OPS = ("read", "write")


def records_to_jsonl(records: Iterable[Any], path: str) -> int:
    """Write trace records to ``path`` as JSON Lines; returns the row count.

    Accepts any iterable of objects with the :class:`TraceRecord` fields
    (``ts``/``etype``/``item``/``slot``/``dur``/``thread``).
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps({
                "ts": rec.ts,
                "etype": rec.etype,
                "item": rec.item,
                "slot": rec.slot,
                "dur": rec.dur,
                "thread": rec.thread,
            }, separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def slot_timeline(records: Sequence[Any]) -> list[dict[str, Any]]:
    """Reconstruct slot occupancy intervals from a trace.

    A ``miss`` or ``prefetch_issue`` record with a valid slot opens an
    interval (the vector moved into that slot); the matching ``evict``
    closes it. Intervals still open at the end of the trace are closed at
    the last observed timestamp. Returns ``[{"slot", "item", "start",
    "end"}]`` sorted by start time.

    Because the ring buffer drops its *oldest* records on overflow, a
    truncated trace can contain evictions whose opening record was lost;
    those are ignored rather than guessed at.
    """
    open_at: dict[int, tuple[int, float]] = {}  # slot -> (item, start_ts)
    intervals: list[dict[str, Any]] = []
    last_ts = 0.0
    for rec in records:
        last_ts = max(last_ts, rec.ts)
        if rec.slot is None or rec.slot < 0:
            continue
        if rec.etype in ("miss", "prefetch_issue"):
            cur = open_at.get(rec.slot)
            # A demand miss on a prefetched slot re-reports the same
            # occupancy (demand-transparency accounting); keep the
            # original interval rather than splitting it.
            if cur is not None and cur[0] == rec.item:
                continue
            if cur is not None:
                # Opening record of the previous occupant's eviction was
                # dropped by ring overflow — close it here.
                intervals.append({"slot": rec.slot, "item": cur[0],
                                  "start": cur[1], "end": rec.ts})
            open_at[rec.slot] = (rec.item, rec.ts)
        elif rec.etype == "evict":
            cur = open_at.pop(rec.slot, None)
            if cur is not None:
                intervals.append({"slot": rec.slot, "item": cur[0],
                                  "start": cur[1], "end": rec.ts})
    for slot, (item, start) in open_at.items():
        intervals.append({"slot": slot, "item": item,
                          "start": start, "end": last_ts})
    intervals.sort(key=lambda iv: (iv["start"], iv["slot"]))
    return intervals


def _type_name(obj: Any) -> str:
    return type(obj).__name__


def validate_profile(doc: Any) -> list[str]:
    """Validate a ``BENCH_profile.json`` document; returns problem strings.

    An empty list means the document conforms to :data:`PROFILE_SCHEMA`.
    Deliberately hand-rolled: the container must not grow a jsonschema
    dependency for one fixed layout.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {_type_name(doc)}"]
    for key in _REQUIRED_TOP:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if problems:
        return problems
    if doc["schema"] != PROFILE_SCHEMA:
        problems.append(
            f"schema is {doc['schema']!r}, expected {PROFILE_SCHEMA!r}")
    if not isinstance(doc["workload"], str) or not doc["workload"]:
        problems.append("workload must be a non-empty string")
    if not isinstance(doc["config"], dict):
        problems.append("config must be an object")

    phases = doc["phases"]
    if not isinstance(phases, dict) or not phases:
        problems.append("phases must be a non-empty object")
    else:
        for name, entry in phases.items():
            if not isinstance(entry, dict):
                problems.append(f"phase {name!r} must be an object")
                continue
            for key in _PHASE_KEYS:
                if not isinstance(entry.get(key), (int, float)):
                    problems.append(f"phase {name!r} missing numeric {key!r}")

    counters = doc["counters"]
    if not isinstance(counters, dict):
        problems.append("counters must be an object")
    else:
        for key in _COUNTER_KEYS:
            if not isinstance(counters.get(key), int):
                problems.append(f"counters missing integer {key!r}")

    hists = doc["histograms"]
    if not isinstance(hists, dict):
        problems.append("histograms must be an object")
    else:
        for name in _HIST_NAMES:
            hist = hists.get(name)
            if not isinstance(hist, dict):
                problems.append(f"missing histogram {name!r}")
                continue
            for key in _HIST_KEYS:
                if key not in hist:
                    problems.append(f"histogram {name!r} missing {key!r}")
            buckets = hist.get("buckets")
            if not isinstance(buckets, list):
                problems.append(f"histogram {name!r} buckets must be a list")
            else:
                for idx, bucket in enumerate(buckets):
                    if (not isinstance(bucket, dict)
                            or not isinstance(bucket.get("le"), (int, float))
                            or not isinstance(bucket.get("count"), int)):
                        problems.append(
                            f"histogram {name!r} bucket {idx} must be "
                            "{'le': number, 'count': int}")
                        break

    events = doc["events"]
    if not isinstance(events, dict):
        problems.append("events must be an object")
    else:
        for key in _EVENT_KEYS:
            if key not in events:
                problems.append(f"events missing {key!r}")
        by_type = events.get("by_type")
        if by_type is not None and not isinstance(by_type, dict):
            problems.append("events.by_type must be an object")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
    else:
        for key in _METRICS_KEYS:
            if not isinstance(metrics.get(key), dict):
                problems.append(f"metrics missing object {key!r}")
        reg_counters = metrics.get("counters")
        if isinstance(counters, dict) and isinstance(reg_counters, dict):
            # The registry snapshot is collected from the same IoStats the
            # counter block reports: any disagreement on a shared counter
            # means a stale snapshot or a forged document.
            for key in sorted(set(counters) & set(reg_counters)):
                if counters[key] != reg_counters[key]:
                    problems.append(
                        f"counter {key!r} disagrees with the metrics "
                        f"snapshot ({counters[key]} vs {reg_counters[key]})")
        if isinstance(events, dict) and isinstance(reg_counters, dict):
            for ev_key, metric in (("emitted", "trace_events_emitted"),
                                   ("dropped", "trace_events_dropped")):
                have, want = events.get(ev_key), reg_counters.get(metric)
                if (isinstance(have, int) and isinstance(want, int)
                        and have != want):
                    problems.append(
                        f"events.{ev_key} ({have}) disagrees with "
                        f"metrics counter {metric!r} ({want})")

    problems.extend(_validate_attribution(doc["attribution"]))
    return problems


def _summary_problems(where: str, summary: Any) -> list[str]:
    if not isinstance(summary, dict):
        return [f"{where} must be an object"]
    return [f"{where} missing numeric {key!r}"
            for key in _ATTR_SUMMARY_KEYS
            if not isinstance(summary.get(key), (int, float))]


def _validate_attribution(attr: Any) -> list[str]:
    """Validate the ``/3`` latency-attribution block.

    Shape: ``{"backing": str, "window_wait": summary, "ops": {"read"/
    "write": summary + {"stages": {name: summary}}}, "per_shard": obj}``
    where every summary carries count/sum/p50/p95/p99. Stage *names* are
    backing-dependent (a sharded run reports wire/disk/reply; a local
    run reports only disk), so only the shapes are pinned here.
    """
    if not isinstance(attr, dict):
        return [f"attribution must be an object, got {_type_name(attr)}"]
    problems: list[str] = []
    if not isinstance(attr.get("backing"), str) or not attr.get("backing"):
        problems.append("attribution.backing must be a non-empty string")
    problems.extend(_summary_problems("attribution.window_wait",
                                      attr.get("window_wait")))
    ops = attr.get("ops")
    if not isinstance(ops, dict):
        problems.append("attribution.ops must be an object")
        return problems
    for op in _ATTR_OPS:
        entry = ops.get(op)
        if not isinstance(entry, dict):
            problems.append(f"attribution.ops.{op} must be an object")
            continue
        problems.extend(_summary_problems(f"attribution.ops.{op}", entry))
        stages = entry.get("stages")
        if not isinstance(stages, dict):
            problems.append(f"attribution.ops.{op}.stages must be an object")
            continue
        for name, summary in stages.items():
            problems.extend(_summary_problems(
                f"attribution.ops.{op}.stages.{name}", summary))
    if not isinstance(attr.get("per_shard"), dict):
        problems.append("attribution.per_shard must be an object")
    return problems
