"""Log-bucketed latency histograms for physical I/O.

Backing-store transfers span five orders of magnitude (a RAM copy to an
HDD seek), so fixed-width buckets are useless; :class:`LogHistogram`
buckets by powers of two of seconds instead, which keeps the structure a
flat integer array with O(1) insertion and resolves both tails.

:class:`BackingProbe` pairs one read and one write histogram and is the
object backing stores report into (``backing.probe`` attribute, default
``None`` — see :mod:`repro.core.backing`).

Histograms are **mergeable**: :meth:`LogHistogram.state` serialises the
bucket vector to a JSON-ready dict, :meth:`LogHistogram.merge_state`
adds one such state in, and :meth:`LogHistogram.drain_state` atomically
snapshots-and-resets — the primitive the sharded backing tier uses to
ship worker-side latency data across the process boundary without ever
double-counting (each ``OP_TELEMETRY`` pull carries a delta).
"""

from __future__ import annotations

import math
import threading
from typing import Any

from repro.errors import OutOfCoreError


class LogHistogram:
    """Latency histogram with log2 buckets, thread-safe recording.

    Bucket ``i`` covers ``[min_seconds * 2**i, min_seconds * 2**(i+1))``;
    durations below ``min_seconds`` land in bucket 0 and durations beyond
    the top bound land in the last bucket. The defaults span 100 ns to
    ~110 s, comfortably covering a RAM copy through a slow HDD.
    """

    def __init__(self, min_seconds: float = 1e-7, num_buckets: int = 31) -> None:
        if min_seconds <= 0.0:
            raise OutOfCoreError(f"min_seconds must be > 0, got {min_seconds}")
        if num_buckets < 1:
            raise OutOfCoreError(f"need at least one bucket, got {num_buckets}")
        self.min_seconds = float(min_seconds)
        self.num_buckets = int(num_buckets)
        self._counts = [0] * self.num_buckets
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        # Physical I/O is orders of magnitude slower than a lock round
        # trip, so exact (locked) recording is affordable here — unlike
        # the tracer's hot emit path.
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        """Add one observation (negative durations clamp to zero)."""
        seconds = max(0.0, float(seconds))
        if seconds < self.min_seconds:
            idx = 0
        else:
            idx = min(self.num_buckets - 1,
                      int(math.log2(seconds / self.min_seconds)))
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    # -- inspection -------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_seconds(self) -> float:
        return self._sum

    def bucket_bound(self, idx: int) -> float:
        """Exclusive upper bound of bucket ``idx`` in seconds."""
        return self.min_seconds * (2.0 ** (idx + 1))

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-th percentile (0 < q <= 100)."""
        if not 0.0 < q <= 100.0:
            raise OutOfCoreError(f"percentile must be in (0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = math.ceil(self._count * q / 100.0)
            seen = 0
            for idx, n in enumerate(self._counts):
                seen += n
                if seen >= target:
                    return min(self.bucket_bound(idx), self._max)
        return self._max

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary: non-empty buckets plus count/sum/percentiles."""
        with self._lock:
            buckets = [
                {"le": self.bucket_bound(idx), "count": n}
                for idx, n in enumerate(self._counts) if n
            ]
            count, total, peak = self._count, self._sum, self._max
        return {
            "unit": "seconds",
            "count": count,
            "sum": total,
            "max": peak,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(50.0) if count else 0.0,
            "p95": self.percentile(95.0) if count else 0.0,
            "p99": self.percentile(99.0) if count else 0.0,
            "buckets": buckets,
        }

    # -- cross-process merging ---------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Serialisable full state (sparse bucket vector + moments).

        The geometry travels with the counts so :meth:`merge_state` can
        refuse a histogram recorded with different bucket bounds instead
        of silently mis-binning it.
        """
        with self._lock:
            return {
                "min_seconds": self.min_seconds,
                "num_buckets": self.num_buckets,
                "counts": [[idx, n] for idx, n in enumerate(self._counts)
                           if n],
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
            }

    def drain_state(self) -> dict[str, Any]:
        """Atomically :meth:`state` then reset to empty (delta semantics).

        This is what a shard worker answers an ``OP_TELEMETRY`` pull
        with: repeated pulls each carry only the observations since the
        previous one, so the parent-side merge never double-counts.
        """
        with self._lock:
            snap = {
                "min_seconds": self.min_seconds,
                "num_buckets": self.num_buckets,
                "counts": [[idx, n] for idx, n in enumerate(self._counts)
                           if n],
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
            }
            self._counts = [0] * self.num_buckets
            self._count = 0
            self._sum = 0.0
            self._max = 0.0
        return snap

    def merge_state(self, state: dict[str, Any]) -> None:
        """Add a :meth:`state`/:meth:`drain_state` snapshot into this one."""
        if (float(state.get("min_seconds", -1.0)) != self.min_seconds
                or int(state.get("num_buckets", -1)) != self.num_buckets):
            raise OutOfCoreError(
                "cannot merge histograms with different bucket geometry: "
                f"({state.get('min_seconds')}, {state.get('num_buckets')}) "
                f"vs ({self.min_seconds}, {self.num_buckets})")
        with self._lock:
            for idx, n in state.get("counts", []):
                self._counts[int(idx)] += int(n)
            self._count += int(state.get("count", 0))
            self._sum += float(state.get("sum", 0.0))
            self._max = max(self._max, float(state.get("max", 0.0)))


class BackingProbe:
    """Read/write latency histograms + byte totals for a backing store."""

    def __init__(self) -> None:
        self.read_hist = LogHistogram()
        self.write_hist = LogHistogram()
        self.read_bytes = 0
        self.write_bytes = 0

    def record_read(self, seconds: float, nbytes: int) -> None:
        self.read_hist.record(seconds)
        self.read_bytes += int(nbytes)

    def record_write(self, seconds: float, nbytes: int) -> None:
        self.write_hist.record(seconds)
        self.write_bytes += int(nbytes)

    # -- cross-process merging ---------------------------------------------------

    def drain_state(self) -> dict[str, Any]:
        """Snapshot-and-reset both histograms plus the byte totals."""
        read_bytes, self.read_bytes = self.read_bytes, 0
        write_bytes, self.write_bytes = self.write_bytes, 0
        return {
            "read": self.read_hist.drain_state(),
            "write": self.write_hist.drain_state(),
            "read_bytes": read_bytes,
            "write_bytes": write_bytes,
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Add a :meth:`drain_state` snapshot from another probe."""
        self.read_hist.merge_state(state["read"])
        self.write_hist.merge_state(state["write"])
        self.read_bytes += int(state.get("read_bytes", 0))
        self.write_bytes += int(state.get("write_bytes", 0))
