"""A typed metrics registry with a frozen name catalogue (Prometheus-style).

Counters, gauges and histograms for the out-of-core pipeline, mirroring
the counter-registry discipline of :mod:`repro.core.stats`: the set of
legal metric names is the closed catalogue :data:`METRIC_NAMES`, every
name carries a kind and help string in :data:`METRIC_EXPOSITION`, and
``python -m repro.analysis`` (rules MET001/MET002) keeps emit sites, the
catalogue and the ``BENCH_results.json`` schema three-way synced — a
typo'd metric name fails statically *and* at runtime instead of silently
vanishing from every dashboard.

Update model (hybrid push/pull, lock-cheap like the tracer):

* **pull** — components register a *collector* callback
  (:meth:`MetricsRegistry.register_collector`) that copies their
  authoritative state (``IoStats`` counters, slot occupancy, queue depth)
  into the registry at scrape/snapshot time. The hot path pays nothing:
  no per-event registry traffic, and the counters stay bit-identical to
  an uninstrumented run (passivity).
* **push** — genuinely event-shaped observations (physical I/O latency,
  store-wait time) call :meth:`MetricsRegistry.observe` at the emission
  site, guarded by a single ``is None`` test exactly like tracer emits.

Thread-safety follows the single-writer-per-name rule of
:class:`~repro.core.stats.IoStats`: each counter/gauge has one writing
component, values are plain (GIL-atomic) dict slots, and collectors are
serialised under one registry lock at collection time, so concurrent
scrapes observe monotone counters.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.race import make_lock, race_detector
from repro.errors import OutOfCoreError
from repro.obs.histogram import LogHistogram

#: The closed metric catalogue. Every registry update site must use one of
#: these literals (analysis rule MET001); the catalogue, the exposition
#: table below and ``repro.bench.schema.RESULT_METRICS`` stay in sync
#: (rule MET002).
METRIC_NAMES = frozenset({
    # -- counters mirroring the IoStats._counters() registry, one-to-one --
    "requests",
    "hits",
    "misses",
    "reads",
    "read_skips",
    "writes",
    "write_skips",
    "bytes_read",
    "bytes_written",
    "prefetch_reads",
    "prefetch_bytes",
    "prefetch_hits",
    "prefetch_unused",
    "writeback_writes",
    "writeback_bytes",
    "writeback_stalls",
    "writeback_read_hits",
    # -- backing-tier durability/compression (pushed by the wrappers) --
    "backing_retries",
    "backing_faults",
    "compress_bytes_raw",
    "compress_bytes_stored",
    "compress_compactions",
    # -- sharded backing tier (per-shard labelled I/O + restart counter) --
    "backing_reads",
    "backing_writes",
    "backing_bytes_read",
    "backing_bytes_written",
    "shard_restarts",
    # -- sharded-tier cross-process telemetry (PR 10) --
    "shard_telemetry_pulls",
    "shard_inflight",
    "shard_oldest_pending_seconds",
    "shard_window_wait_seconds",
    "shard_wire_seconds",
    "shard_disk_read_seconds",
    "shard_disk_write_seconds",
    "shard_reply_seconds",
    # -- engine phase counters (seconds are monotone totals) --
    "phase_plan_seconds",
    "phase_plan_calls",
    "phase_kernel_seconds",
    "phase_kernel_calls",
    "phase_store_wait_seconds",
    "phase_store_wait_calls",
    # -- tracer ring-buffer accounting --
    "trace_events_emitted",
    "trace_events_dropped",
    # -- live gauges --
    "compress_heap_leaked_bytes",
    "slots_total",
    "slots_occupied",
    "slots_dirty",
    "writeback_queue_depth",
    "loads_inflight",
    "prefetch_untouched",
    # -- latency histograms --
    "backing_read_seconds",
    "backing_write_seconds",
    "writeback_drain_seconds",
    "store_wait_seconds",
})

#: ``name -> (kind, help)`` exposition table: drives the ``# TYPE`` /
#: ``# HELP`` lines of the Prometheus text format. Keys must equal
#: :data:`METRIC_NAMES` and kinds must be valid Prometheus types
#: (analysis rule MET002).
METRIC_EXPOSITION: dict[str, tuple[str, str]] = {
    "requests": ("counter", "Demand get() calls on the vector store"),
    "hits": ("counter", "Requests satisfied from a resident slot"),
    "misses": ("counter", "Requests that required a slot placement"),
    "reads": ("counter", "Demand-charged vector reads"),
    "read_skips": ("counter", "Reads elided by the write-only rule (§3.4)"),
    "writes": ("counter", "Demand write-backs at eviction/flush time"),
    "write_skips": ("counter", "Write-backs elided by clean-eviction tracking"),
    "bytes_read": ("counter", "Bytes demand-read from the backing store"),
    "bytes_written": ("counter", "Bytes written toward the backing store"),
    "prefetch_reads": ("counter", "Physical reads issued ahead of demand"),
    "prefetch_bytes": ("counter", "Bytes physically read ahead of demand"),
    "prefetch_hits": ("counter", "Demand requests served by a prefetched slot"),
    "prefetch_unused": ("counter", "Prefetched vectors never consumed"),
    "writeback_writes": ("counter", "Victims drained by the writer thread(s)"),
    "writeback_bytes": ("counter", "Bytes drained by the writer thread(s)"),
    "writeback_stalls": ("counter", "Evictions blocked on a full staging buffer"),
    "writeback_read_hits": ("counter", "Reads served from the staging buffer"),
    "backing_retries": ("counter", "Backing operations retried after a "
                                   "transient failure"),
    "backing_faults": ("counter", "Faults injected into the backing tier"),
    "compress_bytes_raw": ("counter", "Logical bytes through the compressed "
                                      "backing"),
    "compress_bytes_stored": ("counter", "Physical bytes through the "
                                         "compressed backing"),
    "compress_compactions": ("counter", "Heap compactions run by the "
                                        "compressed backing"),
    "backing_reads": ("counter", "Physical reads completed, by shard"),
    "backing_writes": ("counter", "Physical writes completed, by shard"),
    "backing_bytes_read": ("counter", "Bytes physically read, by shard"),
    "backing_bytes_written": ("counter", "Bytes physically written, by shard"),
    "shard_restarts": ("counter", "Dead shard workers detected and restarted"),
    "shard_telemetry_pulls": ("counter", "OP_TELEMETRY delta pulls completed"),
    "shard_inflight": ("gauge", "Requests in flight to a shard worker, "
                                "by shard"),
    "shard_oldest_pending_seconds": ("gauge", "Age of the oldest pending "
                                              "request, by shard"),
    "shard_window_wait_seconds": ("histogram", "Submit stalls on the bounded "
                                               "in-flight window"),
    "shard_wire_seconds": ("histogram", "Client send to worker dequeue "
                                        "(queueing + wire transfer)"),
    "shard_disk_read_seconds": ("histogram", "Worker-side backing read "
                                             "latency (merged)"),
    "shard_disk_write_seconds": ("histogram", "Worker-side backing write "
                                              "latency (merged)"),
    "shard_reply_seconds": ("histogram", "Worker reply send to client "
                                         "receive (wire + collect)"),
    "phase_plan_seconds": ("counter", "Engine time planning traversals"),
    "phase_plan_calls": ("counter", "Engine plan laps"),
    "phase_kernel_seconds": ("counter", "Engine time in likelihood kernels"),
    "phase_kernel_calls": ("counter", "Engine kernel laps"),
    "phase_store_wait_seconds": ("counter", "Engine time waiting on store.get"),
    "phase_store_wait_calls": ("counter", "Engine store-wait laps"),
    "trace_events_emitted": ("counter", "Trace records emitted to the ring"),
    "trace_events_dropped": ("counter", "Trace records lost to ring overflow"),
    "slots_total": ("gauge", "RAM slot capacity m of the store"),
    "slots_occupied": ("gauge", "Slots currently holding a vector"),
    "slots_dirty": ("gauge", "Occupied slots with unpersisted modifications"),
    "writeback_queue_depth": ("gauge", "Items staged but not yet durable"),
    "compress_heap_leaked_bytes": ("gauge", "Heap capacity stranded by "
                                           "grow-rewrites, reclaimable by "
                                           "compact()"),
    "loads_inflight": ("gauge", "Slot loads (demand or prefetch) in flight"),
    "prefetch_untouched": ("gauge", "Prefetched residents awaiting first use"),
    "backing_read_seconds": ("histogram", "Physical backing-store read latency"),
    "backing_write_seconds": ("histogram", "Physical backing-store write latency"),
    "writeback_drain_seconds": ("histogram", "Write-behind drain latency"),
    "store_wait_seconds": ("histogram", "Compute-thread wait per store.get"),
}

#: Counters carrying a label set instead of one scalar series. They are
#: updated through :meth:`MetricsRegistry.inc_labeled` only; the plain
#: :meth:`~MetricsRegistry.inc`/:meth:`~MetricsRegistry.counter_set` API
#: rejects them so an unlabelled zero sample can never shadow the
#: per-label series. Summing a labelled counter over its labels must
#: reproduce the unsharded total (the bench cross-check enforces this).
LABELED_COUNTERS = frozenset({
    "backing_reads",
    "backing_writes",
    "backing_bytes_read",
    "backing_bytes_written",
})

#: Gauges carrying a label set instead of one scalar series, updated via
#: :meth:`MetricsRegistry.gauge_set_labeled` only (same shadowing
#: argument as :data:`LABELED_COUNTERS`). Unlike labelled counters these
#: are live values, so the exposition renders every label set as its own
#: sample and :meth:`MetricsRegistry.value` sums them (total in-flight
#: across shards is the number the admission story cares about).
LABELED_GAUGES = frozenset({
    "shard_inflight",
    "shard_oldest_pending_seconds",
})

#: Prefix prepended to every metric name in the text exposition.
PROM_PREFIX = "repro_"


def _label_key(labels: dict[str, str]) -> str:
    """Canonical Prometheus label rendering, e.g. ``shard="3"``."""
    return ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))


def _fmt(value: float) -> str:
    """Prometheus sample value: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class MetricsRegistry:
    """One process-local registry over the frozen catalogue.

    Build one, hand it to :meth:`repro.obs.Observer` (``metrics=True``) or
    attach it directly via ``store.attach_metrics(registry)``, then read
    it programmatically (:meth:`snapshot`, :meth:`value`) or serve it over
    HTTP (:class:`repro.obs.server.MetricsServer`). Default off
    everywhere: components hold ``metrics = None`` until attached, and
    every push site is a single ``is None`` test.
    """

    def __init__(self) -> None:
        self._kinds = {name: kind for name, (kind, _) in
                       METRIC_EXPOSITION.items()}
        self._counters: dict[str, int | float] = {
            name: 0 for name, kind in self._kinds.items()
            if kind == "counter" and name not in LABELED_COUNTERS}
        # Labelled counter series: name -> {rendered label set -> value}.
        # Update discipline matches the scalar slots: one writing
        # component per (name, label) pair (e.g. the shard-s receiver
        # thread owns every {shard="s"} series), values are GIL-atomic
        # dict slots.
        self._labeled: dict[str, dict[str, int | float]] = {
            name: {} for name in LABELED_COUNTERS}
        self._labeled_gauges: dict[str, dict[str, int | float]] = {
            name: {} for name in LABELED_GAUGES}
        self._gauges: dict[str, int | float] = {
            name: 0 for name, kind in self._kinds.items()
            if kind == "gauge" and name not in LABELED_GAUGES}
        self._hists: dict[str, LogHistogram] = {
            name: LogHistogram() for name, kind in self._kinds.items()
            if kind == "histogram"}
        self._collectors: list[Callable[[], None]] = []  # guarded-by: _collect_lock
        # Serialises collector callbacks (scrape-time only); push-side
        # updates stay lock-free under the single-writer-per-name rule
        # (plain GIL-atomic dict-slot stores — deliberately outside the
        # race sanitizer's scope, see the module docstring).
        self._collect_lock = make_lock("MetricsRegistry")
        self._race = race_detector()
        self._race_scope = ("" if self._race is None
                            else self._race.new_scope("MetricsRegistry"))

    # -- catalogue validation ---------------------------------------------------

    def _check(self, name: str, kind: str, *, labeled: bool = False) -> None:
        found = self._kinds.get(name)
        if found is None:
            raise OutOfCoreError(
                f"unknown metric {name!r}: not in the METRIC_NAMES catalogue")
        if found != kind:
            raise OutOfCoreError(
                f"metric {name!r} is a {found}, not a {kind}")
        is_labeled = name in LABELED_COUNTERS or name in LABELED_GAUGES
        if labeled != is_labeled:
            if found == "gauge":
                want = "gauge_set_labeled" if is_labeled else "gauge_set"
            else:
                want = "inc_labeled" if is_labeled else "inc"
            raise OutOfCoreError(
                f"metric {name!r} must be updated via {want}()")

    # -- update API (single writer per name) ------------------------------------

    def inc(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` (default 1) to a counter."""
        self._check(name, "counter")
        self._counters[name] += n

    def inc_labeled(self, name: str, labels: dict[str, str],
                    n: int | float = 1) -> None:
        """Add ``n`` to one label set of a labelled counter."""
        self._check(name, "counter", labeled=True)
        series = self._labeled[name]
        key = _label_key(labels)
        series[key] = series.get(key, 0) + n

    def counter_set(self, name: str, value: int | float) -> None:
        """Set a counter to an absolute value (collector use: the caller
        derives ``value`` from a monotone source such as ``IoStats``)."""
        self._check(name, "counter")
        self._counters[name] = value

    def gauge_set(self, name: str, value: int | float) -> None:
        self._check(name, "gauge")
        self._gauges[name] = value

    def gauge_add(self, name: str, delta: int | float) -> None:
        self._check(name, "gauge")
        self._gauges[name] += delta

    def gauge_set_labeled(self, name: str, labels: dict[str, str],
                          value: int | float) -> None:
        """Set one label set of a labelled gauge (e.g. per-shard depth)."""
        self._check(name, "gauge", labeled=True)
        self._labeled_gauges[name][_label_key(labels)] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one observation into a histogram metric."""
        self._check(name, "histogram")
        self._hists[name].record(seconds)

    def merge_histogram(self, name: str, state: dict[str, Any]) -> None:
        """Merge a serialised :meth:`LogHistogram.state` delta into a
        histogram metric — the sink for worker-side latency shipped over
        ``OP_TELEMETRY``."""
        self._check(name, "histogram")
        self._hists[name].merge_state(state)

    # -- collectors (pull side) -------------------------------------------------

    def register_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback run at every :meth:`collect` (idempotent)."""
        rc = self._race
        with self._collect_lock:
            if rc is not None:
                rc.write(self._race_scope, "_collectors")
            if fn not in self._collectors:
                self._collectors.append(fn)

    def unregister_collector(self, fn: Callable[[], None]) -> None:
        """Remove a collector previously registered (missing is a no-op)."""
        rc = self._race
        with self._collect_lock:
            if rc is not None:
                rc.write(self._race_scope, "_collectors")
            if fn in self._collectors:
                self._collectors.remove(fn)

    def collect(self) -> None:
        """Run every registered collector (serialised; scrape-time only)."""
        rc = self._race
        with self._collect_lock:
            if rc is not None:
                rc.read(self._race_scope, "_collectors")
            for fn in list(self._collectors):
                fn()

    # -- read API ----------------------------------------------------------------

    def value(self, name: str) -> int | float:
        """Current value of a counter or gauge (histograms: use snapshot).

        Runs the registered pull collectors first, like :meth:`snapshot`,
        so the answer reflects the live authoritative state.
        """
        self.collect()
        kind = self._kinds.get(name)
        if kind == "counter":
            if name in LABELED_COUNTERS:
                return sum(self._labeled[name].values())
            return self._counters[name]
        if kind == "gauge":
            if name in LABELED_GAUGES:
                return sum(self._labeled_gauges[name].values())
            return self._gauges[name]
        if kind == "histogram":
            raise OutOfCoreError(
                f"metric {name!r} is a histogram; read it via snapshot()")
        raise OutOfCoreError(
            f"unknown metric {name!r}: not in the METRIC_NAMES catalogue")

    def labeled(self, name: str) -> dict[str, int | float]:
        """All label sets of a labelled metric: ``{'shard="0"': value}``."""
        if name in LABELED_GAUGES:
            self._check(name, "gauge", labeled=True)
            return dict(self._labeled_gauges[name])
        self._check(name, "counter", labeled=True)
        return dict(self._labeled[name])

    def labeled_sum(self, name: str) -> int | float:
        """Sum of a labelled counter over every label set.

        This is the aggregation the bench cross-check compares against
        the store-level ``IoStats`` physical totals: the per-shard
        decomposition must account for exactly the unsharded traffic.
        """
        self._check(name, "counter", labeled=True)
        return sum(self._labeled[name].values())

    def snapshot(self) -> dict[str, Any]:
        """Collect, then return counters/gauges/histograms/labeled maps."""
        self.collect()
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {k: self._hists[k].to_dict()
                           for k in sorted(self._hists)},
            # Labelled counters and labelled gauges share the map; the
            # name sets are disjoint by construction.
            "labeled": {
                **{k: dict(sorted(self._labeled[k].items()))
                   for k in sorted(self._labeled)},
                **{k: dict(sorted(self._labeled_gauges[k].items()))
                   for k in sorted(self._labeled_gauges)},
            },
        }

    def to_prometheus(self) -> str:
        """Collect, then render the text exposition format (version 0.0.4)."""
        self.collect()
        lines: list[str] = []
        for name in sorted(METRIC_EXPOSITION):
            kind, help_text = METRIC_EXPOSITION[name]
            full = PROM_PREFIX + name
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            if kind == "counter" and name in LABELED_COUNTERS:
                for key in sorted(self._labeled[name]):
                    lines.append(
                        f"{full}{{{key}}} {_fmt(self._labeled[name][key])}")
            elif kind == "counter":
                lines.append(f"{full} {_fmt(self._counters[name])}")
            elif kind == "gauge" and name in LABELED_GAUGES:
                for key in sorted(self._labeled_gauges[name]):
                    lines.append(f"{full}{{{key}}} "
                                 f"{_fmt(self._labeled_gauges[name][key])}")
            elif kind == "gauge":
                lines.append(f"{full} {_fmt(self._gauges[name])}")
            else:
                hist = self._hists[name].to_dict()
                cumulative = 0
                for bucket in hist["buckets"]:
                    cumulative += bucket["count"]
                    lines.append(f'{full}_bucket{{le="{bucket["le"]:g}"}} '
                                 f"{cumulative}")
                lines.append(f'{full}_bucket{{le="+Inf"}} {hist["count"]}')
                lines.append(f"{full}_sum {_fmt(hist['sum'])}")
                lines.append(f"{full}_count {hist['count']}")
        return "\n".join(lines) + "\n"
