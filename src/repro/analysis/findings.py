"""Finding records and the rule registry shared by all checkers."""

from __future__ import annotations

from dataclasses import dataclass

#: Rule id -> one-line description (shown by ``--list-rules``).
RULES: dict[str, str] = {
    "LOCK001": "guarded field accessed outside its declared lock",
    "LOCK002": "'# lockfree-ok' suppression without a reason",
    "CNT001": "IoStats counter mutation not present in the _counters() registry",
    "CNT002": "stats registry / dataclass / reset() / taxonomy mismatch",
    "CNT003": "demand-side counter mutated on a writer/prefetch thread path",
    "EVT001": "emit() call site uses an event type missing from EVENT_TYPES",
    "EVT002": "EVENT_TYPES / EVENT_COUNTERS / counter registry out of sync",
    "MET001": "registry call site uses a metric name missing from METRIC_NAMES",
    "MET002": "METRIC_NAMES / METRIC_EXPOSITION / RESULT_METRICS out of sync",
    "LEAK001": "public method returns a raw _slots buffer view (no copy/pin)",
    "DET001": "stdlib 'random' used in deterministic scope",
    "DET002": "unseeded numpy RNG in deterministic scope",
    "DET003": "time.time() in deterministic scope",
    "SUP001": "'# analysis: ignore[...]' suppression malformed",
    "LOK101": "lock-acquisition cycle (potential deadlock)",
    "LOK102": "lock acquired inside a BatchedSchedule kernel compute callback",
    "RACE001": "write-write data race (accesses unordered by happens-before)",
    "RACE002": "read-write data race (accesses unordered by happens-before)",
}

#: Rules emitted by the runtime happens-before sanitizer
#: (:mod:`repro.analysis.race`) rather than a static checker — they have
#: no ``# expect`` fixture corpus and are exercised by ``test_race.py``.
RUNTIME_RULES = frozenset({"RACE001", "RACE002"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"
