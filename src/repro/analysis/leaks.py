"""LEAK001: public methods must not hand out raw slot-buffer views.

A slot buffer (``self._slots``) is recycled on eviction: a raw ndarray view
of it silently starts aliasing a *different* vector once the slot turns
over. The only sanctioned ways out of a slot-arena class are

* ``get()``'s pin-protected (and, under ``REPRO_SANITIZE=1``,
  borrow-tracked) view, issued by private helpers, and
* an explicit ``.copy()`` (e.g. ``read_item``).

This checker flags any ``return`` in a *public* method of a class owning a
``_slots`` arena whose value contains a ``_slots`` subscript (or the bare
arena) not immediately followed by ``.copy()``.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

ARENA_ATTR = "_slots"

#: Scalar metadata attributes — reading these leaks no buffer memory.
SCALAR_ATTRS = frozenset({"nbytes", "shape", "size", "dtype", "itemsize",
                          "ndim", "flags"})


def _owns_arena(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for stmt in ast.walk(item):
                if isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if (isinstance(tgt, ast.Attribute)
                                and tgt.attr == ARENA_ATTR
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id == "self"):
                            return True
    return False


def _parents(root: ast.expr) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_copied(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` is the receiver of an immediate ``.copy()`` call."""
    parent = parents.get(node)
    if not (isinstance(parent, ast.Attribute) and parent.attr == "copy"):
        return False
    grandparent = parents.get(parent)
    return isinstance(grandparent, ast.Call) and grandparent.func is parent


def _leaks_in_return(ret: ast.Return) -> list[int]:
    if ret.value is None:
        return []
    parents = _parents(ret.value)
    lines: list[int] = []
    for node in ast.walk(ret.value):
        if not (isinstance(node, ast.Attribute) and node.attr == ARENA_ATTR):
            continue
        parent = parents.get(node)
        if isinstance(parent, ast.Subscript) and parent.value is node:
            if not _is_copied(parent, parents):
                lines.append(node.lineno)
        elif (isinstance(parent, ast.Attribute) and parent.value is node
                and parent.attr in SCALAR_ATTRS):
            continue
        elif not _is_copied(node, parents):
            lines.append(node.lineno)
    return lines


def check_leaks(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        for cls in ast.walk(sf.tree):
            if not (isinstance(cls, ast.ClassDef) and _owns_arena(cls)):
                continue
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name.startswith("_"):
                    continue  # private helpers form the pin/borrow API
                for stmt in ast.walk(method):
                    if not isinstance(stmt, ast.Return):
                        continue
                    for line in _leaks_in_return(stmt):
                        findings.append(Finding(
                            str(sf.path), line, "LEAK001",
                            f"public method {cls.name}.{method.name} returns a "
                            f"raw {ARENA_ATTR} buffer view; return a .copy() or "
                            f"route through the pin/borrow API",
                        ))
    return findings
