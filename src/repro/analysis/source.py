"""Parsed source files: AST plus the comment annotations the checkers read.

``ast`` discards comments, so annotations like ``# guarded-by: _lock`` are
recovered with :mod:`tokenize` and exposed as a ``line -> comment`` map.
All annotation grammars live here so every checker parses them the same
way:

``# guarded-by: <lock>``
    On a ``self.<field> = ...`` line in ``__init__``: declares the field
    protected by ``<lock>`` (an attribute name, e.g. ``_lock``).
``# holds: <lock>``
    On a ``def`` line: the whole function body runs with ``<lock>`` held
    (documented caller contract), so guarded accesses inside it are legal.
``# thread: writer|prefetch|kernel``
    On a ``def`` line: the function is an entry point of that background
    thread population. The counter checker roots its reachability walk
    at ``writer``/``prefetch``; the lock-order checker (LOK102) forbids
    raw lock acquisition inside ``kernel`` compute callbacks.
``# lockfree-ok: <reason>``
    Suppresses LOCK001 on this line; the reason is mandatory.
``# analysis: ignore[RULE1,RULE2] <reason>``
    Generic suppression for any rule on this line; reason mandatory.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z_]\w*)")
THREAD_RE = re.compile(r"#\s*thread:\s*(writer|prefetch|kernel)\b")
LOCKFREE_RE = re.compile(r"#\s*lockfree-ok:?(.*)$")
IGNORE_RE = re.compile(r"#\s*analysis:\s*ignore\[([^\]]*)\](.*)$")


@dataclass
class SourceFile:
    """One parsed module: path, AST and per-line comments."""

    path: Path
    text: str
    tree: ast.Module
    comments: dict[int, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        comments: dict[int, str] = {}
        # TokenError cannot normally happen here (ast.parse raised first),
        # so any truncated tail just ends the comment scan early.
        with contextlib.suppress(tokenize.TokenError):
            for tok in tokenize.generate_tokens(io.StringIO(text).readline):
                if tok.type == tokenize.COMMENT:
                    comments[tok.start[0]] = tok.string
        return cls(path=path, text=text, tree=tree, comments=comments)

    # -- annotation accessors ---------------------------------------------------

    def guarded_by(self, line: int) -> str | None:
        m = GUARDED_RE.search(self.comments.get(line, ""))
        return m.group(1) if m else None

    def holds(self, line: int) -> str | None:
        m = HOLDS_RE.search(self.comments.get(line, ""))
        return m.group(1) if m else None

    def thread_role(self, line: int) -> str | None:
        m = THREAD_RE.search(self.comments.get(line, ""))
        return m.group(1) if m else None

    def lockfree_reason(self, line: int) -> str | None:
        """Reason text of a ``# lockfree-ok`` on this line (``None`` if absent)."""
        m = LOCKFREE_RE.search(self.comments.get(line, ""))
        return m.group(1).strip() if m else None

    def ignore_directive(self, line: int) -> tuple[list[str], str] | None:
        """``(rule_ids, reason)`` of a ``# analysis: ignore[...]`` directive."""
        m = IGNORE_RE.search(self.comments.get(line, ""))
        if m is None:
            return None
        rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
        return rules, m.group(2).strip()


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
