"""File collection, checker orchestration and suppression handling."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.analysis.counters import check_counters
from repro.analysis.determinism import check_determinism
from repro.analysis.events import check_events
from repro.analysis.findings import RULES, Finding
from repro.analysis.leaks import check_leaks
from repro.analysis.lockorder import check_lockorder
from repro.analysis.locks import check_locks
from repro.analysis.metrics import check_metrics
from repro.analysis.source import SourceFile
from repro.analysis.typeinfo import ClassIndex


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return out


def analyze_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Run every checker over ``paths``; returns unsuppressed findings."""
    files = [SourceFile.load(p) for p in collect_files(paths)]
    index = ClassIndex.build([(str(sf.path), sf.tree) for sf in files])

    findings: list[Finding] = []
    findings.extend(check_locks(files, index))
    findings.extend(check_lockorder(files, index))
    findings.extend(check_counters(files, index))
    findings.extend(check_events(files))
    findings.extend(check_metrics(files))
    findings.extend(check_leaks(files))
    findings.extend(check_determinism(files))

    findings = _apply_suppressions(files, findings)
    findings.extend(_suppression_hygiene(files))
    return sorted(set(findings))


def _apply_suppressions(files: list[SourceFile],
                        findings: list[Finding]) -> list[Finding]:
    by_path = {str(sf.path): sf for sf in files}
    kept: list[Finding] = []
    for f in findings:
        sf = by_path.get(f.path)
        if sf is not None and _is_suppressed(sf, f):
            continue
        kept.append(f)
    return kept


def _is_suppressed(sf: SourceFile, finding: Finding) -> bool:
    if finding.rule == "LOCK001":
        reason = sf.lockfree_reason(finding.line)
        if reason:  # an empty reason does NOT suppress (and raises LOCK002)
            return True
    directive = sf.ignore_directive(finding.line)
    if directive is not None:
        rules, reason = directive
        if reason and finding.rule in rules:
            return True
    return False


def _suppression_hygiene(files: list[SourceFile]) -> list[Finding]:
    """Reasonless or malformed suppressions are findings themselves."""
    findings: list[Finding] = []
    for sf in files:
        for line in sorted(sf.comments):
            reason = sf.lockfree_reason(line)
            if reason is not None and not reason:
                findings.append(Finding(
                    str(sf.path), line, "LOCK002",
                    "'# lockfree-ok' needs a reason: "
                    "'# lockfree-ok: <why this is safe unlocked>'",
                ))
            directive = sf.ignore_directive(line)
            if directive is None:
                continue
            rules, why = directive
            unknown = [r for r in rules if r not in RULES]
            if not rules or not why or unknown:
                detail = (f"unknown rule id(s) {unknown}" if unknown
                          else "rule list and reason are both required")
                findings.append(Finding(
                    str(sf.path), line, "SUP001",
                    f"malformed '# analysis: ignore[...]' suppression: {detail}",
                ))
    return findings
