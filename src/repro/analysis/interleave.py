"""Deterministic schedule-interleaving fuzzer for the threaded suites.

A race the happens-before detector *could* catch still needs the racy
code paths to actually run concurrently; with CPython's default 5 ms
switch interval a short test often runs each thread to completion in
turn and never overlaps them. :class:`InterleaveFuzzer` perturbs the
schedule two ways:

* ``sys.setswitchinterval`` is dropped to microseconds so the bytecode
  scheduler preempts aggressively, and
* every sanitizer hook point (tracked-lock acquire, instrumented
  read/write) becomes a *checkpoint* that, with probability
  ``yield_prob``, sleeps for a tiny pseudo-random duration — releasing
  the GIL at exactly the boundaries where interleavings differ.

Determinism
-----------
Each thread draws from its own ``random.Random`` seeded with
``crc32(f"{seed}:{thread name}")`` — *not* ``hash()``, which is salted
per process. A thread that executes the same checkpoint sequence
therefore makes the identical yield decisions on every run with the
same seed, and :meth:`decision_trace` exposes those decisions so tests
can assert bit-reproducibility. The detector's verdicts are timing
independent (unordered accesses are flagged in any execution order), so
"same seed → same findings" holds even though the OS-level schedule is
not literally replayed.

The fuzzer only has observable effect when the race sanitizer is active
(its checkpoints live at sanitizer hook points); the switch-interval
perturbation applies regardless. Activate in tests via
``REPRO_FUZZ_SEED=<n>`` (see ``tests/conftest.py``) or programmatically
with :meth:`install`/:meth:`uninstall`.
"""

from __future__ import annotations

import random
import sys
import threading
import time
import zlib

from repro.analysis import race
from repro.errors import OutOfCoreError

__all__ = ["InterleaveFuzzer"]

#: Decisions kept verbatim per thread for reproducibility assertions;
#: beyond this only the running totals are tracked (stress tests hit
#: hundreds of thousands of checkpoints).
_TRACE_CAP = 4096


class _ThreadTrace:
    __slots__ = ("rng", "decisions", "total", "yields")

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.decisions: list[int] = []
        self.total = 0
        self.yields = 0


class InterleaveFuzzer:
    """Seeded schedule perturbation at sanitizer checkpoints."""

    def __init__(self, seed: int, *, yield_prob: float = 0.25,
                 max_sleep: float = 2e-5,
                 switch_interval: float = 1e-5) -> None:
        if not 0.0 <= yield_prob <= 1.0:
            raise OutOfCoreError(
                f"yield_prob must be in [0, 1], got {yield_prob}")
        if max_sleep < 0.0 or switch_interval <= 0.0:
            raise OutOfCoreError(
                "max_sleep must be >= 0 and switch_interval > 0, got "
                f"{max_sleep}/{switch_interval}")
        self.seed = int(seed)
        self.yield_prob = float(yield_prob)
        self.max_sleep = float(max_sleep)
        self.switch_interval = float(switch_interval)
        self._tls = threading.local()
        self._mutex = threading.Lock()
        self._traces: dict[str, _ThreadTrace] = {}
        self._saved_interval: float | None = None
        self._installed = False

    # -- lifecycle --------------------------------------------------------------

    def install(self) -> "InterleaveFuzzer":
        """Become the process-wide checkpoint hook and shrink the
        bytecode switch interval. Idempotent per instance."""
        if not self._installed:
            self._saved_interval = sys.getswitchinterval()
            sys.setswitchinterval(self.switch_interval)
            race._set_checkpoint(self.checkpoint)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            race._set_checkpoint(None)
            if self._saved_interval is not None:
                sys.setswitchinterval(self._saved_interval)
            self._installed = False

    def __enter__(self) -> "InterleaveFuzzer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # -- the hook ---------------------------------------------------------------

    def _bind(self) -> _ThreadTrace:
        name = threading.current_thread().name
        key = f"{self.seed}:{name}".encode()
        trace = _ThreadTrace(random.Random(zlib.crc32(key)))
        self._tls.trace = trace
        with self._mutex:
            # Last binding wins if a test reuses a thread name; names
            # chosen by the core ("writeback-0", "prefetcher", ...) are
            # stable per component instance.
            self._traces[name] = trace
        return trace

    def checkpoint(self) -> None:
        """Maybe yield. Called from sanitizer hook points; decisions are
        a pure function of (seed, thread name, checkpoint index)."""
        trace: _ThreadTrace | None = getattr(self._tls, "trace", None)
        if trace is None:
            trace = self._bind()
        trace.total += 1
        if trace.rng.random() < self.yield_prob:
            trace.yields += 1
            if len(trace.decisions) < _TRACE_CAP:
                trace.decisions.append(1)
            time.sleep(trace.rng.random() * self.max_sleep)
        else:
            if len(trace.decisions) < _TRACE_CAP:
                trace.decisions.append(0)

    # -- inspection -------------------------------------------------------------

    def decision_trace(self) -> dict[str, tuple[int, int, tuple[int, ...]]]:
        """Per thread name: ``(checkpoints, yields, first decisions)``.

        Two runs with the same seed and the same per-thread checkpoint
        counts produce identical traces — the reproducibility contract
        the fuzzer tests assert.
        """
        with self._mutex:
            return {
                name: (t.total, t.yields, tuple(t.decisions))
                for name, t in self._traces.items()
            }
