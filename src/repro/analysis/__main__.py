"""CLI: ``python -m repro.analysis [paths...]``.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors. Findings print as ``path:line: RULE message`` (one per line), so
editors and CI annotators can parse them.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.findings import RULES
from repro.analysis.runner import analyze_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Invariant checkers for the out-of-core concurrency layer "
                    "(lock discipline, counter registry, slot-view leaks, "
                    "determinism).",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    try:
        findings = analyze_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro.analysis: cannot parse: {exc}", file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.format())
    if findings:
        print(f"repro.analysis: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("repro.analysis: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
