"""DET001/002/003: reproducibility hygiene for the deterministic scope.

The §4.1 contract ("bit-identical for every policy and every ``m >= 3``")
only holds if the numerics consume no hidden entropy and no wall-clock
values. Inside the deterministic scope — files under a ``core`` or
``phylo`` directory, excluding ``utils`` — this checker bans:

* ``DET001`` — the stdlib ``random`` module (import or call): stochastic
  components must take an explicit seed via :func:`repro.utils.rng.as_rng`;
* ``DET002`` — ``np.random.default_rng()`` without an explicit non-``None``
  seed, and legacy global-state ``np.random.*`` calls (``rand``, ``seed``,
  ``shuffle``, ...), whose hidden global stream makes runs order-dependent;
* ``DET003`` — ``time.time()``: timing belongs in ``repro.utils.timing``,
  simulation time in the disk model.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile, attribute_chain

#: Legacy numpy global-RNG entry points (operate on hidden shared state).
NP_GLOBAL_RNG = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "seed", "normal", "uniform",
    "standard_normal", "beta", "binomial", "poisson", "exponential", "gamma",
    "multinomial",
})


def in_deterministic_scope(path_parts: tuple[str, ...]) -> bool:
    if "utils" in path_parts:
        return False
    return "core" in path_parts or "phylo" in path_parts


class _Imports:
    """Module aliases relevant to the determinism rules."""

    def __init__(self, tree: ast.Module) -> None:
        self.numpy_aliases: set[str] = set()
        self.random_aliases: set[str] = set()
        self.from_numpy_random: dict[str, str] = {}  # local name -> original
        self.import_lines: list[tuple[int, str]] = []  # stdlib-random imports
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if alias.name == "numpy":
                        self.numpy_aliases.add(local)
                    elif alias.name == "random":
                        self.random_aliases.add(local)
                        self.import_lines.append((node.lineno, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    self.import_lines.append((node.lineno, "random"))
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if node.module == "numpy.random" or alias.name == "random":
                            self.from_numpy_random[alias.asname or alias.name] = \
                                alias.name


def _is_unseeded(call: ast.Call) -> bool:
    seeded = False
    if call.args:
        first = call.args[0]
        seeded = not (isinstance(first, ast.Constant) and first.value is None)
    for kw in call.keywords:
        if kw.arg == "seed":
            seeded = not (isinstance(kw.value, ast.Constant)
                          and kw.value.value is None)
    return not seeded


def check_determinism(files: list[SourceFile]) -> list[Finding]:
    findings: list[Finding] = []
    for sf in files:
        if not in_deterministic_scope(sf.path.parts):
            continue
        imports = _Imports(sf.tree)
        for line, _mod in imports.import_lines:
            findings.append(Finding(
                str(sf.path), line, "DET001",
                "stdlib 'random' imported in deterministic scope; use "
                "repro.utils.rng.as_rng(seed) instead",
            ))
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            findings.extend(_check_call(sf, node, chain, imports))
    return findings


def _check_call(sf: SourceFile, call: ast.Call, chain: list[str],
                imports: _Imports) -> list[Finding]:
    path = str(sf.path)
    # random.<anything>(...)
    if len(chain) >= 2 and chain[0] in imports.random_aliases:
        return [Finding(path, call.lineno, "DET001",
                        f"call to stdlib random.{chain[1]}() in deterministic "
                        f"scope; use repro.utils.rng.as_rng(seed)")]
    # time.time()
    if chain == ["time", "time"]:
        return [Finding(path, call.lineno, "DET003",
                        "time.time() in deterministic scope; use "
                        "repro.utils.timing (wall time) or the disk model "
                        "(simulated time)")]
    # np.random.* / numpy.random.*  and  from numpy.random import ...
    tail: str | None = None
    if len(chain) == 3 and chain[0] in imports.numpy_aliases and chain[1] == "random":
        tail = chain[2]
    elif len(chain) == 2 and chain[0] in imports.from_numpy_random \
            and imports.from_numpy_random[chain[0]] == "random":
        tail = chain[1]
    elif len(chain) == 1 and chain[0] in imports.from_numpy_random:
        tail = imports.from_numpy_random[chain[0]]
    if tail == "default_rng":
        if _is_unseeded(call):
            return [Finding(path, call.lineno, "DET002",
                            "np.random.default_rng() without an explicit seed "
                            "in deterministic scope; pass a seed or accept an "
                            "rng from the caller (repro.utils.rng.as_rng)")]
        return []
    if tail in NP_GLOBAL_RNG:
        return [Finding(path, call.lineno, "DET002",
                        f"np.random.{tail}() uses the hidden global RNG "
                        f"stream; use an explicitly seeded Generator")]
    return []
