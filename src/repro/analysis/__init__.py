"""Project-specific static analysis for the out-of-core concurrency layer.

The paper's §4.1 bit-identical correctness contract rests on conventions
that ordinary linters cannot see: which fields of the vector store are
guarded by its lock, which :class:`~repro.core.stats.IoStats` counters
belong to the demand stream versus the physical I/O threads, and the rule
that ``get()`` views are only valid until the next unpinned access. This
package machine-checks those conventions with stdlib-``ast`` analyses —
no runtime dependencies beyond the Python standard library.

Rules
-----
``LOCK001``
    A field declared ``# guarded-by: <lock>`` was read or written outside
    a ``with <recv>.<lock>:`` block (``_lock`` and ``_cond`` are treated
    as one lock, mirroring ``Condition(self._lock)``). Helper methods that
    run with the lock already held are annotated ``# holds: <lock>`` on
    their ``def`` line; deliberate lock-free fast paths carry a
    ``# lockfree-ok: <reason>`` suppression (reason required).
``LOCK002``
    A ``# lockfree-ok`` suppression without a reason.
``CNT001``
    A mutation of an :class:`IoStats` counter that is not a key of the
    ``IoStats._counters()`` registry.
``CNT002``
    The stats module is internally incoherent: a dataclass counter field,
    the ``_counters()`` registry, ``reset()`` and the counter taxonomy
    (``DEMAND_COUNTERS`` & friends) do not agree.
``CNT003``
    A demand-side counter is mutated on a writer/prefetch thread's code
    path (functions annotated ``# thread: writer|prefetch`` and everything
    reachable from them through the intra-package call graph).
``LEAK001``
    A public method of a slot-arena class returns a raw ``_slots`` buffer
    view without going through the pin/copy API (``.copy()`` or the
    borrow-tracked view issued by ``get``).
``DET001``
    Use of the stdlib ``random`` module inside ``repro.core`` /
    ``repro.phylo`` (outside ``utils``): likelihoods must be reproducible
    from explicit seeds (see :mod:`repro.utils.rng`).
``DET002``
    An unseeded ``np.random.default_rng()`` (or a legacy global-state
    ``np.random.*`` call) in the deterministic scope.
``DET003``
    ``time.time()`` in the deterministic scope — wall-clock reads belong
    in :mod:`repro.utils.timing`.
``SUP001``
    A ``# analysis: ignore[RULE]`` suppression without a reason, or
    naming an unknown rule.
``EVT001`` / ``EVT002``
    Tracer ``emit()`` uses an event type missing from ``EVENT_TYPES``, or
    the event taxonomy and the counter registry drifted apart.
``MET001`` / ``MET002``
    A metrics call site names a metric missing from ``METRIC_NAMES``, or
    the metric name / exposition / result tables drifted apart.
``LOK101``
    Two locks are acquired in both orders somewhere in the package (a
    cycle in the static lock-acquisition graph — potential deadlock).
    Edges come from lexically nested ``with`` blocks *and* from calls
    made while a lock is held, resolved interprocedurally.
``LOK102``
    A lock acquired inside a ``# thread: kernel`` compute callback.
    Kernel callbacks run on the batched schedule's worker pool and must
    stay lock-free: store traffic belongs in the planner-side entry
    points that already serialize against the store lock.
``RACE001`` / ``RACE002``
    **Runtime** rules from the happens-before race sanitizer
    (:mod:`repro.analysis.race`): two writes — or a read and a write —
    to the same guarded field are unordered by the happens-before
    relation (locks, thread start/join, executor fork/join tokens,
    condition waits). Opt in with ``REPRO_SANITIZE=race``; pair with
    :class:`repro.analysis.interleave.InterleaveFuzzer` to sweep seeded
    thread schedules deterministically.

Use ``python -m repro.analysis [paths...]`` from the repo root, or the
pytest bridge in ``tests/test_analysis_clean.py``. The runtime sanitizer
is exercised by ``tests/test_race.py``.
"""

from __future__ import annotations

from repro.analysis.findings import RULES, Finding
from repro.analysis.runner import analyze_paths

__all__ = ["Finding", "RULES", "analyze_paths"]
