"""A deliberately small type resolver for receiver-aware checks.

The lock and counter checkers need to answer one question: *which class
does this receiver expression belong to?* — e.g. ``self.store._inflight``
inside :class:`ThreadedPrefetcher` resolves through the annotated
``store: AncestralVectorStore`` constructor parameter. Full type inference
is neither needed nor wanted; this resolver handles exactly the patterns
the codebase uses and returns ``None`` for everything else (checkers then
skip, trading completeness for zero false positives):

* annotated function parameters (``store: AncestralVectorStore``), with
  unions resolved to their first class known to the index;
* ``self.x = <param>`` / ``self.x = Known(...)`` / annotated ``self.x``
  assignments inside ``__init__`` (and conditional ``IfExp`` forms);
* simple local aliases ``x = self.attr`` / ``x = Known(...)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class FuncInfo:
    """One function/method definition and where it lives."""

    name: str
    qualname: str            # "Class.meth" or "func"
    cls: str | None          # owning class name, if a method
    node: ast.FunctionDef
    module_path: str


@dataclass
class ClassInfo:
    name: str
    bases: list[str]
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class name


class ClassIndex:
    """Classes, methods, attribute types and module functions of a file set."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.module_functions: dict[str, list[FuncInfo]] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, trees: list[tuple[str, ast.Module]]) -> "ClassIndex":
        index = cls()
        for path, tree in trees:
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    index._add_class(path, node)
                elif isinstance(node, ast.FunctionDef):
                    info = FuncInfo(node.name, node.name, None, node, path)
                    index.module_functions.setdefault(node.name, []).append(info)
        # attribute types need the class set to be complete first
        for info in index.classes.values():
            init = info.methods.get("__init__")
            if init is not None:
                index._infer_attr_types(info, init.node)
        return index

    def _add_class(self, path: str, node: ast.ClassDef) -> None:
        bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
        info = ClassInfo(node.name, bases)
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                info.methods[item.name] = FuncInfo(
                    item.name, f"{node.name}.{item.name}", node.name, item, path
                )
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                cls_name = self._annotation_class(item.annotation)
                if cls_name:
                    info.attr_types[item.target.id] = cls_name
        self.classes[node.name] = info

    def _infer_attr_types(self, info: ClassInfo, init: ast.FunctionDef) -> None:
        param_types: dict[str, str] = {}
        args = init.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cls_name = self._annotation_class(a.annotation)
            if cls_name:
                param_types[a.arg] = cls_name
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls_name = self._annotation_class(stmt.annotation)
                    if cls_name:
                        info.attr_types.setdefault(target.attr, cls_name)
            if (target is None or value is None
                    or not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"):
                continue
            inferred = self._value_class(value, param_types)
            if inferred:
                info.attr_types[target.attr] = inferred

    # -- resolution helpers -----------------------------------------------------

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        """First class name in an annotation known to this index."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in self.classes:
                return node.id
            if isinstance(node, ast.Attribute) and node.attr in self.classes:
                return node.attr
        return None

    def _value_class(self, value: ast.expr, param_types: dict[str, str]) -> str | None:
        """Class of a simple RHS expression (constructor call / typed name)."""
        if isinstance(value, ast.IfExp):
            return (self._value_class(value.body, param_types)
                    or self._value_class(value.orelse, param_types))
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id in self.classes:
            return value.func.id
        if isinstance(value, ast.Name):
            return param_types.get(value.id)
        return None

    def class_family(self, name: str) -> set[str]:
        """``name`` plus every indexed class connected to it by inheritance."""
        family = {name}
        changed = True
        while changed:
            changed = False
            for cls_name, info in self.classes.items():
                if cls_name in family:
                    continue
                if family & set(info.bases):
                    family.add(cls_name)
                    changed = True
            for cls_name in list(family):
                info = self.classes.get(cls_name)
                if info:
                    for base in info.bases:
                        if base in self.classes and base not in family:
                            family.add(base)
                            changed = True
        return family


class LocalTypes:
    """Per-function local-variable types for receiver resolution."""

    def __init__(self, index: ClassIndex, func: FuncInfo) -> None:
        self.index = index
        self.cls = func.cls
        self.vars: dict[str, str] = {}
        args = func.node.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cls_name = index._annotation_class(a.annotation)
            if cls_name:
                self.vars[a.arg] = cls_name
        for stmt in ast.walk(func.node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                continue
            inferred = self._expr_class(stmt.value)
            if inferred:
                self.vars[stmt.targets[0].id] = inferred

    def _expr_class(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in self.index.classes:
            return node.func.id
        return self.resolve(node)

    def resolve(self, node: ast.expr) -> str | None:
        """Class name of a receiver expression, or ``None`` if unknown."""
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.cls
            return self.vars.get(node.id)
        if isinstance(node, ast.Attribute):
            owner = self.resolve(node.value)
            if owner is None:
                return None
            info = self.index.classes.get(owner)
            if info is None:
                return None
            return info.attr_types.get(node.attr)
        return None
