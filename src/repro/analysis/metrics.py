"""MET001/MET002: the metrics catalogue and its consumers stay in sync.

The metrics layer (``repro.obs.metrics``) defines a closed name
catalogue — a module-level ``METRIC_NAMES`` frozenset — plus a
``METRIC_EXPOSITION`` dict mapping every name to its ``(kind, help)``
Prometheus exposition entry, and the benchmark schema
(``repro.bench.schema``) re-uses a subset of those names as its
per-workload ``RESULT_METRICS``. Exactly like the event taxonomy
(EVT001/EVT002), the artifacts must agree:

* **MET001** — every registry call site with a literal metric name
  (``inc`` / ``inc_labeled`` / ``counter_set`` / ``gauge_set`` /
  ``gauge_set_labeled`` / ``gauge_add`` / ``observe`` /
  ``merge_histogram``) must use a declared name. The registry raises on
  unknown names at runtime, but only on paths that actually execute; a
  typo on a rarely-taken branch would otherwise ship.
* **MET002** — ``METRIC_NAMES`` and the ``METRIC_EXPOSITION`` keys must
  be the same set, every exposition kind must be one of
  ``counter``/``gauge``/``histogram``, every name must be a valid
  Prometheus metric-name suffix, and ``RESULT_METRICS`` must be a
  subset of the catalogue.

Both rules are inert for code bases that declare none of the names.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.events import _assign_value
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

METRIC_NAMES_NAME = "METRIC_NAMES"
METRIC_EXPOSITION_NAME = "METRIC_EXPOSITION"
RESULT_METRICS_NAME = "RESULT_METRICS"

#: Registry methods whose first argument is a metric name.
_REGISTRY_METHODS = frozenset(
    {"inc", "inc_labeled", "counter_set", "gauge_set", "gauge_set_labeled",
     "gauge_add", "observe", "merge_histogram"})

#: Valid exposition kinds (the registry's three instrument types).
_KINDS = frozenset({"counter", "gauge", "histogram"})

#: Prometheus metric-name suffix (the ``repro_`` prefix is added at
#: exposition time, so names must start with a lowercase letter).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass
class MetricSchema:
    """Parsed catalogue, exposition table and benchmark subset."""

    names: dict[str, int] | None          # metric name -> declaration line
    names_path: str
    names_line: int
    exposition: dict[str, tuple[str | None, int]] | None  # name->(kind, line)
    exposition_path: str
    exposition_line: int
    result_metrics: dict[str, int] | None  # name -> declaration line
    result_path: str
    result_line: int


def parse_metric_schema(files: list[SourceFile]) -> MetricSchema:
    names: dict[str, int] | None = None
    names_path, names_line = "", 0
    exposition: dict[str, tuple[str | None, int]] | None = None
    exposition_path, exposition_line = "", 0
    result: dict[str, int] | None = None
    result_path, result_line = "", 0
    for sf in files:
        for stmt in sf.tree.body:
            value = _assign_value(stmt, METRIC_NAMES_NAME)
            if value is not None and names is None:
                names = {}
                names_path, names_line = str(sf.path), stmt.lineno
                for node in ast.walk(value):
                    if (isinstance(node, ast.Constant)
                            and isinstance(node.value, str)):
                        names[node.value] = node.lineno
            value = _assign_value(stmt, METRIC_EXPOSITION_NAME)
            if (value is not None and exposition is None
                    and isinstance(value, ast.Dict)):
                exposition = {}
                exposition_path, exposition_line = str(sf.path), stmt.lineno
                for key, val in zip(value.keys, value.values):
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        continue
                    kind = None
                    if (isinstance(val, ast.Tuple) and val.elts
                            and isinstance(val.elts[0], ast.Constant)
                            and isinstance(val.elts[0].value, str)):
                        kind = val.elts[0].value
                    exposition[key.value] = (kind, key.lineno)
            value = _assign_value(stmt, RESULT_METRICS_NAME)
            if value is not None and result is None:
                result = {}
                result_path, result_line = str(sf.path), stmt.lineno
                for node in ast.walk(value):
                    if (isinstance(node, ast.Constant)
                            and isinstance(node.value, str)):
                        result[node.value] = node.lineno
    return MetricSchema(
        names=names, names_path=names_path, names_line=names_line,
        exposition=exposition, exposition_path=exposition_path,
        exposition_line=exposition_line, result_metrics=result,
        result_path=result_path, result_line=result_line)


def _registry_call_sites(files: list[SourceFile]) -> list[tuple[str, int, str]]:
    """``(path, line, literal)`` for every registry call with a literal name."""
    out: list[tuple[str, int, str]] = []
    for sf in files:
        for node in ast.walk(sf.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _REGISTRY_METHODS and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                out.append((str(sf.path), node.lineno, first.value))
    return out


def check_metrics(files: list[SourceFile]) -> list[Finding]:
    schema = parse_metric_schema(files)
    if schema.names is None and schema.exposition is None:
        return []
    findings: list[Finding] = []

    if schema.names is not None:
        for path, line, literal in _registry_call_sites(files):
            if literal not in schema.names:
                findings.append(Finding(
                    path, line, "MET001",
                    f"registry call uses undeclared metric name '{literal}' "
                    f"(not in {METRIC_NAMES_NAME} at {schema.names_path})",
                ))
        for name, line in schema.names.items():
            if not _NAME_RE.match(name):
                findings.append(Finding(
                    schema.names_path, line, "MET002",
                    f"metric name '{name}' is not a valid Prometheus "
                    "name suffix ([a-z][a-z0-9_]*)",
                ))

    if schema.names is not None and schema.exposition is None:
        findings.append(Finding(
            schema.names_path, schema.names_line, "MET002",
            f"{METRIC_NAMES_NAME} declared but no {METRIC_EXPOSITION_NAME} "
            "table exists",
        ))
    if schema.exposition is not None and schema.names is None:
        findings.append(Finding(
            schema.exposition_path, schema.exposition_line, "MET002",
            f"{METRIC_EXPOSITION_NAME} declared but no {METRIC_NAMES_NAME} "
            "catalogue exists",
        ))
    if schema.names is None or schema.exposition is None:
        return findings

    for name in sorted(set(schema.names) - set(schema.exposition)):
        findings.append(Finding(
            schema.names_path, schema.names[name], "MET002",
            f"metric '{name}' has no {METRIC_EXPOSITION_NAME} entry",
        ))
    for name, (kind, line) in schema.exposition.items():
        if name not in schema.names:
            findings.append(Finding(
                schema.exposition_path, line, "MET002",
                f"{METRIC_EXPOSITION_NAME} key '{name}' is not a declared "
                "metric name",
            ))
        if kind is not None and kind not in _KINDS:
            findings.append(Finding(
                schema.exposition_path, line, "MET002",
                f"metric '{name}' has unknown kind '{kind}' (expected "
                "counter/gauge/histogram)",
            ))

    if schema.result_metrics is not None:
        for name, line in schema.result_metrics.items():
            if name not in schema.names:
                findings.append(Finding(
                    schema.result_path, line, "MET002",
                    f"{RESULT_METRICS_NAME} entry '{name}' is not in the "
                    f"{METRIC_NAMES_NAME} catalogue",
                ))
    return findings
