"""CNT001/002/003: the IoStats counter registry and who may touch what.

The stats module (any analyzed file defining ``class IoStats`` with a
``_counters`` method) is the single source of truth:

* the dataclass's public ``int`` fields,
* the ``_counters()`` registry dict,
* the ``reset()`` assignments, and
* the thread-ownership taxonomy (module-level ``*_COUNTERS`` frozensets)

must all agree (**CNT002**). Every counter mutation anywhere else must
target a registered counter (**CNT001**), and functions running on the
writer/prefetch threads — annotated ``# thread: writer|prefetch`` on their
``def`` line, plus everything reachable from them through the
intra-package call graph — must never mutate a demand-side counter
(**CNT003**): demand counters describe the access trace *as if the async
pipeline were transparent* (see ``repro.core.stats``), so only the compute
thread may move them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile, attribute_chain
from repro.analysis.typeinfo import ClassIndex, FuncInfo, LocalTypes

STATS_CLASS = "IoStats"
DEMAND_TAXON = "DEMAND_COUNTERS"


@dataclass
class StatsSchema:
    """Everything the checkers need to know about the stats module."""

    path: str
    fields: dict[str, int]            # counter name -> declaration line
    registry: dict[str, int]          # _counters() key -> line
    reset_targets: set[str]
    taxonomy: dict[str, set[str]]     # frozenset name -> counter names
    registry_line: int
    #: ``bool``-annotated public fields (e.g. ``writeback_enabled``): not
    #: counters, so they are exempt from the registry/reset/taxonomy
    #: coherence rules and their mutations are not CNT001.
    flags: set[str] = field(default_factory=set)

    @property
    def demand(self) -> set[str]:
        return self.taxonomy.get(DEMAND_TAXON, set())


def parse_stats_schema(files: list[SourceFile]) -> StatsSchema | None:
    for sf in files:
        for node in sf.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == STATS_CLASS:
                methods = {m.name: m for m in node.body
                           if isinstance(m, ast.FunctionDef)}
                if "_counters" not in methods:
                    continue
                return _build_schema(sf, node, methods)
    return None


def _build_schema(sf: SourceFile, cls: ast.ClassDef,
                  methods: dict[str, ast.FunctionDef]) -> StatsSchema:
    fields: dict[str, int] = {}
    flags: set[str] = set()
    for item in cls.body:
        if (isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
                and isinstance(item.annotation, ast.Name)):
            if item.annotation.id == "int":
                fields[item.target.id] = item.lineno
            elif item.annotation.id == "bool":
                flags.add(item.target.id)

    registry: dict[str, int] = {}
    registry_line = methods["_counters"].lineno
    for stmt in ast.walk(methods["_counters"]):
        if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Dict):
            registry_line = stmt.lineno
            for key in stmt.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    registry[key.value] = key.lineno

    reset_targets: set[str] = set()
    if "reset" in methods:
        for stmt in ast.walk(methods["reset"]):
            if isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if (isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"):
                        reset_targets.add(tgt.attr)

    taxonomy: dict[str, set[str]] = {}
    for stmt in sf.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id.endswith("_COUNTERS")):
            continue
        if isinstance(stmt.value, ast.Dict):
            # A dict named *_COUNTERS (e.g. the EVENT_COUNTERS event->counter
            # mapping, checked by EVT002) is not a thread-ownership bucket.
            continue
        names: set[str] = set()
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
        taxonomy[stmt.targets[0].id] = names

    return StatsSchema(path=str(sf.path), fields=fields, registry=registry,
                       reset_targets=reset_targets, taxonomy=taxonomy,
                       registry_line=registry_line, flags=flags)


def _schema_coherence(schema: StatsSchema) -> list[Finding]:
    findings: list[Finding] = []

    def emit(line: int, message: str) -> None:
        findings.append(Finding(schema.path, line, "CNT002", message))

    for name, line in schema.fields.items():
        if name not in schema.registry:
            emit(line, f"counter field '{name}' missing from _counters() registry")
        if name not in schema.reset_targets:
            emit(line, f"counter field '{name}' is not zeroed by reset()")
    for name, line in schema.registry.items():
        if name not in schema.fields:
            emit(line, f"_counters() key '{name}' is not a declared counter field")
    if schema.taxonomy:
        union: set[str] = set()
        for names in schema.taxonomy.values():
            union |= names
        for name in sorted(set(schema.fields) - union):
            emit(schema.fields[name],
                 f"counter field '{name}' missing from the *_COUNTERS taxonomy")
        for name in sorted(union - set(schema.fields)):
            emit(schema.registry_line,
                 f"taxonomy entry '{name}' is not a declared counter field")
    return findings


# -- mutation collection -------------------------------------------------------


@dataclass
class _Mutation:
    func: FuncInfo
    counter: str
    line: int
    path: str


def _counter_mutations(files: list[SourceFile], index: ClassIndex,
                       funcs: list[FuncInfo]) -> list[_Mutation]:
    out: list[_Mutation] = []
    by_path = {str(sf.path): sf for sf in files}
    for func in funcs:
        sf = by_path.get(func.module_path)
        if sf is None:
            continue
        types = LocalTypes(index, func)
        for stmt in ast.walk(func.node):
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
            elif isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            else:
                continue
            for tgt in targets:
                if not isinstance(tgt, ast.Attribute):
                    continue
                recv = tgt.value
                owner = types.resolve(recv)
                if owner == STATS_CLASS:
                    stats_recv = True
                elif owner is None:
                    chain = attribute_chain(recv)
                    stats_recv = bool(chain) and chain[-1] == "stats"
                else:
                    stats_recv = False
                if stats_recv:
                    out.append(_Mutation(func, tgt.attr, tgt.lineno,
                                         func.module_path))
    return out


# -- call graph & thread-path reachability ------------------------------------


def _all_functions(index: ClassIndex) -> list[FuncInfo]:
    funcs: list[FuncInfo] = []
    for lst in index.module_functions.values():
        funcs.extend(lst)
    for info in index.classes.values():
        funcs.extend(info.methods.values())
    return funcs


def _call_edges(index: ClassIndex, func: FuncInfo) -> list[FuncInfo]:
    """Callees of ``func`` resolvable within the analyzed file set."""
    types = LocalTypes(index, func)
    edges: list[FuncInfo] = []
    for node in ast.walk(func.node):
        if not isinstance(node, ast.Call):
            continue
        callee = node.func
        if isinstance(callee, ast.Name):
            edges.extend(index.module_functions.get(callee.id, []))
        elif isinstance(callee, ast.Attribute):
            owner = types.resolve(callee.value)
            if owner is None:
                continue
            for cls_name in index.class_family(owner):
                info = index.classes.get(cls_name)
                if info and callee.attr in info.methods:
                    edges.append(info.methods[callee.attr])
    return edges


def _reachable_from_roots(files: list[SourceFile], index: ClassIndex,
                          funcs: list[FuncInfo]) -> dict[int, tuple[str, str]]:
    """``id(FuncInfo) -> (thread role, root qualname)`` for thread-path funcs."""
    by_path = {str(sf.path): sf for sf in files}
    roots: list[tuple[FuncInfo, str]] = []
    for func in funcs:
        sf = by_path.get(func.module_path)
        if sf is None:
            continue
        role = sf.thread_role(func.node.lineno)
        # ``kernel`` roots belong to the lock-order checker (LOK102);
        # CNT003's demand/background split is about writer/prefetch only.
        if role in ("writer", "prefetch"):
            roots.append((func, role))
    reached: dict[int, tuple[str, str]] = {}
    stack: list[tuple[FuncInfo, str, str]] = [
        (f, role, f.qualname) for f, role in roots
    ]
    while stack:
        func, role, root = stack.pop()
        if id(func) in reached:
            continue
        reached[id(func)] = (role, root)
        for callee in _call_edges(index, func):
            if id(callee) not in reached:
                stack.append((callee, role, root))
    return reached


def check_counters(files: list[SourceFile], index: ClassIndex) -> list[Finding]:
    schema = parse_stats_schema(files)
    if schema is None:
        return []
    findings = _schema_coherence(schema)

    funcs = _all_functions(index)
    mutations = _counter_mutations(files, index, funcs)
    for mut in mutations:
        if mut.counter in schema.flags:
            continue  # bool flags (e.g. writeback_enabled) are not counters
        if mut.counter not in schema.registry and mut.counter in schema.fields:
            continue  # already reported by CNT002 on the schema side
        if mut.counter not in schema.registry:
            findings.append(Finding(
                mut.path, mut.line, "CNT001",
                f"mutation of unregistered counter 'stats.{mut.counter}' "
                f"(not a _counters() key in {schema.path})",
            ))

    if schema.demand:
        reached = _reachable_from_roots(files, index, funcs)
        for mut in mutations:
            info = reached.get(id(mut.func))
            if info is None or mut.counter not in schema.demand:
                continue
            role, root = info
            findings.append(Finding(
                mut.path, mut.line, "CNT003",
                f"demand counter 'stats.{mut.counter}' mutated in "
                f"{mut.func.qualname}, which runs on the {role} thread "
                f"(reachable from {root}); demand counters belong to the "
                f"compute thread only",
            ))
    return findings
