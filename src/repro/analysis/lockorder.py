"""LOK101/LOK102: whole-program lock-acquisition ordering.

LOCK001 proves each guarded access holds *its* lock; nothing so far
constrains the order in which different locks nest, and an AB/BA
inversion between the store condition and the write-behind condition
would deadlock the pipeline only under an unlucky schedule — the worst
kind of bug to find dynamically. This pass lifts the existing
``# guarded-by``/``# holds`` annotation grammar into a lock-acquisition
graph:

* **Lock discovery.** ``self.X = threading.RLock()/Lock()/Condition()``
  (or the sanitizer factories ``make_lock``/``make_condition``) inside
  ``__init__`` declares lock attribute ``X`` of that class.
  ``Condition(self._lock)`` aliases the two attributes into one lock,
  as does the global ``_lock``/``_cond`` convention of LOCK001.
* **Edges.** Walking every function with the held-lock set of
  :mod:`repro.analysis.locks` (receivers resolved through
  :mod:`~repro.analysis.typeinfo`), an edge ``A -> B`` is recorded when
  ``B`` is acquired lexically inside a ``with A`` block, or when a call
  made while holding ``A`` reaches — through interprocedural
  *acquired-locks summaries*, a fixpoint over the intra-package call
  graph — a function that acquires ``B``.
* **LOK101.** A cycle among lock *classes* (an SCC of the graph) is a
  potential deadlock; every acquisition site participating in the
  cycle is reported. Nodes are class-level (``WriteBehindQueue._cond``),
  so two *instances* of one class taken in inconsistent order (the
  tiered store's device/host pair relies on RLock re-entrancy plus a
  strict device→host hierarchy) are out of scope — self-edges are
  skipped and the hierarchy is documented in DESIGN.md instead.
* **LOK102.** Functions annotated ``# thread: kernel`` are
  ``BatchedSchedule`` compute callbacks: they run on the kernel pool
  while the compute thread is already gathering the next group, so a
  raw lock acquisition there risks lock-order inversions invisible to
  the per-class graph *and* stalls the pipeline. Callbacks must go
  through the store's thread-safe entry points (``fill``) instead;
  any direct ``with <lock>:`` in such a function is flagged.

Unresolvable receivers and dynamic dispatch (collector callbacks,
``fn()`` through a variable) are skipped — like every checker here,
missing an edge is preferred to inventing one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.locks import LOCK_ALIASES
from repro.analysis.source import SourceFile
from repro.analysis.typeinfo import ClassIndex, FuncInfo, LocalTypes

#: Callables whose result is a lock (stdlib constructors + the race
#: sanitizer's pay-for-play factories).
_LOCK_CTORS = frozenset({"RLock", "Lock", "make_lock"})
_COND_CTORS = frozenset({"Condition", "make_condition"})

#: Acquisition sites reported per cycle edge before eliding the rest.
_MAX_SITES_PER_EDGE = 3


@dataclass
class _Acquire:
    node: str                 # lock node id, "Class.attr"
    line: int
    held: frozenset[str]


@dataclass
class _CallSite:
    callees: list[FuncInfo]
    line: int
    held: frozenset[str]


@dataclass
class _FuncFacts:
    func: FuncInfo
    sf: SourceFile
    acquires: list[_Acquire] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)


def _callable_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _LockTable:
    """Per-class lock attributes, alias-grouped to a canonical name."""

    def __init__(self, index: ClassIndex) -> None:
        self.index = index
        self._canon: dict[str, dict[str, str]] = {}
        for cls_name, info in index.classes.items():
            init = info.methods.get("__init__")
            if init is None:
                continue
            attrs: set[str] = set()
            pairs: list[tuple[str, str]] = []
            for stmt in ast.walk(init.node):
                if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                    continue
                tgt, value = stmt.targets[0], stmt.value
                if not (isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                        and isinstance(value, ast.Call)):
                    continue
                name = _callable_name(value.func)
                if name in _LOCK_CTORS:
                    attrs.add(tgt.attr)
                elif name in _COND_CTORS:
                    attrs.add(tgt.attr)
                    if value.args:
                        arg = value.args[0]
                        if (isinstance(arg, ast.Attribute)
                                and isinstance(arg.value, ast.Name)
                                and arg.value.id == "self"):
                            pairs.append((tgt.attr, arg.attr))
                            attrs.add(arg.attr)
            if not attrs:
                continue
            if LOCK_ALIASES <= attrs:
                pairs.append(tuple(sorted(LOCK_ALIASES)))  # type: ignore[arg-type]
            self._canon[cls_name] = self._group(attrs, pairs)

    @staticmethod
    def _group(attrs: set[str],
               pairs: list[tuple[str, str]]) -> dict[str, str]:
        parent = {a: a for a in attrs}

        def find(a: str) -> str:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for a, b in pairs:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)
        groups: dict[str, list[str]] = {}
        for a in attrs:
            groups.setdefault(find(a), []).append(a)
        return {a: min(members) for root, members in groups.items()
                for a in members}

    def node(self, owner_cls: str | None, attr: str) -> str | None:
        """Lock node id for ``<owner>.<attr>``, searching the class
        family so locks declared in a base resolve from a subclass."""
        if owner_cls is None:
            return None
        canon = self._canon.get(owner_cls, {}).get(attr)
        if canon is not None:
            return f"{owner_cls}.{canon}"
        for cls in sorted(self.index.class_family(owner_cls)):
            canon = self._canon.get(cls, {}).get(attr)
            if canon is not None:
                return f"{cls}.{canon}"
        return None

    def any_lock_attr(self, attr: str) -> bool:
        return any(attr in table for table in self._canon.values())


class _Walker:
    """Collects acquisitions and calls with their held-lock context."""

    def __init__(self, facts: _FuncFacts, index: ClassIndex,
                 table: _LockTable) -> None:
        self.facts = facts
        self.index = index
        self.table = table
        self.types = LocalTypes(index, facts.func)

    def run(self) -> None:
        func = self.facts.func
        held: frozenset[str] = frozenset()
        holds = self.facts.sf.holds(func.node.lineno)
        if holds is not None:
            node = self.table.node(func.cls, holds)
            if node is not None:
                held = frozenset({node})
        for stmt in func.node.body:
            self._visit(stmt, held)

    def _visit(self, node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Deferred body: the enclosing lock may be long released (or
            # re-taken) when it runs, so its acquisitions start bare.
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                self._visit(child, frozenset())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = held
            for item in node.items:
                ctx = item.context_expr
                self._visit(ctx, acquired)
                if isinstance(ctx, ast.Attribute):
                    lock = self.table.node(self.types.resolve(ctx.value),
                                           ctx.attr)
                    if lock is not None:
                        self.facts.acquires.append(
                            _Acquire(lock, ctx.lineno, acquired))
                        acquired = acquired | {lock}
            for child in node.body:
                self._visit(child, acquired)
            return
        if isinstance(node, ast.Call):
            callees = self._resolve_callees(node)
            if callees:
                self.facts.calls.append(_CallSite(callees, node.lineno, held))
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _resolve_callees(self, call: ast.Call) -> list[FuncInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return list(self.index.module_functions.get(func.id, ()))
        if isinstance(func, ast.Attribute):
            recv = self.types.resolve(func.value)
            if recv is None:
                return []
            out: list[FuncInfo] = []
            for cls in sorted(self.index.class_family(recv)):
                info = self.index.classes.get(cls)
                if info is not None and func.attr in info.methods:
                    out.append(info.methods[func.attr])
            return out
        return []


def _summaries(all_facts: list[_FuncFacts]) -> dict[int, frozenset[str]]:
    """Fixpoint of transitively acquired locks per function."""
    summary: dict[int, set[str]] = {
        id(f.func): {a.node for a in f.acquires} for f in all_facts
    }
    changed = True
    while changed:
        changed = False
        for f in all_facts:
            mine = summary[id(f.func)]
            before = len(mine)
            for call in f.calls:
                for callee in call.callees:
                    mine |= summary.get(id(callee), set())
            if len(mine) != before:
                changed = True
    return {k: frozenset(v) for k, v in summary.items()}


def _scc(nodes: set[str],
         edges: dict[tuple[str, str], list[tuple[str, int]]]) -> list[set[str]]:
    """Tarjan strongly connected components (iterative)."""
    adj: dict[str, list[str]] = {n: [] for n in nodes}
    for (src, dst) in edges:
        adj[src].append(dst)
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[set[str]] = []
    counter = 0
    for root in sorted(nodes):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index_of[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            for i in range(pi, len(adj[v])):
                w = adj[v][i]
                if w not in index_of:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index_of[v]:
                comp: set[str] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                out.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return out


def check_lockorder(files: list[SourceFile],
                    index: ClassIndex) -> list[Finding]:
    table = _LockTable(index)
    by_path = {str(sf.path): sf for sf in files}

    all_facts: list[_FuncFacts] = []
    kernel_funcs: list[_FuncFacts] = []
    funcs: list[FuncInfo] = [
        f for flist in index.module_functions.values() for f in flist
    ]
    for info in index.classes.values():
        funcs.extend(info.methods.values())
    for func in funcs:
        sf = by_path.get(func.module_path)
        if sf is None:
            continue
        facts = _FuncFacts(func, sf)
        _Walker(facts, index, table).run()
        all_facts.append(facts)
        if sf.thread_role(func.node.lineno) == "kernel":
            kernel_funcs.append(facts)

    findings: list[Finding] = []

    # -- LOK102: raw lock acquisition in a kernel compute callback --------------
    for facts in kernel_funcs:
        for acq in facts.acquires:
            findings.append(Finding(
                path=str(facts.sf.path), line=acq.line, rule="LOK102",
                message=(f"lock '{acq.node}' acquired inside kernel compute "
                         f"callback '{facts.func.qualname}': BatchedSchedule "
                         f"callbacks run on the kernel pool concurrently with "
                         f"the gather loop and must stay lock-free — use the "
                         f"store's thread-safe entry points (fill/get) "
                         f"instead"),
            ))

    # -- LOK101: cycles in the acquisition graph --------------------------------
    summary = _summaries(all_facts)
    nodes: set[str] = set()
    edges: dict[tuple[str, str], list[tuple[str, int]]] = {}

    def add_edge(src: str, dst: str, path: str, line: int) -> None:
        if src == dst:
            return  # class-level self-edge: instance hierarchy, see module doc
        nodes.add(src)
        nodes.add(dst)
        sites = edges.setdefault((src, dst), [])
        if len(sites) < _MAX_SITES_PER_EDGE and (path, line) not in sites:
            sites.append((path, line))

    for facts in all_facts:
        path = str(facts.sf.path)
        for acq in facts.acquires:
            for h in acq.held:
                add_edge(h, acq.node, path, acq.line)
        for call in facts.calls:
            if not call.held:
                continue
            reached: set[str] = set()
            for callee in call.callees:
                reached |= summary.get(id(callee), frozenset())
            for dst in reached:
                if dst in call.held:
                    continue  # re-entrant through the call: not an ordering
                for h in call.held:
                    add_edge(h, dst, path, call.line)

    for comp in _scc(nodes, edges):
        if len(comp) < 2:
            continue
        cycle = " -> ".join(sorted(comp)) + f" -> {sorted(comp)[0]}"
        for (src, dst), sites in sorted(edges.items()):
            if src in comp and dst in comp:
                for path, line in sites:
                    findings.append(Finding(
                        path=path, line=line, rule="LOK101",
                        message=(f"lock-order cycle: '{dst}' is acquired "
                                 f"while '{src}' is held, closing the cycle "
                                 f"[{cycle}] — a concurrent thread taking "
                                 f"these locks in the opposite order "
                                 f"deadlocks; pick one global order"),
                    ))
    return findings
