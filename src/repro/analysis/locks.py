"""LOCK001: guarded fields may only be touched with their lock held.

Declarations come from ``# guarded-by: <lock>`` comments on ``self.x = ...``
lines in ``__init__``. An access to a guarded field is legal when it is

* lexically inside a ``with <recv>.<lock>:`` (or aliased ``_cond``/``_lock``)
  block,
* inside a function annotated ``# holds: <lock>`` on its ``def`` line
  (the documented caller-holds-the-lock helper contract),
* inline inside any ``__init__`` (the object is not yet shared), or
* suppressed with ``# lockfree-ok: <reason>`` (applied by the runner).

Deferred execution does not inherit the lock: a nested ``def``, a
``lambda`` body or a generator expression may run long after the
enclosing ``with`` released, so their guarded accesses are checked with
an empty held-set (and closures created inside ``__init__`` are checked
even though ``__init__`` itself is exempt). The one exception is a
generator expression consumed directly as a call argument
(``sum(1 for ...)``) — it is exhausted before the call returns, with the
locks still held. List/set/dict comprehensions evaluate inline and keep
the held-set.

Receivers are resolved with :mod:`repro.analysis.typeinfo`; an access whose
receiver class cannot be resolved is skipped — the checker prefers missing
a violation to inventing one. ``_lock`` and ``_cond`` form one equivalence
group, mirroring ``self._cond = threading.Condition(self._lock)``.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile
from repro.analysis.typeinfo import ClassIndex, FuncInfo, LocalTypes

#: Lock attribute names treated as one lock (Condition wraps the RLock).
LOCK_ALIASES = frozenset({"_lock", "_cond"})


def _lock_group(name: str) -> frozenset[str]:
    return LOCK_ALIASES if name in LOCK_ALIASES else frozenset({name})


def _collect_declarations(files: list[SourceFile]) -> dict[str, dict[str, str]]:
    """``class name -> {field name -> lock name}`` from guarded-by comments."""
    decls: dict[str, dict[str, str]] = {}
    for sf in files:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
                    continue
                for stmt in ast.walk(item):
                    targets: list[ast.expr] = []
                    if isinstance(stmt, ast.Assign):
                        targets = list(stmt.targets)
                    elif isinstance(stmt, ast.AnnAssign):
                        targets = [stmt.target]
                    else:
                        continue
                    lock = sf.guarded_by(stmt.lineno)
                    if lock is None:
                        continue
                    for tgt in targets:
                        if (isinstance(tgt, ast.Attribute)
                                and isinstance(tgt.value, ast.Name)
                                and tgt.value.id == "self"):
                            decls.setdefault(node.name, {})[tgt.attr] = lock
    return decls


class _FunctionChecker:
    def __init__(self, sf: SourceFile, func: FuncInfo, index: ClassIndex,
                 decls: dict[str, dict[str, str]],
                 findings: list[Finding]) -> None:
        self.sf = sf
        self.func = func
        self.types = LocalTypes(index, func)
        self.decls = decls
        self.findings = findings
        self.guarded_names = {f for fields in decls.values() for f in fields}
        self.all_lock_names = set(LOCK_ALIASES) | {
            lock for fields in decls.values() for lock in fields.values()
        }

    def run(self) -> None:
        held: frozenset[str] = frozenset()
        holds = self.sf.holds(self.func.node.lineno)
        if holds is not None:
            held = _lock_group(holds)
        for stmt in self.func.node.body:
            self._visit(stmt, held)

    def run_deferred_only(self) -> None:
        """Check only closures (nested defs / lambdas) of this function.

        Used for ``__init__``: construction precedes sharing, so inline
        accesses are exempt — but a closure created *during* construction
        may run arbitrarily later, on any thread, and must hold the lock
        like everybody else.
        """
        for stmt in self.func.node.body:
            self._visit(stmt, frozenset(), checking=False)

    # -- recursive walk with held-lock propagation ------------------------------

    def _visit(self, node: ast.AST, held: frozenset[str],
               checking: bool = True) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def may run long after the enclosing lock is released.
            inner = self.sf.holds(node.lineno)
            nested_held = _lock_group(inner) if inner is not None else frozenset()
            for child in ast.iter_child_nodes(node):
                self._visit(child, nested_held, checking=True)
            return
        if isinstance(node, ast.Lambda):
            # Deferred exactly like a nested def — but default values are
            # evaluated at creation time, under the enclosing locks.
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for d in defaults:
                self._visit(d, held, checking)
            self._visit(node.body, frozenset(), checking=True)
            return
        if isinstance(node, ast.GeneratorExp):
            # Lazy: runs whenever it is iterated, possibly after release.
            for child in ast.iter_child_nodes(node):
                self._visit(child, frozenset(), checking=True)
            return
        if isinstance(node, ast.Call):
            # ...except a genexp consumed directly as a call argument
            # (``sum(1 for ...)``): it is exhausted before the call
            # returns, so the enclosing locks are still held.
            self._visit(node.func, held, checking)
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    for child in ast.iter_child_nodes(arg):
                        self._visit(child, held, checking)
                else:
                    self._visit(arg, held, checking)
            for kw in node.keywords:
                self._visit(kw.value, held, checking)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = held
            for item in node.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Attribute) and ctx.attr in self.all_lock_names:
                    acquired = acquired | _lock_group(ctx.attr)
                self._visit(ctx, held, checking)
            for child in node.body:
                self._visit(child, acquired, checking)
            return
        if (checking and isinstance(node, ast.Attribute)
                and node.attr in self.guarded_names):
            self._check_access(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, checking)

    def _check_access(self, node: ast.Attribute, held: frozenset[str]) -> None:
        owner = self.types.resolve(node.value)
        if owner is None:
            return
        lock = self.decls.get(owner, {}).get(node.attr)
        if lock is None:
            return
        if _lock_group(lock) & held:
            return
        self.findings.append(Finding(
            path=str(self.sf.path), line=node.lineno, rule="LOCK001",
            message=(f"field '{owner}.{node.attr}' is guarded by '{lock}' but "
                     f"accessed without it (in {self.func.qualname}); wrap in "
                     f"'with ...{lock}:', annotate the def with '# holds: {lock}', "
                     f"or add '# lockfree-ok: <reason>'"),
        ))


def check_locks(files: list[SourceFile], index: ClassIndex) -> list[Finding]:
    decls = _collect_declarations(files)
    if not decls:
        return []
    findings: list[Finding] = []
    by_path = {str(sf.path): sf for sf in files}
    for funcs in list(index.module_functions.values()):
        for func in funcs:
            sf = by_path.get(func.module_path)
            if sf is not None:
                _FunctionChecker(sf, func, index, decls, findings).run()
    for info in index.classes.values():
        for func in info.methods.values():
            sf = by_path.get(func.module_path)
            if sf is None:
                continue
            checker = _FunctionChecker(sf, func, index, decls, findings)
            if func.name == "__init__":
                # Construction precedes sharing — inline accesses are
                # exempt, but closures minted here outlive __init__.
                checker.run_deferred_only()
            else:
                checker.run()
    return findings
