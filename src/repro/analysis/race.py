"""Runtime happens-before race sanitizer (``REPRO_SANITIZE=race``).

The static lock checker (rule LOCK001) proves that *annotated* fields
are touched under the right ``with`` block, but it cannot see whether
two thread populations are actually ordered at runtime — a publish
without a lock, a queue hand-off that skips a field, or a pipeline
stage reading a buffer the kernel worker is still writing. This module
closes that gap with a classic vector-clock detector in the style of
FastTrack (Flanagan & Freund, PLDI'09), sized for the repo's four
thread populations (compute, write-behind writers, prefetcher, kernel
pool) plus the metrics scrape endpoint.

Model
-----
* Every thread carries a vector clock; its own component advances at
  each release/fork.
* A :class:`TrackedRLock` joins the lock's release clock into the
  acquirer (``Condition.wait`` participates through the standard
  ``_release_save``/``_acquire_restore`` protocol, so waiting threads
  pick up the notifier's clock when they re-acquire the monitor).
* Thread start/join and executor hand-offs transfer clocks through
  :meth:`RaceDetector.fork`/:meth:`RaceDetector.join` tokens.
* Instrumented code declares accesses with
  ``rc.read(scope, "field", ...)`` / ``rc.write(scope, "field", ...)``;
  the detector keeps each variable's last read/write epoch per thread
  and reports any pair not ordered by happens-before as rule RACE001
  (write-write) or RACE002 (read-write).

Detection is *timing independent*: two accesses with no happens-before
edge are flagged in whatever order the OS actually ran them, so a
seeded run either always reports a given race or never does — which is
what makes the interleaving fuzzer's findings reproducible.

Pay-for-play
------------
Exactly like the :class:`BorrowedSlotView` sanitizer and the tracer,
all hook points sit behind a single ``is None`` test and the factories
(:func:`make_lock`, :func:`make_condition`, :func:`make_thread`) return
plain :mod:`threading` objects when the sanitizer is off, so an
uninstrumented run pays one attribute load per hooked region and zero
allocations. ``REPRO_SANITIZE=race`` (or ``all``) enables the detector
process-wide; tests use :func:`sanitizer` for scoped, programmatic
activation. Note that any non-empty ``REPRO_SANITIZE`` also arms the
borrow-sanitizer — ``race`` is a strict superset of ``1``.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.analysis.findings import Finding

__all__ = [
    "RaceDetector",
    "RaceError",
    "TrackedRLock",
    "install",
    "make_condition",
    "make_lock",
    "make_thread",
    "race_detector",
    "sanitizer",
    "uninstall",
]

#: ``(filename, lineno)`` of an instrumented access.
Site = tuple[str, int]

#: A clock-transfer token (an immutable snapshot of a vector clock).
Token = dict[int, int]


class RaceError(AssertionError):
    """Raised by :meth:`RaceDetector.assert_clean` when races were found."""


def _env_race_enabled() -> bool:
    raw = os.environ.get("REPRO_SANITIZE", "")
    tokens = {part.strip().lower() for part in raw.split(",")}
    return "race" in tokens or "all" in tokens


class _VarState:
    """Last read/write epoch per thread for one instrumented variable."""

    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.writes: dict[int, tuple[int, Site]] = {}
        self.reads: dict[int, tuple[int, Site]] = {}


class RaceDetector:
    """Vector-clock happens-before detector over instrumented accesses.

    All public methods are thread-safe (one internal mutex; note the
    mutex orders detector *bookkeeping* only — happens-before between
    program accesses is established exclusively by tracked locks and
    fork/join tokens, so the mutex cannot mask a program race).
    """

    def __init__(self, *, raise_on_race: bool = False) -> None:
        self.raise_on_race = bool(raise_on_race)
        self.findings: list[Finding] = []
        self._mutex = threading.Lock()
        self._tls = threading.local()
        self._next_tid = 1
        self._next_scope = 1
        self._clocks: dict[int, dict[int, int]] = {}
        self._names: dict[int, str] = {}
        self._locks: dict[str, dict[int, int]] = {}
        self._vars: dict[str, _VarState] = {}
        self._seen: set[tuple[str, str, frozenset[Site]]] = set()

    # -- thread identity --------------------------------------------------------

    def _thread(self) -> tuple[int, dict[int, int]]:
        """This thread's (detector-local id, mutable clock). Caller holds
        the mutex. Ids are never recycled (unlike ``get_ident``)."""
        tid = getattr(self._tls, "tid", None)
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
            self._tls.tid = tid
            self._clocks[tid] = {tid: 1}
            self._names[tid] = threading.current_thread().name
        return tid, self._clocks[tid]

    # -- scopes -----------------------------------------------------------------

    def new_scope(self, label: str) -> str:
        """A unique per-instance variable namespace, e.g.
        ``AncestralVectorStore#3``. Monotonic — never reuses a name the
        way ``id()`` reuses addresses."""
        with self._mutex:
            n = self._next_scope
            self._next_scope += 1
        return f"{label}#{n}"

    # -- synchronization events -------------------------------------------------

    def lock_acquired(self, key: str) -> None:
        """Join the lock's last-release clock into the current thread."""
        with self._mutex:
            _tid, clock = self._thread()
            released = self._locks.get(key)
            if released:
                for u, c in released.items():
                    if c > clock.get(u, 0):
                        clock[u] = c

    def lock_released(self, key: str) -> None:
        """Publish the current thread's clock on the lock; advance."""
        with self._mutex:
            tid, clock = self._thread()
            self._locks[key] = dict(clock)
            clock[tid] += 1

    def fork(self) -> Token:
        """Snapshot the current clock as a transfer token and advance.

        Tokens order the creating thread *before* whoever joins them:
        thread start (token joined at the top of ``run``), thread end
        (token captured at the bottom of ``run``, joined by ``join()``),
        and executor hand-offs (submit-side token joined by the worker,
        worker-side token joined by the ``result()`` caller).
        """
        with self._mutex:
            tid, clock = self._thread()
            token = dict(clock)
            clock[tid] += 1
        return token

    def join(self, token: Token) -> None:
        """Join a :meth:`fork` token into the current thread's clock."""
        with self._mutex:
            _tid, clock = self._thread()
            for u, c in token.items():
                if c > clock.get(u, 0):
                    clock[u] = c

    # -- access hooks -----------------------------------------------------------

    def read(self, scope: str, *fields: str) -> None:
        """Record a read of ``scope.field`` for each field, reporting any
        write not ordered before it (RACE002)."""
        cp = _checkpoint
        if cp is not None:
            cp()
        frame = sys._getframe(1)
        site = (frame.f_code.co_filename, frame.f_lineno)
        with self._mutex:
            tid, clock = self._thread()
            epoch = clock[tid]
            for field in fields:
                var = f"{scope}.{field}"
                state = self._vars.get(var)
                if state is None:
                    state = self._vars[var] = _VarState()
                for u, (c, other) in state.writes.items():
                    if u != tid and c > clock.get(u, 0):
                        self._report("RACE002", var, "read", site,
                                     self._names[tid], other, self._names[u])
                state.reads[tid] = (epoch, site)

    def write(self, scope: str, *fields: str) -> None:
        """Record a write of ``scope.field`` for each field, reporting any
        unordered write (RACE001) or read (RACE002)."""
        cp = _checkpoint
        if cp is not None:
            cp()
        frame = sys._getframe(1)
        site = (frame.f_code.co_filename, frame.f_lineno)
        with self._mutex:
            tid, clock = self._thread()
            epoch = clock[tid]
            for field in fields:
                var = f"{scope}.{field}"
                state = self._vars.get(var)
                if state is None:
                    state = self._vars[var] = _VarState()
                for u, (c, other) in state.writes.items():
                    if u != tid and c > clock.get(u, 0):
                        self._report("RACE001", var, "write", site,
                                     self._names[tid], other, self._names[u])
                for u, (c, other) in state.reads.items():
                    if u != tid and c > clock.get(u, 0):
                        self._report("RACE002", var, "write", site,
                                     self._names[tid], other, self._names[u])
                state.writes[tid] = (epoch, site)

    # -- reporting --------------------------------------------------------------

    def _report(self, rule: str, var: str, kind: str, site: Site,
                name: str, other: Site, other_name: str) -> None:
        """Dedup on (var, rule, site pair); anchor the finding at the
        later-ordered site so the reported line is the same no matter
        which access the detector happened to see second."""
        key = (var, rule, frozenset((site, other)))
        if key in self._seen:
            return
        self._seen.add(key)
        anchor = max(site, other)
        a_path, a_line = min(site, other)
        pair = "write/write" if rule == "RACE001" else f"{kind}/previous access"
        message = (
            f"data race on '{var}' ({pair}): thread '{name}' at "
            f"{site[0]}:{site[1]} and thread '{other_name}' at "
            f"{other[0]}:{other[1]} are not ordered by any lock, hand-off "
            f"token or thread start/join (other site {a_path}:{a_line})"
        )
        finding = Finding(path=anchor[0], line=anchor[1], rule=rule,
                          message=message)
        self.findings.append(finding)
        if self.raise_on_race:
            raise RaceError(finding.format())

    def finding_count(self) -> int:
        with self._mutex:
            return len(self.findings)

    def collect(self) -> list[Finding]:
        """Return findings accumulated so far and reset the list (the
        dedup memory is kept, so a re-manifesting race is not re-counted
        within one detector's lifetime)."""
        with self._mutex:
            found, self.findings = self.findings, []
        return found

    def assert_clean(self) -> None:
        found = self.collect()
        if found:
            raise RaceError("\n".join(f.format() for f in found))

    # -- primitive factories ----------------------------------------------------

    def rlock(self, label: str) -> "TrackedRLock":
        return TrackedRLock(self, self.new_scope(label))


class TrackedRLock:
    """An RLock that joins/publishes vector clocks at acquire/release.

    Implements ``_release_save``/``_acquire_restore``/``_is_owned`` by
    delegating to the wrapped RLock so ``threading.Condition`` built on
    top of it keeps real recursion-aware ownership semantics (the
    Condition's generic fallback would mis-detect ownership by probing
    ``acquire(0)``, which succeeds recursively on an RLock).
    """

    __slots__ = ("_inner", "_key", "_rc")

    def __init__(self, rc: RaceDetector, key: str) -> None:
        self._inner = threading.RLock()
        self._key = key
        self._rc = rc

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        cp = _checkpoint
        if cp is not None:
            cp()
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._rc.lock_acquired(self._key)
        return got

    def release(self) -> None:
        self._rc.lock_released(self._key)
        self._inner.release()

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    # Condition integration: wait() parks through these.
    def _release_save(self) -> Any:
        self._rc.lock_released(self._key)
        return self._inner._release_save()  # type: ignore[attr-defined]

    def _acquire_restore(self, state: Any) -> None:
        self._inner._acquire_restore(state)  # type: ignore[attr-defined]
        self._rc.lock_acquired(self._key)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()  # type: ignore[attr-defined]


class TrackedThread(threading.Thread):
    """A thread whose start/run/join transfer vector clocks."""

    def __init__(self, rc: RaceDetector, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._rc = rc
        self._start_token: Token | None = None
        self._end_token: Token | None = None

    def start(self) -> None:
        self._start_token = self._rc.fork()
        super().start()

    def run(self) -> None:
        if self._start_token is not None:
            self._rc.join(self._start_token)
        try:
            super().run()
        finally:
            self._end_token = self._rc.fork()

    def join(self, timeout: float | None = None) -> None:
        super().join(timeout)
        if not self.is_alive() and self._end_token is not None:
            self._rc.join(self._end_token)


# -- module-level state ---------------------------------------------------------

_active: list[RaceDetector] = []
_env_checked = False

#: Set by the interleaving fuzzer; called at every tracked acquire and
#: access hook. ``None`` (the default) costs one global load per hook.
_checkpoint: Callable[[], None] | None = None


def _set_checkpoint(fn: Callable[[], None] | None) -> None:
    global _checkpoint
    _checkpoint = fn


def race_detector() -> RaceDetector | None:
    """The active detector, or ``None`` when the sanitizer is off.

    Components capture this once at construction time; the environment
    (``REPRO_SANITIZE=race``) is consulted lazily on first call, and
    :func:`install`/:func:`uninstall` override it for scoped test use.
    """
    global _env_checked
    if not _active and not _env_checked:
        _env_checked = True
        if _env_race_enabled():
            _active.append(RaceDetector())
    return _active[-1] if _active else None


def install(detector: RaceDetector) -> RaceDetector:
    """Make ``detector`` the active detector (stacked; see
    :func:`uninstall`)."""
    global _env_checked
    _env_checked = True
    _active.append(detector)
    return detector


def uninstall() -> None:
    """Pop the most recently installed detector."""
    if _active:
        _active.pop()


@contextmanager
def sanitizer(detector: RaceDetector | None = None) -> Iterator[RaceDetector]:
    """Scoped activation: components constructed inside the block are
    instrumented against the yielded detector."""
    rc = detector if detector is not None else RaceDetector()
    install(rc)
    try:
        yield rc
    finally:
        uninstall()


# -- factories (the pay-for-play switch) -----------------------------------------


def make_lock(label: str = "lock") -> Any:
    """A re-entrant lock: plain ``threading.RLock`` when the sanitizer is
    off, a :class:`TrackedRLock` with a unique per-instance key when on."""
    rc = race_detector()
    if rc is None:
        return threading.RLock()
    return rc.rlock(label)


def make_condition(lock: Any = None, label: str = "cond") -> threading.Condition:
    """A condition over ``lock`` (tracked or plain). With no lock, the
    monitor itself is tracked when the sanitizer is on."""
    if lock is None:
        lock = make_lock(label)
    return threading.Condition(lock)


def make_thread(target: Callable[..., object], *, name: str | None = None,
                daemon: bool = True,
                args: Sequence[object] = ()) -> threading.Thread:
    """A worker thread: plain ``threading.Thread`` when the sanitizer is
    off, a :class:`TrackedThread` (start/join happens-before edges) when
    on."""
    rc = race_detector()
    if rc is None:
        return threading.Thread(target=target, name=name, daemon=daemon,
                                args=tuple(args))
    return TrackedThread(rc, target=target, name=name, daemon=daemon,
                         args=tuple(args))
