"""EVT001/EVT002: the event taxonomy and its sync with the counter registry.

The observability layer (``repro.obs``) defines a closed event taxonomy —
a module-level ``EVENT_TYPES`` frozenset — and the stats module maps every
event type to the counter it mirrors via a module-level ``EVENT_COUNTERS``
dict (``None`` for events with no single-counter equivalent). Exactly like
the counter registry itself, the three artifacts must agree:

* **EVT001** — every ``<tracer>.emit("<type>", ...)`` call site must use a
  declared event type. A typo'd literal would silently vanish from every
  ``by_type`` summary instead of failing.
* **EVT002** — ``EVENT_TYPES`` and the ``EVENT_COUNTERS`` keys must be the
  same set, and every non-``None`` mapped counter must exist in the
  ``IoStats`` ``_counters()`` registry.

Both rules are inert for code bases that define neither name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.counters import parse_stats_schema
from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

EVENT_TYPES_NAME = "EVENT_TYPES"
EVENT_COUNTERS_NAME = "EVENT_COUNTERS"


@dataclass
class EventSchema:
    """Parsed taxonomy (EVENT_TYPES) and mapping (EVENT_COUNTERS)."""

    types: dict[str, int] | None          # event type -> declaration line
    types_path: str
    types_line: int
    mapping: dict[str, tuple[str | None, int]] | None  # key -> (counter, line)
    mapping_path: str
    mapping_line: int


def _assign_value(stmt: ast.stmt, name: str) -> ast.expr | None:
    """The value expression when ``stmt`` (ann-)assigns module global ``name``."""
    if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name):
        return stmt.value
    if (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name and stmt.value is not None):
        return stmt.value
    return None


def parse_event_schema(files: list[SourceFile]) -> EventSchema:
    types: dict[str, int] | None = None
    types_path, types_line = "", 0
    mapping: dict[str, tuple[str | None, int]] | None = None
    mapping_path, mapping_line = "", 0
    for sf in files:
        for stmt in sf.tree.body:
            value = _assign_value(stmt, EVENT_TYPES_NAME)
            if value is not None and types is None:
                types = {}
                types_path, types_line = str(sf.path), stmt.lineno
                for node in ast.walk(value):
                    if (isinstance(node, ast.Constant)
                            and isinstance(node.value, str)):
                        types[node.value] = node.lineno
            value = _assign_value(stmt, EVENT_COUNTERS_NAME)
            if (value is not None and mapping is None
                    and isinstance(value, ast.Dict)):
                mapping = {}
                mapping_path, mapping_line = str(sf.path), stmt.lineno
                for key, val in zip(value.keys, value.values):
                    if not (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        continue
                    counter = None
                    if (isinstance(val, ast.Constant)
                            and isinstance(val.value, str)):
                        counter = val.value
                    mapping[key.value] = (counter, key.lineno)
    return EventSchema(types=types, types_path=types_path,
                       types_line=types_line, mapping=mapping,
                       mapping_path=mapping_path, mapping_line=mapping_line)


def _emit_call_sites(files: list[SourceFile]) -> list[tuple[str, int, str]]:
    """``(path, line, literal)`` for every ``<recv>.emit("<literal>", ...)``."""
    out: list[tuple[str, int, str]] = []
    for sf in files:
        for node in ast.walk(sf.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit" and node.args):
                continue
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                out.append((str(sf.path), node.lineno, first.value))
    return out


def check_events(files: list[SourceFile]) -> list[Finding]:
    schema = parse_event_schema(files)
    if schema.types is None and schema.mapping is None:
        return []
    findings: list[Finding] = []

    if schema.types is not None:
        for path, line, literal in _emit_call_sites(files):
            if literal not in schema.types:
                findings.append(Finding(
                    path, line, "EVT001",
                    f"emit of undeclared event type '{literal}' (not in "
                    f"{EVENT_TYPES_NAME} at {schema.types_path})",
                ))

    if schema.types is not None and schema.mapping is None:
        findings.append(Finding(
            schema.types_path, schema.types_line, "EVT002",
            f"{EVENT_TYPES_NAME} declared but no {EVENT_COUNTERS_NAME} "
            "mapping exists in the stats module",
        ))
    if schema.mapping is not None and schema.types is None:
        findings.append(Finding(
            schema.mapping_path, schema.mapping_line, "EVT002",
            f"{EVENT_COUNTERS_NAME} declared but no {EVENT_TYPES_NAME} "
            "taxonomy exists",
        ))
    if schema.types is None or schema.mapping is None:
        return findings

    for name in sorted(set(schema.types) - set(schema.mapping)):
        findings.append(Finding(
            schema.types_path, schema.types[name], "EVT002",
            f"event type '{name}' has no {EVENT_COUNTERS_NAME} mapping",
        ))
    for name, (_, line) in schema.mapping.items():
        if name not in schema.types:
            findings.append(Finding(
                schema.mapping_path, line, "EVT002",
                f"{EVENT_COUNTERS_NAME} key '{name}' is not a declared "
                f"event type",
            ))

    stats = parse_stats_schema(files)
    if stats is not None:
        for name, (counter, line) in schema.mapping.items():
            if counter is not None and counter not in stats.registry:
                findings.append(Finding(
                    schema.mapping_path, line, "EVT002",
                    f"event '{name}' maps to '{counter}', which is not a "
                    f"_counters() registry key",
                ))
    return findings
