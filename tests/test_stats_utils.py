"""Tests for I/O statistics bookkeeping and small utilities."""

import time

import numpy as np
import pytest

from repro.core.stats import IoStats
from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.timing import Stopwatch, format_bytes, format_seconds


class TestIoStats:
    def test_rates_empty(self):
        s = IoStats()
        assert s.miss_rate == 0.0
        assert s.read_rate == 0.0
        assert s.hit_rate == 0.0

    def test_rates(self):
        s = IoStats(requests=10, hits=7, misses=3, reads=2, read_skips=1)
        assert s.miss_rate == pytest.approx(0.3)
        assert s.read_rate == pytest.approx(0.2)
        assert s.hit_rate == pytest.approx(0.7)

    def test_swaps_and_bytes(self):
        s = IoStats(reads=2, writes=3, bytes_read=200, bytes_written=300)
        assert s.swaps == 5
        assert s.io_bytes == 500

    def test_physical_writes_sync_path(self):
        s = IoStats(writes=7)
        assert not s.writeback_enabled
        assert s.physical_writes == 7

    def test_physical_writes_async_before_any_drain(self):
        """Regression: write-behind enabled but nothing drained yet.

        ``physical_writes`` used to key on ``writeback_writes`` being
        non-zero, so an async store that had not drained yet (or whose
        victims all coalesced) was misreported as having done ``writes``
        synchronous writes. The explicit ``writeback_enabled`` flag must
        make it report 0 physical writes instead.
        """
        s = IoStats(writes=7)
        s.writeback_enabled = True
        assert s.physical_writes == 0

    def test_physical_writes_async_after_drain(self):
        s = IoStats(writes=7, writeback_writes=3)
        s.writeback_enabled = True
        assert s.physical_writes == 3

    def test_delta_preserves_writeback_flag(self):
        s = IoStats(writes=4)
        s.writeback_enabled = True
        s.snapshot("phase")
        s.writes = 9
        d = s.delta("phase")
        assert d.writeback_enabled
        assert d.physical_writes == 0

    def test_reset_preserves_writeback_flag(self):
        s = IoStats(writes=4)
        s.writeback_enabled = True
        s.reset()
        assert s.writeback_enabled

    def test_reset(self):
        s = IoStats(requests=5, misses=2, reads=1)
        s.reset()
        assert s.requests == s.misses == s.reads == 0

    def test_snapshot_delta(self):
        s = IoStats()
        s.requests, s.misses = 10, 4
        s.snapshot("phase")
        s.requests, s.misses = 25, 7
        d = s.delta("phase")
        assert d.requests == 15
        assert d.misses == 3
        assert d.miss_rate == pytest.approx(0.2)

    def test_unknown_snapshot_raises(self):
        with pytest.raises(KeyError, match="no snapshot"):
            IoStats().delta("nope")

    def test_as_row_contains_rates(self):
        row = IoStats(requests=4, misses=1, reads=1).as_row()
        assert row["miss_rate"] == pytest.approx(0.25)
        assert "swaps" in row

    def test_str_is_informative(self):
        text = str(IoStats(requests=4, misses=1, reads=1))
        assert "miss_rate" in text


class TestRng:
    def test_int_seed_deterministic(self):
        assert as_rng(5).integers(100) == as_rng(5).integers(100)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(7, 2)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_spawn_deterministic(self):
        a1, _ = spawn_rngs(7, 2)
        a2, _ = spawn_rngs(7, 2)
        assert a1.integers(1 << 30) == a2.integers(1 << 30)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.lap("x"):
            time.sleep(0.01)
        with sw.lap("x"):
            pass
        assert sw.total("x") >= 0.01
        assert "x" in sw.totals()

    def test_unknown_lap_is_zero(self):
        assert Stopwatch().total("nope") == 0.0

    @pytest.mark.parametrize(
        "n,expected",
        [(0, "0 B"), (1023, "1023 B"), (1536, "1.5 KiB"),
         (1_280_000, "1.2 MiB"), (32 * 1024**3, "32.0 GiB")],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "s,expected",
        [(0.5, "0.5s"), (90, "1m30.0s"), (3725, "1h02m05.0s")],
    )
    def test_format_seconds(self, s, expected):
        assert format_seconds(s) == expected
