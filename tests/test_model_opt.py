"""Tests for model-parameter optimization (α, GTR rates, frequencies)."""

import numpy as np
import pytest

from repro import (
    GTR,
    JC69,
    LikelihoodEngine,
    RateModel,
    simulate_alignment,
    yule_tree,
)
from repro.errors import ModelError
from repro.phylo.likelihood.model_opt import (
    optimize_alpha,
    optimize_gtr_rates,
    optimize_model,
    use_empirical_frequencies,
)


class TestAlpha:
    def test_improves_or_preserves_lnl(self, engine_factory):
        eng = engine_factory(rates=RateModel.gamma(5.0, 4))  # far from truth (0.8)
        before = eng.loglikelihood()
        optimize_alpha(eng)
        assert eng.loglikelihood() >= before

    def test_recovers_simulated_shape(self):
        """α used in simulation is recovered within a loose tolerance."""
        tree = yule_tree(12, seed=60)
        true_alpha = 0.5
        aln = simulate_alignment(tree, JC69(), 2500,
                                 rates=RateModel.gamma(true_alpha, 4), seed=61)
        eng = LikelihoodEngine(tree.copy(), aln, JC69(), RateModel.gamma(2.0, 4))
        est = optimize_alpha(eng)
        assert 0.25 < est < 1.0  # order of magnitude, not 2.0

    def test_requires_gamma_model(self, engine_factory):
        eng = engine_factory(rates=RateModel.uniform())
        with pytest.raises(ModelError, match="no Γ shape"):
            optimize_alpha(eng)

    def test_engine_left_at_optimum(self, engine_factory):
        eng = engine_factory(rates=RateModel.gamma(3.0, 4))
        est = optimize_alpha(eng)
        assert eng.rates.alpha == pytest.approx(est)


class TestGtrRates:
    def test_improves_lnl_from_wrong_rates(self, small_tree, small_alignment):
        wrong = GTR((1.0,) * 6, (0.3, 0.2, 0.25, 0.25))
        eng = LikelihoodEngine(small_tree.copy(), small_alignment, wrong,
                               RateModel.gamma(0.8, 4))
        before = eng.loglikelihood()
        rates6 = optimize_gtr_rates(eng, rounds=1, tol=1e-2)
        assert eng.loglikelihood() >= before
        assert rates6[5] == 1.0  # GT stays fixed

    def test_requires_gtr_family(self, small_tree, small_alignment):
        from repro import Poisson
        from repro.phylo.models.base import ReversibleModel

        R = np.ones((4, 4))
        np.fill_diagonal(R, 0)
        generic = ReversibleModel(R, np.full(4, 0.25), name="generic")
        eng = LikelihoodEngine(small_tree.copy(), small_alignment, generic)
        with pytest.raises(ModelError, match="GTR-family"):
            optimize_gtr_rates(eng)


class TestFrequencies:
    def test_empirical_frequencies_applied(self, engine_factory):
        eng = engine_factory()
        freqs = use_empirical_frequencies(eng)
        np.testing.assert_allclose(eng.model.frequencies, freqs)
        np.testing.assert_allclose(
            freqs, eng.alignment.empirical_frequencies()
        )

    def test_lnl_still_finite(self, engine_factory):
        eng = engine_factory()
        use_empirical_frequencies(eng)
        assert np.isfinite(eng.loglikelihood())


class TestJointOptimization:
    def test_full_round_improves(self, engine_factory):
        eng = engine_factory(rates=RateModel.gamma(4.0, 4))
        out = optimize_model(eng, alpha=True, gtr=False)
        assert out["lnl_end"] >= out["lnl_start"]
        assert "alpha" in out
