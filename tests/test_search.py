"""Tests for the lazy-SPR / NNI tree search."""

import pytest

from repro import GTR, LikelihoodEngine, RateModel, simulate_alignment, yule_tree
from repro.errors import SearchError
from repro.phylo.search import lazy_spr_round, ml_search, nni_round
from repro.phylo.search.driver import SearchResult


@pytest.fixture(scope="module")
def easy_dataset():
    """A strongly-informative dataset whose true topology is recoverable."""
    tree = yule_tree(10, seed=70)
    model = GTR((1, 2, 1, 1, 2, 1), (0.28, 0.22, 0.26, 0.24))
    aln = simulate_alignment(tree, model, 1500, rates=RateModel.gamma(1.0, 4),
                             seed=71)
    return tree, aln, model


def scrambled_engine(easy_dataset, seed=1, **kwargs):
    tree, aln, model = easy_dataset
    start = yule_tree(10, seed=seed + 900, names=tree.names)  # wrong topology
    return LikelihoodEngine(start, aln, model, RateModel.gamma(1.0, 4), **kwargs)


class TestLazySprRound:
    def test_improves_from_random_start(self, easy_dataset):
        eng = scrambled_engine(easy_dataset)
        before = eng.loglikelihood()
        result = lazy_spr_round(eng, radius=5)
        assert result.lnl > before
        assert result.moves_applied >= 1
        assert result.moves_evaluated >= result.moves_applied
        eng.tree.validate()

    def test_rounds_converge_to_zero_moves(self, easy_dataset):
        tree, aln, model = easy_dataset
        eng = LikelihoodEngine(tree.copy(), aln, model, RateModel.gamma(1.0, 4))
        from repro.phylo.likelihood.branch_opt import smooth_all_branches
        smooth_all_branches(eng, passes=2)
        for _ in range(5):
            result = lazy_spr_round(eng, radius=3, min_improvement=0.1)
            if result.moves_applied == 0:
                break
            smooth_all_branches(eng)
        assert result.moves_applied == 0  # a local optimum is reached

    def test_rejected_moves_fully_rolled_back(self, easy_dataset):
        tree, aln, model = easy_dataset
        eng = LikelihoodEngine(tree.copy(), aln, model, RateModel.gamma(1.0, 4))
        from repro.phylo.likelihood.branch_opt import smooth_all_branches
        smooth_all_branches(eng, passes=2)
        ref = eng.tree.copy()
        lazy_spr_round(eng, radius=3, min_improvement=10.0)  # nothing passes
        assert eng.tree.robinson_foulds(ref) == 0
        for u, v in ref.edges():
            assert eng.tree.branch_length(u, v) == pytest.approx(
                ref.branch_length(u, v), abs=1e-12
            )

    def test_bad_radius_rejected(self, easy_dataset):
        with pytest.raises(SearchError, match="radius"):
            lazy_spr_round(scrambled_engine(easy_dataset), radius=0)


class TestNniRound:
    def test_improves_or_stays(self, easy_dataset):
        eng = scrambled_engine(easy_dataset, seed=2)
        before = eng.loglikelihood()
        result = nni_round(eng)
        assert result.lnl >= before - 1e-9
        eng.tree.validate()

    def test_counts_consistent(self, easy_dataset):
        eng = scrambled_engine(easy_dataset, seed=3)
        result = nni_round(eng)
        assert 0 <= result.moves_applied <= result.moves_evaluated


class TestMlSearch:
    def test_recovers_true_topology_region(self, easy_dataset):
        """From a random start the search must reach (at least) the true
        tree's likelihood; on finite data the ML tree can differ from the
        generating tree by a split or two, so RF is bounded, not zero."""
        tree, aln, model = easy_dataset
        eng = scrambled_engine(easy_dataset, seed=4)
        assert eng.tree.robinson_foulds(tree) > 0  # start is wrong
        result = ml_search(eng, radius=6, max_rounds=6)
        assert isinstance(result, SearchResult)
        true_eng = LikelihoodEngine(tree.copy(), aln, model, RateModel.gamma(1.0, 4))
        from repro.phylo.likelihood.branch_opt import smooth_all_branches
        true_lnl = smooth_all_branches(true_eng, passes=3)
        assert result.lnl >= true_lnl - 0.5
        assert eng.tree.robinson_foulds(tree) <= 4
        assert result.lnl == result.lnl_history[-1]

    def test_history_monotone(self, easy_dataset):
        eng = scrambled_engine(easy_dataset, seed=5)
        result = ml_search(eng, radius=4, max_rounds=4)
        diffs = [b - a for a, b in zip(result.lnl_history, result.lnl_history[1:])]
        assert all(d >= -1e-6 for d in diffs)

    def test_search_beats_start_by_large_margin(self, easy_dataset):
        eng = scrambled_engine(easy_dataset, seed=6)
        start_lnl = eng.loglikelihood()
        result = ml_search(eng, radius=5, max_rounds=5)
        assert result.lnl > start_lnl + 10.0

    def test_max_rounds_validated(self, easy_dataset):
        with pytest.raises(SearchError, match="max_rounds"):
            ml_search(scrambled_engine(easy_dataset), max_rounds=0)

    def test_search_out_of_core_identical_result(self, easy_dataset):
        """End-to-end: the full search run is unaffected by the OOC layer."""
        tree, aln, model = easy_dataset
        e_std = scrambled_engine(easy_dataset, seed=7)
        e_ooc = scrambled_engine(easy_dataset, seed=7, fraction=0.25,
                                 policy="lru", poison_skipped_reads=True)
        r_std = ml_search(e_std, radius=4, max_rounds=3)
        r_ooc = ml_search(e_ooc, radius=4, max_rounds=3)
        assert r_std.lnl == r_ooc.lnl
        assert e_std.tree.robinson_foulds(e_ooc.tree) == 0
        assert e_ooc.stats.miss_rate > 0
