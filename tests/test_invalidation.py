"""Fuzz tests for incremental CLV invalidation under topology edits.

The engine maintains per-node CLV orientations and invalidates the minimal
set after every SPR / NNI / branch-length change; a bug here produces
silently-wrong likelihoods. Every assertion compares the incremental
engine against a fresh engine that recomputes from scratch — values must be
**bit-identical** because both run the same kernel arithmetic.
"""

import numpy as np
import pytest

from repro import GTR, LikelihoodEngine, RateModel, simulate_alignment, yule_tree
from repro.errors import TreeError

MODEL = GTR((1, 2, 1, 1, 2, 1), (0.3, 0.2, 0.3, 0.2))
RATES = RateModel.gamma(0.9, 4)


@pytest.fixture(scope="module")
def dataset():
    tree = yule_tree(14, seed=55)
    aln = simulate_alignment(tree, MODEL, 150, rates=RATES, seed=56)
    return tree, aln


def fresh_lnl(tree, aln, u, v):
    eng = LikelihoodEngine(tree.copy(), aln, MODEL, RATES)
    return eng.edge_loglikelihood(u, v)


def random_edge(tree, rng):
    edges = list(tree.edges())
    return edges[rng.integers(len(edges))]


class TestMutationFuzz:
    def _run_fuzz(self, dataset, seed, steps, with_undo):
        tree, aln = dataset
        tree = tree.copy()
        rng = np.random.default_rng(seed)
        eng = LikelihoodEngine(tree, aln, MODEL, RATES, fraction=0.4,
                               policy="random", policy_kwargs={"seed": 1},
                               poison_skipped_reads=True)
        for _ in range(steps):
            op = rng.integers(5 if with_undo else 4)
            try:
                if op == 0:
                    u, v = random_edge(tree, rng)
                    eng.set_branch_length(u, v, float(rng.uniform(0.01, 0.5)))
                elif op == 1:
                    p = int(rng.integers(tree.num_tips, tree.num_nodes))
                    s = tree.neighbors(p)[rng.integers(3)]
                    cands = tree.spr_candidates(p, s, radius=6)
                    if not cands:
                        continue
                    undo = eng.apply_spr(p, s, cands[rng.integers(len(cands))])
                    if with_undo and rng.random() < 0.5:
                        eng.undo_spr(undo)
                elif op == 2:
                    internal = tree.internal_edges()
                    undo = eng.apply_nni(internal[rng.integers(len(internal))],
                                         int(rng.integers(2)))
                    if with_undo and rng.random() < 0.5:
                        eng.undo_nni(undo)
                elif op == 3:
                    u, v = random_edge(tree, rng)
                    assert eng.edge_loglikelihood(u, v) == fresh_lnl(tree, aln, u, v)
                else:
                    # mixed: evaluate, mutate, evaluate elsewhere
                    u, v = random_edge(tree, rng)
                    eng.edge_loglikelihood(u, v)
            except TreeError:
                continue
        u, v = eng.default_edge()
        assert eng.edge_loglikelihood(u, v) == fresh_lnl(tree, aln, u, v)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_apply_only(self, dataset, seed):
        self._run_fuzz(dataset, seed, steps=120, with_undo=False)

    @pytest.mark.parametrize("seed", [4, 5, 6])
    def test_with_undo(self, dataset, seed):
        self._run_fuzz(dataset, seed, steps=120, with_undo=True)


class TestTargetedInvalidation:
    def test_branch_change_far_from_root(self, dataset):
        tree, aln = dataset
        tree = tree.copy()
        eng = LikelihoodEngine(tree, aln, MODEL, RATES)
        u, v = eng.default_edge()
        eng.edge_loglikelihood(u, v)
        # Change the most distant edge from the root edge.
        far = max(tree.edges(), key=lambda e: len(tree.path(v, e[0])))
        eng.set_branch_length(*far, 0.333)
        assert eng.edge_loglikelihood(u, v) == fresh_lnl(tree, aln, u, v)

    def test_root_edge_branch_change_is_cheap(self, dataset):
        """Changing the *current* root edge must invalidate nothing."""
        tree, aln = dataset
        tree = tree.copy()
        eng = LikelihoodEngine(tree, aln, MODEL, RATES)
        u, v = eng.default_edge()
        eng.edge_loglikelihood(u, v)
        valid_before = eng.orientation.num_valid()
        eng.set_branch_length(u, v, 0.123)
        assert eng.orientation.num_valid() == valid_before
        assert eng.edge_loglikelihood(u, v) == fresh_lnl(tree, aln, u, v)

    def test_spr_keeps_subtree_interior_valid(self, dataset):
        """Lazy SPR's payoff: CLVs inside the moved subtree that look toward
        the prune point cover only unmoved content and must stay valid.
        (CLVs oriented *away* from the prune point see the rest of the tree
        and are rightly invalidated.)"""
        tree, aln = dataset
        tree = tree.copy()
        eng = LikelihoodEngine(tree, aln, MODEL, RATES)
        eng.loglikelihood()
        checked = 0
        for p in list(tree.inner_nodes()):
            for s in tree.neighbors(p):
                if tree.is_tip(s):
                    continue
                sub = set(tree.subtree_nodes(s, p))
                cands = tree.spr_candidates(p, s, radius=10)
                if not cands:
                    continue
                # Inner subtree nodes whose orientation points toward p.
                toward_p = [
                    x for x in sub
                    if not tree.is_tip(x)
                    and eng.orientation.orient[x] >= 0
                    and tree.path(x, p)[1] == eng.orientation.orient[x]
                ]
                if not toward_p:
                    continue
                undo = eng.apply_spr(p, s, cands[-1])
                for x in toward_p:
                    assert eng.orientation.orient[x] >= 0, (
                        f"subtree-interior node {x} (toward prune point) was "
                        "needlessly invalidated"
                    )
                eng.undo_spr(undo)
                checked += 1
        assert checked > 0

    def test_evaluation_after_undo_matches(self, dataset):
        tree, aln = dataset
        tree = tree.copy()
        eng = LikelihoodEngine(tree, aln, MODEL, RATES)
        before = eng.loglikelihood()
        p = list(tree.inner_nodes())[4]
        s = tree.neighbors(p)[0]
        cands = tree.spr_candidates(p, s, radius=5)
        undo = eng.apply_spr(p, s, cands[0])
        eng.loglikelihood()  # force recomputation on the new topology
        eng.undo_spr(undo)
        assert eng.loglikelihood() == before

    def test_plan_is_empty_when_nothing_changed(self, dataset):
        tree, aln = dataset
        tree = tree.copy()
        eng = LikelihoodEngine(tree, aln, MODEL, RATES)
        u, v = eng.default_edge()
        eng.edge_loglikelihood(u, v)
        assert len(eng.plan(u, v)) == 0

    def test_full_plan_covers_all_inner_nodes(self, dataset):
        tree, aln = dataset
        tree = tree.copy()
        eng = LikelihoodEngine(tree, aln, MODEL, RATES)
        u, v = eng.default_edge()
        plan = eng.plan(u, v, full=True)
        assert sorted(plan.touched_nodes()) == list(tree.inner_nodes())
