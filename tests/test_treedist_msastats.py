"""Tests for tree-distance metrics and alignment diagnostics."""

import numpy as np
import pytest

from repro import Alignment, GTR, simulate_alignment, yule_tree
from repro.errors import TreeError
from repro.phylo.msa_stats import (
    composition_chi2_test,
    gap_fraction,
    mean_pairwise_identity,
    per_taxon_composition,
    proportion_invariant_sites,
    summarize,
)
from repro.phylo.newick import parse_newick, write_newick
from repro.phylo.treedist import (
    branch_score_distance,
    normalized_rf,
    path_difference_distance,
    path_distance_matrix,
)


class TestBranchScore:
    def test_zero_for_identical(self):
        t = yule_tree(10, seed=41)
        assert branch_score_distance(t, t.copy()) == 0.0

    def test_positive_for_length_change(self):
        t = yule_tree(10, seed=42)
        c = t.copy()
        edge = c.internal_edges()[0]
        c.set_branch_length(*edge, c.branch_length(*edge) + 0.5)
        assert branch_score_distance(t, c) == pytest.approx(0.5)

    def test_positive_for_topology_change(self):
        t = yule_tree(10, seed=43)
        c = t.copy()
        c.nni(c.internal_edges()[0], 0)
        assert branch_score_distance(t, c) > 0

    def test_symmetric(self):
        a = yule_tree(8, seed=44)
        b = yule_tree(8, seed=45)
        assert branch_score_distance(a, b) == \
            pytest.approx(branch_score_distance(b, a))

    def test_name_matching(self):
        t = yule_tree(8, seed=46)
        permuted = parse_newick(write_newick(t, precision=17))
        assert branch_score_distance(t, permuted) == pytest.approx(0.0, abs=1e-9)

    def test_taxon_mismatch_rejected(self):
        a = yule_tree(5, seed=1)
        b = yule_tree(5, seed=1, names=[f"q{i}" for i in range(5)])
        with pytest.raises(TreeError, match="taxon set"):
            branch_score_distance(a, b)


class TestPathDistances:
    def test_matrix_matches_patristic(self):
        t = yule_tree(7, seed=47)
        D = path_distance_matrix(t)
        for i in range(7):
            for j in range(7):
                assert D[i, j] == pytest.approx(t.patristic_distance(i, j))

    def test_hop_variant(self):
        t = yule_tree(6, seed=48)
        D = path_distance_matrix(t, weighted=False)
        assert D[0, 0] == 0
        assert np.all(D[np.triu_indices(6, 1)] >= 2)  # via >= 1 inner node

    def test_path_difference_zero_for_identical(self):
        t = yule_tree(9, seed=49)
        assert path_difference_distance(t, t.copy()) == 0.0

    def test_path_difference_positive_for_different(self):
        a = yule_tree(9, seed=50)
        b = yule_tree(9, seed=51)
        assert path_difference_distance(a, b) > 0

    def test_normalized_rf_bounds(self):
        a = yule_tree(12, seed=52)
        b = yule_tree(12, seed=53)
        assert 0.0 <= normalized_rf(a, b) <= 1.0
        assert normalized_rf(a, a.copy()) == 0.0


class TestMsaStats:
    def test_gap_fraction(self):
        aln = Alignment.from_sequences([("a", "AC-T"), ("b", "A--T")])
        assert gap_fraction(aln) == pytest.approx(3 / 8)

    def test_invariant_proportion(self):
        aln = Alignment.from_sequences([("a", "AACG"), ("b", "AATG")])
        # cols 0,1,3 invariant; col 2 differs
        assert proportion_invariant_sites(aln) == pytest.approx(0.75)

    def test_ambiguity_counts_as_compatible(self):
        aln = Alignment.from_sequences([("a", "R"), ("b", "A")])
        assert proportion_invariant_sites(aln) == 1.0

    def test_identity_identical_rows(self):
        aln = Alignment.from_sequences([("a", "ACGT"), ("b", "ACGT")])
        assert mean_pairwise_identity(aln) == 1.0

    def test_per_taxon_composition_rows_sum_one(self, small_alignment):
        comp = per_taxon_composition(small_alignment)
        np.testing.assert_allclose(comp.sum(axis=1), 1.0, atol=1e-12)

    def test_composition_test_homogeneous_data(self):
        tree = yule_tree(10, seed=54, scale=0.05)
        aln = simulate_alignment(tree, GTR(), 2000, seed=55)
        result = composition_chi2_test(aln)
        assert result.homogeneous
        assert result.degrees_of_freedom == 9 * 3

    def test_composition_test_detects_heterogeneity(self):
        rng = np.random.default_rng(56)
        n, s = 6, 2000
        codes = np.empty((n, s), dtype=np.uint8)
        # half the taxa GC-rich, half AT-rich: grossly heterogeneous
        for i in range(n):
            probs = [0.05, 0.45, 0.45, 0.05] if i < 3 else [0.45, 0.05, 0.05, 0.45]
            codes[i] = np.left_shift(1, rng.choice(4, size=s, p=probs))
        from repro import DNA
        aln = Alignment([f"t{i}" for i in range(n)], codes, DNA)
        assert not composition_chi2_test(aln).homogeneous

    def test_summarize(self, small_alignment):
        summary = summarize(small_alignment)
        assert summary.num_taxa == small_alignment.num_taxa
        assert "taxa" in str(summary)
