"""Failure-injection tests: the store must stay consistent under I/O faults.

A flaky backing store raises on a configurable schedule; the vector store
must propagate the error cleanly (no silent corruption) and remain usable
and internally consistent once the fault clears.
"""

import numpy as np
import pytest

from repro.core.backing import MemoryBackingStore
from repro.core.vecstore import AncestralVectorStore
from repro.errors import BackingStoreError

SHAPE = (4,)


class FlakyBackingStore:
    """Wraps a real backing store, failing reads/writes on command."""

    def __init__(self, inner, fail_reads_at=(), fail_writes_at=()):
        self.inner = inner
        self.read_calls = 0
        self.write_calls = 0
        self.fail_reads_at = set(fail_reads_at)
        self.fail_writes_at = set(fail_writes_at)

    def read(self, item, out):
        self.read_calls += 1
        if self.read_calls in self.fail_reads_at:
            raise BackingStoreError(f"injected read failure #{self.read_calls}")
        self.inner.read(item, out)

    def write(self, item, data):
        self.write_calls += 1
        if self.write_calls in self.fail_writes_at:
            raise BackingStoreError(f"injected write failure #{self.write_calls}")
        self.inner.write(item, data)

    def flush(self):
        self.inner.flush()

    def close(self):
        self.inner.close()


def make_flaky(n=8, m=3, **kwargs):
    flaky = FlakyBackingStore(MemoryBackingStore(n, SHAPE), **kwargs)
    store = AncestralVectorStore(n, SHAPE, num_slots=m, policy="lru",
                                 backing=flaky)
    return store, flaky


class TestReadFailures:
    def test_error_propagates(self):
        store, flaky = make_flaky(fail_reads_at={1})
        with pytest.raises(BackingStoreError, match="injected read"):
            store.get(0, write_only=False)

    def test_store_usable_after_read_failure(self):
        store, flaky = make_flaky(fail_reads_at={2})
        store.get(0, write_only=True)[:] = 1.0
        with pytest.raises(BackingStoreError):
            # fill remaining slots, then this read fails (read #2... force it)
            for i in range(1, 8):
                store.get(i, write_only=False)
        # recover: subsequent accesses succeed and data survives
        v = store.get(0)
        store.validate()

    def test_failed_read_returns_slot_to_free_list(self):
        """A failed swap-in must not leak the slot its victim vacated.

        The victim is evicted (written out) *before* the read is attempted;
        when the read then fails, the slot has no owner and must return to
        the free list so capacity is preserved and the store stays usable.
        """
        store, flaky = make_flaky(n=8, m=3)
        for i in range(3):
            store.get(i, write_only=True)[:] = float(i + 1)
        flaky.fail_reads_at = {flaky.read_calls + 1}
        with pytest.raises(BackingStoreError, match="injected read"):
            store.get(5)
        store.validate()
        assert not store.is_resident(5)
        assert len(store._free) == 1          # the vacated slot came back
        # the fault clears: the same item loads fine into the freed slot
        flaky.fail_reads_at = set()
        store.get(5)
        assert store.is_resident(5)
        store.validate()
        # and the evicted victim's data survived the failed swap-in
        np.testing.assert_array_equal(store.read_item(0), 1.0)

    def test_write_only_path_never_reads(self):
        store, flaky = make_flaky(fail_reads_at=set(range(1, 100)))
        # read skipping: write-only traffic must not touch the read path
        for i in range(8):
            store.get(i, write_only=True)[:] = i
        assert flaky.read_calls == 0


class TestWriteFailures:
    def test_eviction_write_failure_propagates(self):
        store, flaky = make_flaky(fail_writes_at={1})
        for i in range(3):
            store.get(i, write_only=True)[:] = i
        with pytest.raises(BackingStoreError, match="injected write"):
            store.get(3, write_only=True)  # needs an eviction -> write #1

    def test_data_not_lost_on_later_success(self):
        store, flaky = make_flaky(n=8, m=3)
        for i in range(8):
            store.get(i, write_only=True)[:] = float(i)
        for i in range(8):
            np.testing.assert_array_equal(store.get(i), float(i))
        store.validate()


class TestConsistencyUnderChaos:
    def test_random_faults_never_corrupt_mapping(self, rng):
        """Whatever faults occur, the slot/item maps stay coherent."""
        inner = MemoryBackingStore(10, SHAPE)
        flaky = FlakyBackingStore(inner)
        store = AncestralVectorStore(10, SHAPE, num_slots=4, policy="lru",
                                     backing=flaky)
        faults = 0
        for _ in range(400):
            # schedule a fault on ~10% of operations
            if rng.random() < 0.1:
                flaky.fail_reads_at = {flaky.read_calls + 1}
                flaky.fail_writes_at = {flaky.write_calls + 1}
            else:
                flaky.fail_reads_at = set()
                flaky.fail_writes_at = set()
            item = int(rng.integers(10))
            try:
                store.get(item, write_only=bool(rng.random() < 0.5))
            except BackingStoreError:
                faults += 1
            store.validate()
        assert faults > 0  # chaos actually happened
