"""Tests for the random-tree generators and the sequence evolver."""

import numpy as np
import pytest

from repro import GTR, HKY85, JC69, Poisson, simulate_alignment
from repro.errors import SimulationError
from repro.phylo.models.rates import RateModel
from repro.simulate import coalescent_tree, yule_tree


class TestTreeGenerators:
    @pytest.mark.parametrize("gen", [yule_tree, coalescent_tree])
    def test_valid_trees(self, gen):
        for n in (3, 4, 10, 50):
            t = gen(n, seed=n)
            t.validate()
            assert t.num_tips == n

    def test_deterministic(self):
        assert yule_tree(20, seed=4).robinson_foulds(yule_tree(20, seed=4)) == 0

    def test_different_seeds_differ(self):
        assert yule_tree(20, seed=4).robinson_foulds(yule_tree(20, seed=5)) > 0

    def test_ultrametric_shape(self):
        """Backward-merging trees are ultrametric: all tips equidistant
        from any fixed inner node through the 'root-most' join."""
        t = yule_tree(12, seed=6)
        # The last inner node created is the unrooted root surrogate.
        root = t.num_nodes - 1
        depths = [t.patristic_distance(root, tip) for tip in range(12)]
        assert max(depths) - min(depths) < 1e-9

    def test_scale_controls_height(self):
        short = yule_tree(10, seed=7, scale=0.01).total_branch_length()
        tall = yule_tree(10, seed=7, scale=1.0).total_branch_length()
        assert tall == pytest.approx(100 * short)

    def test_custom_names(self):
        t = coalescent_tree(4, seed=8, names=["w", "x", "y", "z"])
        assert t.names == ["w", "x", "y", "z"]

    def test_too_few_tips_rejected(self):
        with pytest.raises(SimulationError, match="at least 3"):
            yule_tree(2)

    def test_bad_birth_rate_rejected(self):
        with pytest.raises(SimulationError, match="birth rate"):
            yule_tree(5, birth_rate=0.0)

    def test_large_tree_fast_and_valid(self):
        t = coalescent_tree(4096, seed=9)
        t.validate()
        assert t.num_inner == 4094


class TestSequenceSimulation:
    def test_shape_and_names(self, small_tree):
        aln = simulate_alignment(small_tree, JC69(), 123, seed=1)
        assert aln.num_taxa == small_tree.num_tips
        assert aln.num_sites == 123
        assert aln.names == small_tree.names

    def test_deterministic(self, small_tree):
        a = simulate_alignment(small_tree, GTR(), 50, seed=2)
        b = simulate_alignment(small_tree, GTR(), 50, seed=2)
        assert np.array_equal(a.codes, b.codes)

    def test_stationary_frequencies_respected(self):
        tree = yule_tree(30, seed=10, scale=0.02)
        freqs = (0.4, 0.3, 0.2, 0.1)
        aln = simulate_alignment(tree, HKY85(2.0, freqs), 4000, seed=11)
        np.testing.assert_allclose(aln.empirical_frequencies(), freqs, atol=0.03)

    def test_short_branches_conserved(self):
        tree = yule_tree(6, seed=12, scale=1e-5)
        aln = simulate_alignment(tree, JC69(), 300, seed=13)
        # Essentially no substitutions: all rows identical.
        assert aln.num_patterns <= 5

    def test_long_branches_saturate(self):
        tree = yule_tree(6, seed=14, scale=5.0)
        aln = simulate_alignment(tree, JC69(), 500, seed=15)
        from repro.nj.distances import p_distances
        D = p_distances(aln)
        off = D[np.triu_indices(6, 1)]
        assert off.mean() > 0.5  # near the 0.75 saturation plateau

    def test_gamma_rates_leave_invariant_sites(self):
        """Small α concentrates rates near zero: many constant columns."""
        tree = yule_tree(10, seed=16, scale=0.3)
        hot = simulate_alignment(tree, JC69(), 1000,
                                 rates=RateModel.gamma(0.05, 4), seed=17)
        flat = simulate_alignment(tree, JC69(), 1000,
                                  rates=RateModel.gamma(50.0, 4), seed=17)
        assert hot.num_patterns < flat.num_patterns

    def test_protein_simulation(self, small_tree):
        aln = simulate_alignment(small_tree, Poisson(), 60, seed=18)
        assert aln.alphabet.num_states == 20

    def test_likelihood_roundtrip_sanity(self):
        """The generating model should fit simulated data better than a
        clearly wrong model (basic identifiability check)."""
        from repro import LikelihoodEngine
        tree = yule_tree(8, seed=19)
        truth = HKY85(6.0, (0.4, 0.1, 0.1, 0.4))
        aln = simulate_alignment(tree, truth, 2000, seed=20)
        l_true = LikelihoodEngine(tree.copy(), aln, truth).loglikelihood()
        l_wrong = LikelihoodEngine(tree.copy(), aln, JC69()).loglikelihood()
        assert l_true > l_wrong

    def test_errors(self, small_tree):
        with pytest.raises(SimulationError, match="at least one site"):
            simulate_alignment(small_tree, JC69(), 0)
        with pytest.raises(SimulationError, match="no default alphabet"):
            from repro.phylo.models.base import ReversibleModel
            R = np.ones((3, 3)); np.fill_diagonal(R, 0)
            simulate_alignment(small_tree, ReversibleModel(R, np.ones(3) / 3), 10)
