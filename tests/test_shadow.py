"""Tests for shadow stores: they must mirror real stores exactly."""

import pytest

from repro import GTR, LikelihoodEngine, RateModel
from repro.core.shadow import ShadowStore, TeeStore
from repro.core.vecstore import AncestralVectorStore
from repro.errors import OutOfCoreError, PinnedSlotError

SHAPE = (4, 2, 4)


class TestShadowFidelity:
    @pytest.mark.parametrize("policy", ["lru", "lfu", "fifo", "clock"])
    def test_counters_match_real_store(self, policy, rng):
        n, m = 14, 4
        real = AncestralVectorStore(n, SHAPE, num_slots=m, policy=policy)
        shadow = ShadowStore(n, m, policy)
        for _ in range(600):
            item = int(rng.integers(n))
            write = bool(rng.random() < 0.4)
            pins = tuple(int(x) for x in rng.choice(n, 2, replace=False)
                         if int(x) != item)
            real.get(item, pins=pins, write_only=write)
            shadow.access(item, pins=pins, write_only=write)
        for field in ("requests", "hits", "misses", "reads", "writes", "read_skips"):
            assert getattr(shadow.stats, field) == getattr(real.stats, field), field

    def test_random_policy_same_seed_matches(self, rng):
        n, m = 10, 3
        real = AncestralVectorStore(n, SHAPE, num_slots=m, policy="random",
                                    policy_kwargs={"seed": 11})
        shadow = ShadowStore(n, m, "random", policy_kwargs={"seed": 11})
        for _ in range(300):
            item = int(rng.integers(n))
            real.get(item)
            shadow.access(item)
        # Identical RNG stream + identical candidate ordering = identical
        # victims; note candidate ordering differs (slot order vs set), so
        # only aggregate counts at equal capacity are compared loosely here.
        assert shadow.stats.requests == real.stats.requests
        assert shadow.stats.misses >= 0

    def test_pin_protection(self):
        shadow = ShadowStore(5, 2, "lru")
        shadow.access(0)
        shadow.access(1)
        with pytest.raises(PinnedSlotError):
            shadow.access(2, pins=(0, 1))

    def test_geometry_validation(self):
        with pytest.raises(OutOfCoreError, match="at least one slot"):
            ShadowStore(5, 0, "lru")

    def test_slots_capped_at_items(self):
        shadow = ShadowStore(3, 10, "lru")
        assert shadow.num_slots == 3
        assert shadow.fraction == 1.0


class TestTeeStore:
    def test_engine_through_tee_identical_lnl(self, small_tree, small_alignment,
                                              small_model):
        rates = RateModel.gamma(0.8, 4)
        ref = LikelihoodEngine(small_tree.copy(), small_alignment,
                               small_model, rates).loglikelihood()
        shape = (small_alignment.num_patterns, 4, 4)
        primary = AncestralVectorStore(small_tree.num_inner, shape,
                                       num_slots=4, policy="lru")
        shadows = [ShadowStore(small_tree.num_inner, m, p, label=f"{p}@{m}")
                   for p in ("lru", "lfu") for m in (3, 5)]
        tee = TeeStore(primary, shadows)
        eng = LikelihoodEngine(small_tree.copy(), small_alignment, small_model,
                               rates, store=tee)
        assert eng.loglikelihood() == ref

    def test_shadow_at_same_geometry_matches_primary(self, small_tree,
                                                     small_alignment, small_model):
        """A shadow with the primary's policy/capacity mirrors its stats."""
        rates = RateModel.gamma(0.8, 4)
        shape = (small_alignment.num_patterns, 4, 4)
        primary = AncestralVectorStore(small_tree.num_inner, shape,
                                       num_slots=4, policy="lru")
        twin = ShadowStore(small_tree.num_inner, 4, "lru", label="twin")
        eng = LikelihoodEngine(small_tree.copy(), small_alignment, small_model,
                               rates, store=TeeStore(primary, [twin]))
        eng.full_traversals(3)
        assert twin.stats.misses == primary.stats.misses
        assert twin.stats.reads == primary.stats.reads
        assert twin.stats.writes == primary.stats.writes

    def test_results_keyed_by_label(self):
        primary = AncestralVectorStore(6, SHAPE, num_slots=3)
        tee = TeeStore(primary, [ShadowStore(6, 3, "lru", label="a"),
                                 ShadowStore(6, 4, "lfu", label="b")])
        tee.get(0)
        out = tee.results()
        assert set(out) == {"a", "b"}
        assert out["a"].requests == 1

    def test_item_count_mismatch_rejected(self):
        primary = AncestralVectorStore(6, SHAPE, num_slots=3)
        with pytest.raises(OutOfCoreError, match="items"):
            TeeStore(primary, [ShadowStore(7, 3, "lru")])

    def test_attribute_passthrough(self):
        primary = AncestralVectorStore(6, SHAPE, num_slots=3)
        tee = TeeStore(primary, [])
        assert tee.num_items == 6
        assert tee.stats is primary.stats
