"""Tests for distance matrices and Neighbor Joining (the §2 baseline)."""

import numpy as np
import pytest

from repro import Alignment, JC69, simulate_alignment, yule_tree
from repro.errors import TreeError
from repro.nj.distances import jc69_distances, p_distances
from repro.nj.neighbor_joining import neighbor_joining, nj_tree


class TestPDistances:
    def test_identical_rows_zero(self):
        aln = Alignment.from_sequences([("a", "ACGT"), ("b", "ACGT")])
        np.testing.assert_allclose(p_distances(aln), 0.0)

    def test_simple_fractions(self):
        aln = Alignment.from_sequences([("a", "AAAA"), ("b", "AAAT")])
        assert p_distances(aln)[0, 1] == pytest.approx(0.25)

    def test_gaps_pairwise_deleted(self):
        aln = Alignment.from_sequences([("a", "AA-T"), ("b", "AT-T")])
        # 3 comparable sites, 1 mismatch
        assert p_distances(aln)[0, 1] == pytest.approx(1 / 3)

    def test_ambiguity_compatible_is_match(self):
        aln = Alignment.from_sequences([("a", "R"), ("b", "A")])  # R ⊇ A
        assert p_distances(aln)[0, 1] == 0.0

    def test_symmetric_zero_diagonal(self, small_alignment):
        D = p_distances(small_alignment)
        np.testing.assert_allclose(D, D.T)
        np.testing.assert_allclose(np.diag(D), 0.0)


class TestJcDistances:
    def test_correction_increases_distance(self):
        aln = Alignment.from_sequences([("a", "A" * 8 + "TT"), ("b", "A" * 8 + "CC")])
        p = p_distances(aln)[0, 1]
        d = jc69_distances(aln)[0, 1]
        assert d > p

    def test_formula(self):
        aln = Alignment.from_sequences([("a", "AAAA"), ("b", "AAAT")])
        d = jc69_distances(aln)[0, 1]
        assert d == pytest.approx(-0.75 * np.log(1 - 4 * 0.25 / 3))

    def test_saturation_clamped(self):
        aln = Alignment.from_sequences([("a", "AAAA"), ("b", "TTTT")])
        assert jc69_distances(aln, max_distance=5.0)[0, 1] == 5.0

    def test_estimates_true_branch_length(self):
        """JC distances on long JC simulations approximate path lengths."""
        tree = yule_tree(6, seed=90)
        from repro.phylo.models.rates import RateModel
        aln = simulate_alignment(tree, JC69(), 30000,
                                 rates=RateModel.uniform(), seed=91)
        D = jc69_distances(aln)
        for i in range(6):
            for j in range(i + 1, 6):
                truth = tree.patristic_distance(i, j)
                assert D[i, j] == pytest.approx(truth, abs=0.05)


class TestNeighborJoining:
    def test_recovers_additive_tree_exactly(self):
        """On exactly-additive distances NJ is guaranteed to recover the tree."""
        true = yule_tree(12, seed=92)
        n = true.num_tips
        D = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                D[i, j] = D[j, i] = true.patristic_distance(i, j)
        out = neighbor_joining(D, true.names)
        assert out.robinson_foulds(true) == 0
        # branch lengths recovered too
        for u, v in true.edges():
            if true.is_tip(u):
                assert out.branch_length(u, out.neighbors(u)[0]) == pytest.approx(
                    true.branch_length(u, true.neighbors(u)[0]), abs=1e-9
                )

    def test_three_taxa(self):
        D = np.array([[0, 2.0, 3.0], [2.0, 0, 4.0], [3.0, 4.0, 0]])
        t = neighbor_joining(D)
        t.validate()
        # three-point formulas: d(0,c)=0.5, d(1,c)=1.5, d(2,c)=2.5
        c = 3
        assert t.branch_length(0, c) == pytest.approx(0.5)
        assert t.branch_length(1, c) == pytest.approx(1.5)
        assert t.branch_length(2, c) == pytest.approx(2.5)

    def test_from_alignment(self, small_alignment):
        t = nj_tree(small_alignment)
        t.validate()
        assert sorted(t.names) == sorted(small_alignment.names)

    def test_nj_tree_close_to_truth(self, small_tree, small_alignment):
        t = nj_tree(small_alignment)
        # the shared dataset is clean enough for NJ to get close
        assert t.robinson_foulds(small_tree) <= 4

    def test_validation_errors(self):
        with pytest.raises(TreeError, match="square"):
            neighbor_joining(np.zeros((3, 4)))
        with pytest.raises(TreeError, match="at least 3"):
            neighbor_joining(np.zeros((2, 2)))
        bad = np.zeros((3, 3))
        bad[0, 1] = 1.0  # asymmetric
        with pytest.raises(TreeError, match="symmetric"):
            neighbor_joining(bad)
        diag = np.full((3, 3), 1.0)
        with pytest.raises(TreeError, match="zero diagonal"):
            neighbor_joining(diag)

    def test_negative_lengths_floored(self):
        # A non-additive matrix that drives NJ lengths negative.
        D = np.array(
            [
                [0.0, 0.1, 1.0, 1.0],
                [0.1, 0.0, 1.0, 1.0],
                [1.0, 1.0, 0.0, 0.1],
                [1.0, 1.0, 0.1, 0.0],
            ]
        )
        t = neighbor_joining(D)
        for u, v in t.edges():
            assert t.branch_length(u, v) > 0
