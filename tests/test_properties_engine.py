"""End-to-end property tests: the §4.1 equivalence over random configurations.

Hypothesis drives random (tree, data, store-geometry, policy) combinations
and asserts the paper's core invariant every time: the out-of-core engine's
log-likelihood is bit-identical to the in-core engine's.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GTR, JC69, LikelihoodEngine, RateModel, simulate_alignment, yule_tree
from repro.phylo.bootstrap import bootstrap_weights
from repro.utils.rng import as_rng


@settings(max_examples=20, deadline=None)
@given(
    num_taxa=st.integers(min_value=4, max_value=16),
    seed=st.integers(min_value=0, max_value=10**6),
    policy=st.sampled_from(["random", "lru", "lfu", "fifo", "topological"]),
    slots=st.integers(min_value=3, max_value=10),
    cats=st.integers(min_value=1, max_value=4),
)
def test_ooc_engine_bit_identical(num_taxa, seed, policy, slots, cats):
    tree = yule_tree(num_taxa, seed=seed)
    model = GTR((1, 2, 1, 1, 2, 1), (0.3, 0.2, 0.25, 0.25))
    rates = RateModel.gamma(0.7, cats) if cats > 1 else RateModel.uniform()
    aln = simulate_alignment(tree, model, 60, rates=rates, seed=seed + 1)
    ref = LikelihoodEngine(tree.copy(), aln, model, rates).loglikelihood()
    ooc = LikelihoodEngine(
        tree.copy(), aln, model, rates,
        num_slots=slots, policy=policy, poison_skipped_reads=True,
        policy_kwargs={"seed": 1} if policy == "random" else None,
    )
    assert ooc.loglikelihood() == ref


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    edits=st.integers(min_value=1, max_value=12),
)
def test_incremental_equals_fresh_after_random_edits(seed, edits):
    rng = as_rng(seed)
    tree = yule_tree(9, seed=seed)
    model = JC69()
    rates = RateModel.gamma(1.0, 2)
    aln = simulate_alignment(tree, model, 50, rates=rates, seed=seed + 1)
    eng = LikelihoodEngine(tree, aln, model, rates, num_slots=4, policy="lru",
                           poison_skipped_reads=True)
    for _ in range(edits):
        op = rng.integers(3)
        if op == 0:
            edges = list(tree.edges())
            u, v = edges[rng.integers(len(edges))]
            eng.set_branch_length(u, v, float(rng.uniform(0.01, 0.4)))
        elif op == 1:
            internal = tree.internal_edges()
            if internal:
                eng.apply_nni(internal[rng.integers(len(internal))],
                              int(rng.integers(2)))
        else:
            p = int(rng.integers(tree.num_tips, tree.num_nodes))
            s = tree.neighbors(p)[rng.integers(3)]
            cands = tree.spr_candidates(p, s, radius=4)
            if cands:
                eng.apply_spr(p, s, cands[rng.integers(len(cands))])
    fresh = LikelihoodEngine(tree.copy(), aln, model, rates)
    u, v = eng.default_edge()
    assert eng.edge_loglikelihood(u, v) == fresh.edge_loglikelihood(u, v)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_bootstrap_weights_equal_resampled_alignment(seed):
    """Weight-swapping must equal rebuilding the alignment from resampled
    sites — the fast bootstrap path is exact, not approximate."""
    from repro.phylo.msa import Alignment

    tree = yule_tree(6, seed=seed)
    model = JC69()
    rates = RateModel.uniform()
    aln = simulate_alignment(tree, model, 40, rates=rates, seed=seed + 1)
    rng = as_rng(seed + 2)
    comp = aln.compress()
    # draw a replicate as explicit sites, then derive both representations
    sites = rng.integers(aln.num_sites, size=aln.num_sites)
    rep_aln = Alignment(aln.names, np.ascontiguousarray(aln.codes[:, sites]),
                        aln.alphabet)
    weights = np.bincount(comp.pattern_of_site[sites],
                          minlength=comp.num_patterns).astype(float)

    direct = LikelihoodEngine(tree.copy(), rep_aln, model, rates).loglikelihood()
    fast = LikelihoodEngine(tree.copy(), aln, model, rates)
    fast.set_pattern_weights(weights)
    assert fast.loglikelihood() == pytest.approx(direct, abs=1e-9)


class TestPatternWeightApi:
    def test_zero_weights_allowed(self, engine_factory):
        eng = engine_factory()
        w = eng.pattern_weights.copy()
        w[0] = 0.0
        eng.set_pattern_weights(w)
        assert np.isfinite(eng.loglikelihood())

    def test_reset_restores_original(self, engine_factory):
        eng = engine_factory()
        original = eng.loglikelihood()
        eng.set_pattern_weights(np.ones(eng.num_patterns))
        assert eng.loglikelihood() != original
        eng.reset_pattern_weights()
        assert eng.loglikelihood() == original

    def test_validation(self, engine_factory):
        from repro.errors import LikelihoodError

        eng = engine_factory()
        with pytest.raises(LikelihoodError, match="pattern weights"):
            eng.set_pattern_weights(np.ones(3))
        with pytest.raises(LikelihoodError, match="finite"):
            eng.set_pattern_weights(np.full(eng.num_patterns, -1.0))
