"""Tests for partitioned (multi-gene) likelihood computation."""

import numpy as np
import pytest

from repro import (
    GTR,
    HKY85,
    JC69,
    LikelihoodEngine,
    PartitionedEngine,
    RateModel,
    split_alignment,
    simulate_alignment,
    yule_tree,
)
from repro.errors import LikelihoodError


@pytest.fixture(scope="module")
def part_dataset():
    tree = yule_tree(8, seed=401)
    model = GTR((1, 2, 1, 1, 2, 1), (0.3, 0.2, 0.25, 0.25))
    aln = simulate_alignment(tree, model, 600, rates=RateModel.gamma(0.8, 4),
                             seed=402)
    return tree, aln


class TestSplitAlignment:
    def test_split_sites_partition(self, part_dataset):
        _, aln = part_dataset
        parts = split_alignment(aln, [200, 450])
        assert [p.num_sites for p in parts] == [200, 250, 150]
        assert all(p.names == aln.names for p in parts)
        recombined = np.concatenate([p.codes for p in parts], axis=1)
        np.testing.assert_array_equal(recombined, aln.codes)

    def test_bad_boundaries_rejected(self, part_dataset):
        _, aln = part_dataset
        for bad in ([0], [700], [300, 200], [100, 100]):
            with pytest.raises(LikelihoodError, match="boundaries"):
                split_alignment(aln, bad)


class TestPartitionedLikelihood:
    def test_single_partition_equals_plain_engine(self, part_dataset):
        tree, aln = part_dataset
        model = JC69()
        rates = RateModel.gamma(1.0, 4)
        plain = LikelihoodEngine(tree.copy(), aln, model, rates)
        part = PartitionedEngine(tree.copy(), [(aln, model, rates)])
        assert part.loglikelihood() == plain.loglikelihood()

    def test_identical_models_sum_to_unpartitioned(self, part_dataset):
        """With the same model everywhere, partitioning cannot change lnL."""
        tree, aln = part_dataset
        model = HKY85(2.0, (0.3, 0.2, 0.25, 0.25))
        rates = RateModel.gamma(0.9, 4)
        plain = LikelihoodEngine(tree.copy(), aln, model, rates)
        parts = split_alignment(aln, [250])
        part = PartitionedEngine(tree.copy(),
                                 [(p, model, rates) for p in parts])
        assert part.loglikelihood() == pytest.approx(plain.loglikelihood(),
                                                     abs=1e-9)

    def test_per_partition_models_fit_better(self, part_dataset):
        """Heterogeneous data: per-partition models beat one joint model."""
        tree = yule_tree(8, seed=403)
        a1 = simulate_alignment(tree, HKY85(8.0, (0.4, 0.1, 0.1, 0.4)), 300,
                                seed=404)
        a2 = simulate_alignment(tree, JC69(), 300, seed=405)
        import numpy as np
        from repro import Alignment
        joint_codes = np.concatenate([a1.codes, a2.codes], axis=1)
        joint = Alignment(a1.names, joint_codes, a1.alphabet)
        rates = RateModel.gamma(1.0, 4)
        single = LikelihoodEngine(tree.copy(), joint, JC69(), rates)
        part = PartitionedEngine(tree.copy(), [
            (a1, HKY85(8.0, (0.4, 0.1, 0.1, 0.4)), rates),
            (a2, JC69(), rates),
        ])
        assert part.loglikelihood() > single.loglikelihood()

    def test_out_of_core_partitions_identical(self, part_dataset):
        tree, aln = part_dataset
        model = JC69()
        rates = RateModel.gamma(1.0, 4)
        parts = split_alignment(aln, [300])
        triples = [(p, model, rates) for p in parts]
        ref = PartitionedEngine(tree.copy(), triples).loglikelihood()
        ooc = PartitionedEngine(
            tree.copy(), triples,
            store_kwargs={"fraction": 0.5, "policy": "lru",
                          "poison_skipped_reads": True},
        )
        assert ooc.loglikelihood() == ref
        assert all(s.requests > 0 for s in ooc.partition_stats)
        merged = ooc.stats()
        assert merged.requests == sum(s.requests for s in ooc.partition_stats)

    def test_per_partition_store_configs(self, part_dataset):
        tree, aln = part_dataset
        model = JC69()
        rates = RateModel.gamma(1.0, 4)
        parts = split_alignment(aln, [300])
        eng = PartitionedEngine(
            tree.copy(), [(p, model, rates) for p in parts],
            store_kwargs=[{"fraction": 0.5}, {"num_slots": 3}],
        )
        assert eng.engines[0].store.num_slots == 3  # 0.5 * 6 inner
        assert eng.engines[1].store.num_slots == 3

    def test_validation(self, part_dataset):
        tree, aln = part_dataset
        with pytest.raises(LikelihoodError, match="at least one"):
            PartitionedEngine(tree.copy(), [])
        with pytest.raises(LikelihoodError, match="store configs"):
            PartitionedEngine(tree.copy(),
                              [(aln, JC69(), RateModel.gamma(1.0, 4))],
                              store_kwargs=[{}, {}])


class TestSharedTreeMutations:
    def _engines(self, part_dataset):
        tree, aln = part_dataset
        model = JC69()
        rates = RateModel.gamma(1.0, 4)
        parts = split_alignment(aln, [300])
        return PartitionedEngine(tree.copy(), [(p, model, rates) for p in parts])

    def _fresh_lnl(self, part):
        ref = PartitionedEngine(
            part.tree.copy(),
            [(e.alignment, e.model, e.rates) for e in part.engines],
        )
        return ref.loglikelihood()

    def test_branch_change_consistent(self, part_dataset):
        part = self._engines(part_dataset)
        part.loglikelihood()
        u, v = next(iter(part.tree.edges()))
        part.set_branch_length(u, v, 0.42)
        assert part.loglikelihood() == pytest.approx(self._fresh_lnl(part),
                                                     abs=1e-9)

    def test_spr_and_undo_consistent(self, part_dataset):
        part = self._engines(part_dataset)
        before = part.loglikelihood()
        p = next(iter(part.tree.inner_nodes()))
        s = part.tree.neighbors(p)[0]
        cands = part.tree.spr_candidates(p, s, radius=4)
        undo = part.apply_spr(p, s, cands[0])
        moved = part.loglikelihood()
        assert moved == pytest.approx(self._fresh_lnl(part), abs=1e-9)
        part.undo_spr(undo)
        assert part.loglikelihood() == before

    def test_nni_and_undo_consistent(self, part_dataset):
        part = self._engines(part_dataset)
        before = part.loglikelihood()
        edge = part.tree.internal_edges()[0]
        undo = part.apply_nni(edge, 1)
        assert part.loglikelihood() == pytest.approx(self._fresh_lnl(part),
                                                     abs=1e-9)
        part.undo_nni(undo)
        assert part.loglikelihood() == before

    def test_joint_branch_optimization_improves(self, part_dataset):
        part = self._engines(part_dataset)
        u, v = part.tree.internal_edges()[0]
        part.set_branch_length(u, v, 3.0)
        before = part.loglikelihood()
        part.optimize_branch(u, v)
        assert part.loglikelihood() > before

    def test_optimize_all_branches_converges(self, part_dataset):
        part = self._engines(part_dataset)
        l1 = part.optimize_all_branches(passes=1)
        l2 = part.optimize_all_branches(passes=1)
        assert l2 >= l1 - 1e-9

    def test_memory_accounting(self, part_dataset):
        part = self._engines(part_dataset)
        assert part.total_ancestral_bytes() == sum(
            e.total_ancestral_bytes() for e in part.engines
        )


class TestPartitionedSearch:
    def test_ml_search_runs_on_partitioned_engine(self, part_dataset):
        """The shared optimize protocol makes the search driver partition-
        agnostic: lazy SPR + NNI over a PartitionedEngine."""
        from repro.phylo.search import ml_search

        tree, aln = part_dataset
        model = JC69()
        rates = RateModel.gamma(1.0, 4)
        parts = split_alignment(aln, [300])
        start = yule_tree(tree.num_tips, seed=999, names=tree.names)
        part = PartitionedEngine(start, [(p, model, rates) for p in parts])
        before = part.loglikelihood()
        result = ml_search(part, radius=3, max_rounds=2, do_alpha=False)
        assert result.lnl >= before
        part.tree.validate()
