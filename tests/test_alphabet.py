"""Unit tests for alphabets, ambiguity codes and compact packing."""

import numpy as np
import pytest

from repro.errors import AlphabetError
from repro.phylo.alphabet import AMINO_ACID, DNA, Alphabet


class TestDnaEncoding:
    def test_plain_states_are_single_bits(self):
        assert DNA.encode_char("A") == 1
        assert DNA.encode_char("C") == 2
        assert DNA.encode_char("G") == 4
        assert DNA.encode_char("T") == 8

    def test_lowercase_equals_uppercase(self):
        assert DNA.encode_char("a") == DNA.encode_char("A")
        assert DNA.encode_char("y") == DNA.encode_char("Y")

    def test_ambiguity_codes_union_bits(self):
        assert DNA.encode_char("R") == (1 | 4)  # A or G
        assert DNA.encode_char("Y") == (2 | 8)  # C or T
        assert DNA.encode_char("N") == 15

    def test_uracil_maps_to_thymine(self):
        assert DNA.encode_char("U") == DNA.encode_char("T")

    def test_gap_and_question_are_fully_unknown(self):
        assert DNA.encode_char("-") == 15
        assert DNA.encode_char("?") == 15
        assert DNA.gap_code == 15

    def test_unknown_character_raises(self):
        with pytest.raises(AlphabetError, match="not in alphabet"):
            DNA.encode_char("!")

    def test_encode_returns_uint8_for_dna(self):
        codes = DNA.encode("ACGT")
        assert codes.dtype == np.uint8
        assert codes.tolist() == [1, 2, 4, 8]

    def test_decode_roundtrip_plain(self):
        s = "ACGTACGT"
        assert DNA.decode(DNA.encode(s)) == s

    def test_decode_roundtrip_ambiguous(self):
        s = "ARYN-"
        out = DNA.decode(DNA.encode(s))
        # N and - share code 15; decode picks the gap representative.
        assert out[:3] == "ARY"
        assert out[3] == out[4]

    def test_decode_unknown_code_raises(self):
        with pytest.raises(AlphabetError, match="cannot decode"):
            DNA.decode(np.array([0], dtype=np.uint8))


class TestCodeMatrix:
    def test_shape(self):
        m = DNA.code_matrix()
        assert m.shape == (16, 4)

    def test_single_states_are_one_hot(self):
        m = DNA.code_matrix()
        assert m[1].tolist() == [1, 0, 0, 0]
        assert m[8].tolist() == [0, 0, 0, 1]

    def test_gap_row_is_all_ones(self):
        m = DNA.code_matrix()
        assert m[15].tolist() == [1, 1, 1, 1]

    def test_row_sums_equal_popcount(self):
        m = DNA.code_matrix()
        for code in range(16):
            assert m[code].sum() == bin(code).count("1")


class TestPacking:
    def test_dna_packs_eight_per_word(self):
        # The paper's §3.1 claim: one 32-bit integer stores 8 nucleotides.
        codes = DNA.encode("ACGTRYKM")
        words = DNA.pack(codes)
        assert words.shape == (1,)
        assert DNA.unpack(words, 8).tolist() == codes.tolist()

    def test_pack_roundtrip_odd_length(self):
        codes = DNA.encode("ACGTACGTACG")  # 11 symbols -> 2 words
        words = DNA.pack(codes)
        assert words.shape == (2,)
        assert DNA.unpack(words, 11).tolist() == codes.tolist()

    def test_pack_empty(self):
        assert DNA.pack(np.array([], dtype=np.uint8)).shape == (0,)

    def test_amino_acid_packs_one_per_word(self):
        codes = AMINO_ACID.encode("ARND")
        words = AMINO_ACID.pack(codes)
        assert words.shape == (4,)
        assert AMINO_ACID.unpack(words, 4).tolist() == codes.tolist()


class TestAminoAcid:
    def test_twenty_states(self):
        assert AMINO_ACID.num_states == 20
        assert AMINO_ACID.num_codes == 2**20

    def test_b_is_asn_or_asp(self):
        n = 1 << AMINO_ACID.states.index("N")
        d = 1 << AMINO_ACID.states.index("D")
        assert AMINO_ACID.encode_char("B") == n | d

    def test_x_is_fully_ambiguous(self):
        assert AMINO_ACID.encode_char("X") == AMINO_ACID.gap_code


class TestCustomAlphabet:
    def test_duplicate_states_rejected(self):
        with pytest.raises(AlphabetError, match="duplicate states"):
            Alphabet(name="bad", states="AAB")

    def test_ambiguity_referencing_unknown_state_rejected(self):
        with pytest.raises(AlphabetError, match="unknown state"):
            Alphabet(name="bad", states="01", ambiguities={"Z": "2"})

    def test_binary_alphabet_works(self):
        binary = Alphabet(name="binary", states="01", gap_chars="-")
        assert binary.encode("0101-").tolist() == [1, 2, 1, 2, 3]
        assert binary.code_matrix().shape == (4, 2)
